//! Rejects unknown `rustflow_weaken` mutation values at build time.
//!
//! The weaken points are selected with `RUSTFLAGS='--cfg
//! rustflow_weaken="..."'`. A misspelled value would make every
//! `cfg(rustflow_weaken = ...)` in the sources false — i.e. silently
//! build the *sound* code — and CI's mutation loop would then count a
//! no-op mutant as "caught". rustc's `--check-cfg` machinery only
//! validates cfg *usage sites* in source, never the command-line value
//! itself, so the build script is the one place the typo can be turned
//! into a hard error. (The value-less `--cfg rustflow_weaken` form is
//! additionally rejected by a `compile_error!` in `src/sync.rs`.)

const KNOWN_MUTATIONS: &[&str] = &[
    "wsq_pop_fence",
    "wsq_grow_swap",
    "ring_publish",
    "injector_publish",
    "notifier_dekker",
    "rearm_publish",
    "cancel_publish",
    "seed_plain_race",
    "seed_lock_cycle",
];

fn main() {
    println!("cargo::rerun-if-env-changed=CARGO_ENCODED_RUSTFLAGS");
    let flags = std::env::var("CARGO_ENCODED_RUSTFLAGS").unwrap_or_default();
    // Flags are 0x1f-separated; a cfg arrives as `--cfg <spec>` (two
    // entries) or `--cfg=<spec>` (one).
    let mut specs = Vec::new();
    let mut iter = flags.split('\u{1f}').peekable();
    while let Some(flag) = iter.next() {
        if flag == "--cfg" {
            if let Some(spec) = iter.next() {
                specs.push(spec);
            }
        } else if let Some(spec) = flag.strip_prefix("--cfg=") {
            specs.push(spec);
        }
    }
    for spec in specs {
        let spec = spec.trim();
        let Some(value) = spec.strip_prefix("rustflow_weaken") else {
            continue;
        };
        let value = value.trim_start();
        let Some(value) = value.strip_prefix('=') else {
            // Bare `--cfg rustflow_weaken`: let the compile_error! in
            // src/sync.rs produce the diagnostic at a source location.
            continue;
        };
        let value = value.trim().trim_matches('"');
        if !KNOWN_MUTATIONS.contains(&value) {
            eprintln!(
                "error: unknown rustflow_weaken value {value:?}; known mutations: {}",
                KNOWN_MUTATIONS.join(", ")
            );
            std::process::exit(1);
        }
    }
}
