//! The sync facade: one import path for every synchronization primitive
//! the lock-free core uses.
//!
//! In normal builds this module re-exports `std::sync::atomic` types,
//! `parking_lot`'s `Mutex`/`Condvar`/`RwLock`, and a zero-cost
//! `CheckedCell` wrapper over `UnsafeCell` — the compiled code is
//! identical to using those types directly, so release throughput is
//! untouched.
//!
//! With the `rustflow_check` cargo feature, the same names resolve to
//! `rustflow-check`'s model-aware shims instead: every operation becomes
//! a scheduling point of the deterministic interleaving checker (or, via
//! `rustflow_check::Sanitizer`, of the PCT schedule fuzzer), loads
//! explore the C11-style set of visible stores, plain `CheckedCell`
//! accesses are race-checked against the happens-before relation, and
//! mutex acquisitions feed the lock-order graph. Outside an active model
//! execution the shims fall back to the real primitives, so merely
//! *enabling* the feature (e.g. through workspace feature unification)
//! changes nothing.
//!
//! Every crate-internal user of blocking or atomic synchronization must
//! import through this facade — an unshimmed primitive inside a model
//! execution blocks a model thread for real and stalls the scheduler.
//! The one deliberate exception is `introspect/`, whose collector and
//! watchdog run on auxiliary *real* threads with their own lifecycle
//! (sanitizer scenarios run with introspection off); it keeps using
//! `parking_lot`/`std` directly and is documented as out of the model's
//! scope.

// Misspelled `rustflow_weaken` values must not silently compile to the
// sound build: CI's mutation loop would then "test" a no-op and count it
// as caught. Enforcement is split by how the flag can be malformed:
//
// * `--cfg rustflow_weaken="no_such_mutation"` — rejected by `build.rs`,
//   which inspects the rustflags (rustc's check-cfg machinery validates
//   only source usage sites, never the command-line value itself); the
//   error names every known mutation.
// * `--cfg rustflow_weaken` with no value — selects nothing, which is
//   always a harness bug; `cfg(rustflow_weaken)` alone is true only in
//   that value-less form (a `--cfg key="value"` does *not* set the bare
//   key), so this guard trips exactly then.
#[cfg(rustflow_weaken)]
compile_error!(
    "rustflow_weaken needs a value; known mutations: wsq_pop_fence, wsq_grow_swap, \
     ring_publish, injector_publish, notifier_dekker, rearm_publish, cancel_publish, \
     seed_plain_race, seed_lock_cycle"
);

#[cfg(feature = "rustflow_check")]
pub(crate) use rustflow_check::{
    atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize},
    cell::CheckedCell,
    sync::{Condvar, Mutex, MutexGuard, RwLock},
};

#[cfg(not(feature = "rustflow_check"))]
pub(crate) use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
#[cfg(not(feature = "rustflow_check"))]
pub(crate) use std::sync::atomic::{
    fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize,
};

/// Model-aware thread spawn/join, used for the executor's worker pool so
/// the sanitizer schedules workers deterministically. Plain builds
/// delegate to `std::thread` with the requested thread name.
pub(crate) mod thread {
    #[cfg(feature = "rustflow_check")]
    pub(crate) use rustflow_check::thread::JoinHandle;

    #[cfg(not(feature = "rustflow_check"))]
    pub(crate) use std::thread::JoinHandle;

    /// Spawns a named thread. Under the model checker the thread becomes
    /// a model thread (the name is advisory); otherwise a real named
    /// `std` thread.
    pub(crate) fn spawn_named<F, T>(name: String, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(feature = "rustflow_check")]
        {
            rustflow_check::thread::spawn_named(Some(name), f)
        }
        #[cfg(not(feature = "rustflow_check"))]
        {
            std::thread::Builder::new()
                .name(name)
                .spawn(f)
                .expect("spawn thread")
        }
    }
}

/// True when multi-thread shutdown protocols must be skipped because the
/// current model execution is being torn down (schedule aborted, or the
/// caller is unwinding through destructors). Always `false` in plain
/// builds and outside model executions.
#[inline]
pub(crate) fn model_teardown() -> bool {
    #[cfg(feature = "rustflow_check")]
    {
        rustflow_check::model_teardown()
    }
    #[cfg(not(feature = "rustflow_check"))]
    {
        false
    }
}

/// Whether a caught panic payload is the model engine's internal unwind
/// (which must be rethrown, never handled as a task failure). Always
/// `false` in plain builds.
#[inline]
#[allow(unused_variables)]
pub(crate) fn is_model_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    #[cfg(feature = "rustflow_check")]
    {
        rustflow_check::is_model_abort(payload)
    }
    #[cfg(not(feature = "rustflow_check"))]
    {
        false
    }
}

#[cfg(not(feature = "rustflow_check"))]
mod plain_cell {
    use std::cell::UnsafeCell;

    /// Zero-cost stand-in for `rustflow_check::cell::CheckedCell`: the
    /// same `with`/`with_mut` API over a plain `UnsafeCell`, with no
    /// bookkeeping to inline away.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub(crate) struct CheckedCell<T>(UnsafeCell<T>);

    // SAFETY: all access goes through the `unsafe` `with`/`with_mut` API,
    // whose contract makes the caller responsible for cross-thread
    // exclusion (same stance as `SyncCell`, which wraps this type).
    unsafe impl<T: Send> Send for CheckedCell<T> {}
    unsafe impl<T: Send> Sync for CheckedCell<T> {}

    impl<T> CheckedCell<T> {
        /// Creates a cell holding `value`.
        pub(crate) const fn new(value: T) -> CheckedCell<T> {
            CheckedCell(UnsafeCell::new(value))
        }

        /// Runs `f` with a shared raw pointer to the contents.
        ///
        /// # Safety
        /// The caller must guarantee no concurrent mutation for the
        /// duration of `f`.
        #[inline]
        pub(crate) unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Runs `f` with an exclusive raw pointer to the contents.
        ///
        /// # Safety
        /// The caller must guarantee exclusive access for the duration of
        /// `f`.
        #[inline]
        pub(crate) unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Consumes the cell and returns the value.
        #[allow(dead_code)]
        pub(crate) fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }
}

#[cfg(not(feature = "rustflow_check"))]
pub(crate) use plain_cell::CheckedCell;
