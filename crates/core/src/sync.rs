//! The sync facade: one import path for every synchronization primitive
//! the lock-free core uses.
//!
//! In normal builds this module re-exports `std::sync::atomic` types,
//! `parking_lot`'s `Mutex`/`Condvar`, and a zero-cost `CheckedCell`
//! wrapper over `UnsafeCell` — the compiled code is identical to using
//! those types directly, so release throughput is untouched.
//!
//! With the `rustflow_check` cargo feature, the same names resolve to
//! `rustflow-check`'s model-aware shims instead: every operation becomes
//! a scheduling point of the deterministic interleaving checker, loads
//! explore the C11-style set of visible stores, and plain `CheckedCell`
//! accesses are race-checked. Outside an active model execution the shims
//! fall back to the real primitives, so merely *enabling* the feature
//! (e.g. through workspace feature unification) changes nothing.
//!
//! Only the protocol files (`wsq`, `ring`, `notifier`, `sync_cell`) are
//! required to import through this facade; the executor's coarse state
//! uses `std` directly.

#[cfg(feature = "rustflow_check")]
pub(crate) use rustflow_check::{
    atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize},
    cell::CheckedCell,
    sync::{Condvar, Mutex},
};

#[cfg(not(feature = "rustflow_check"))]
pub(crate) use parking_lot::{Condvar, Mutex};
#[cfg(not(feature = "rustflow_check"))]
pub(crate) use std::sync::atomic::{
    fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize,
};

#[cfg(not(feature = "rustflow_check"))]
mod plain_cell {
    use std::cell::UnsafeCell;

    /// Zero-cost stand-in for `rustflow_check::cell::CheckedCell`: the
    /// same `with`/`with_mut` API over a plain `UnsafeCell`, with no
    /// bookkeeping to inline away.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub(crate) struct CheckedCell<T>(UnsafeCell<T>);

    // SAFETY: all access goes through the `unsafe` `with`/`with_mut` API,
    // whose contract makes the caller responsible for cross-thread
    // exclusion (same stance as `SyncCell`, which wraps this type).
    unsafe impl<T: Send> Send for CheckedCell<T> {}
    unsafe impl<T: Send> Sync for CheckedCell<T> {}

    impl<T> CheckedCell<T> {
        /// Creates a cell holding `value`.
        pub(crate) const fn new(value: T) -> CheckedCell<T> {
            CheckedCell(UnsafeCell::new(value))
        }

        /// Runs `f` with a shared raw pointer to the contents.
        ///
        /// # Safety
        /// The caller must guarantee no concurrent mutation for the
        /// duration of `f`.
        #[inline]
        pub(crate) unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Runs `f` with an exclusive raw pointer to the contents.
        ///
        /// # Safety
        /// The caller must guarantee exclusive access for the duration of
        /// `f`.
        #[inline]
        pub(crate) unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Consumes the cell and returns the value.
        #[allow(dead_code)]
        pub(crate) fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }
}

#[cfg(not(feature = "rustflow_check"))]
pub(crate) use plain_cell::CheckedCell;
