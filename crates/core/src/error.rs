//! Error types reported by a dispatched topology.

use crate::validate::GraphDiagnostic;
use std::fmt;

/// A task's closure panicked while the topology was running.
///
/// Cpp-Taskflow (C++) lets exceptions terminate the program; in Rust we
/// catch the unwind at the task boundary, record the first panic, keep the
/// rest of the graph running (dependents of the panicked task still
/// execute — their data contract is the user's responsibility, as in C++),
/// and surface the failure when the topology is waited on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Name of the panicking task (empty if unnamed).
    pub task: String,
    /// The panic payload rendered as a string.
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.task.is_empty() {
            write!(f, "task panicked: {}", self.message)
        } else {
            write!(f, "task '{}' panicked: {}", self.task, self.message)
        }
    }
}

impl std::error::Error for TaskPanic {}

/// Why a dispatched topology did not complete cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A task's closure panicked (first panic wins; see [`TaskPanic`]).
    Panic(TaskPanic),
    /// The graph was rejected by the pre-dispatch sanitizer
    /// ([`crate::Taskflow::validate`]): it contains at least one fatal
    /// finding (a dependency cycle or a self-edge), so running it could
    /// never make progress. Carries *every* finding, warnings included.
    InvalidGraph(Vec<GraphDiagnostic>),
}

impl RunError {
    /// The panic record, when this error is a task panic.
    pub fn as_panic(&self) -> Option<&TaskPanic> {
        match self {
            RunError::Panic(p) => Some(p),
            RunError::InvalidGraph(_) => None,
        }
    }

    /// The sanitizer findings, when this error is a rejected graph.
    pub fn diagnostics(&self) -> Option<&[GraphDiagnostic]> {
        match self {
            RunError::Panic(_) => None,
            RunError::InvalidGraph(d) => Some(d),
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panic(p) => p.fmt(f),
            RunError::InvalidGraph(diags) => {
                write!(f, "invalid task graph: ")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    d.fmt(f)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<TaskPanic> for RunError {
    fn from(p: TaskPanic) -> RunError {
        RunError::Panic(p)
    }
}

/// Outcome of a dispatched topology: `Ok(())`, the first task panic, or a
/// graph rejected by the sanitizer.
pub type RunResult = Result<(), RunError>;

/// Renders a `catch_unwind` payload as a string.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_name() {
        let e = TaskPanic {
            task: "A".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "task 'A' panicked: boom");
        let e = TaskPanic {
            task: String::new(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "task panicked: boom");
    }

    #[test]
    fn run_error_wraps_and_projects() {
        let p = TaskPanic {
            task: "A".into(),
            message: "boom".into(),
        };
        let e = RunError::from(p.clone());
        assert_eq!(e.as_panic(), Some(&p));
        assert!(e.diagnostics().is_none());
        assert_eq!(e.to_string(), "task 'A' panicked: boom");

        let e = RunError::InvalidGraph(vec![
            GraphDiagnostic::SelfEdge {
                label: "X".into(),
                node: 0,
            },
            GraphDiagnostic::Orphan {
                label: "Y".into(),
                node: 1,
            },
        ]);
        assert!(e.as_panic().is_none());
        assert_eq!(e.diagnostics().map(|d| d.len()), Some(2));
        assert_eq!(
            e.to_string(),
            "invalid task graph: task 'X' precedes itself; \
             orphan task 'Y' (no predecessors or successors)"
        );
    }

    #[test]
    fn panic_message_variants() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_message(&*s), "static");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*s), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42_u32);
        assert_eq!(panic_message(&*s), "<non-string panic payload>");
    }
}
