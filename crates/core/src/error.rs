//! Error types reported by a running topology.

use std::fmt;

/// A task's closure panicked while the topology was running.
///
/// Cpp-Taskflow (C++) lets exceptions terminate the program; in Rust we
/// catch the unwind at the task boundary, record the first panic, keep the
/// rest of the graph running (dependents of the panicked task still
/// execute — their data contract is the user's responsibility, as in C++),
/// and surface the failure when the topology is waited on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Name of the panicking task (empty if unnamed).
    pub task: String,
    /// The panic payload rendered as a string.
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.task.is_empty() {
            write!(f, "task panicked: {}", self.message)
        } else {
            write!(f, "task '{}' panicked: {}", self.task, self.message)
        }
    }
}

impl std::error::Error for TaskPanic {}

/// Outcome of a dispatched topology: `Ok(())` or the first task panic.
pub type RunResult = Result<(), TaskPanic>;

/// Renders a `catch_unwind` payload as a string.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_name() {
        let e = TaskPanic {
            task: "A".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "task 'A' panicked: boom");
        let e = TaskPanic {
            task: String::new(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "task panicked: boom");
    }

    #[test]
    fn panic_message_variants() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_message(&*s), "static");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*s), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42_u32);
        assert_eq!(panic_message(&*s), "<non-string panic payload>");
    }
}
