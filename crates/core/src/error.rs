//! Error types reported by a dispatched topology, plus the failure
//! policy that decides how much of a graph keeps running after the first
//! task failure.

use crate::validate::GraphDiagnostic;
use std::fmt;
use std::sync::OnceLock;
use std::time::Duration;

/// How a [`Taskflow`](crate::Taskflow) reacts to the first task panic in
/// a running topology.
///
/// The policy is frozen into the topology when the graph is dispatched or
/// first `run`; changing it afterwards affects only graphs frozen later.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Record the first panic but keep executing the rest of the graph —
    /// dependents of the failed task still run (their data contract is
    /// the user's responsibility, as in C++). This is the historical
    /// behavior and the default.
    #[default]
    ContinueAll,
    /// The first panic internally cancels the rest of the topology: nodes
    /// not yet started are skipped (counted, never executed), in-flight
    /// tasks observe [`crate::this_task::is_cancelled`], and remaining
    /// iterations plus queued `run_n`/`run_until` batches resolve with
    /// [`RunError::Cancelled`]. The batch that contained the panic still
    /// resolves with that panic (first error wins).
    FailFast,
}

/// A task's closure panicked while the topology was running.
///
/// Cpp-Taskflow (C++) lets exceptions terminate the program; in Rust we
/// catch the unwind at the task boundary, record the first panic, keep the
/// rest of the graph running (under [`FailurePolicy::ContinueAll`];
/// [`FailurePolicy::FailFast`] cancels it instead), and surface the
/// failure when the topology is waited on.
#[derive(Debug, Clone, Eq)]
pub struct TaskPanic {
    /// Name of the panicking task (empty if unnamed).
    pub task: String,
    /// The panic payload rendered as a string.
    pub message: String,
    /// 0-based topology iteration index the panic happened in (always 0
    /// for one-shot `dispatch`; the iteration of the `run_n`/`run_until`
    /// batch otherwise).
    pub iteration: u64,
    /// Backtrace captured at the task boundary, when the process runs
    /// with `RUSTFLOW_BACKTRACE=1`; `None` otherwise. Excluded from
    /// equality and from [`fmt::Display`] so failure assertions and error
    /// messages stay stable across capture configurations.
    pub backtrace: Option<String>,
}

impl TaskPanic {
    /// A panic record for `task` with `message`, iteration 0, and a
    /// backtrace iff `RUSTFLOW_BACKTRACE=1` is set in the environment.
    pub fn new(task: impl Into<String>, message: impl Into<String>) -> TaskPanic {
        TaskPanic {
            task: task.into(),
            message: message.into(),
            iteration: 0,
            backtrace: capture_backtrace(),
        }
    }

    /// Sets the topology iteration index the panic happened in.
    pub fn with_iteration(mut self, iteration: u64) -> TaskPanic {
        self.iteration = iteration;
        self
    }
}

/// Equality ignores the captured backtrace: two records of the same
/// failure compare equal whether or not `RUSTFLOW_BACKTRACE` was set.
impl PartialEq for TaskPanic {
    fn eq(&self, other: &Self) -> bool {
        self.task == other.task
            && self.message == other.message
            && self.iteration == other.iteration
    }
}

/// `true` iff the process was started with `RUSTFLOW_BACKTRACE=1`;
/// checked once and cached (the env var is read on the executor's panic
/// path, which must stay cheap).
fn backtrace_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("RUSTFLOW_BACKTRACE").as_deref() == Ok("1"))
}

/// Captures a backtrace at the call site when `RUSTFLOW_BACKTRACE=1`.
fn capture_backtrace() -> Option<String> {
    backtrace_enabled().then(|| std::backtrace::Backtrace::force_capture().to_string())
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.task.is_empty() {
            write!(f, "task panicked: {}", self.message)
        } else {
            write!(f, "task '{}' panicked: {}", self.task, self.message)
        }
    }
}

impl std::error::Error for TaskPanic {}

/// Why the executor's front door turned a submission away.
///
/// Returned by the non-blocking tenant submission path
/// ([`Taskflow::try_run_on`](crate::Taskflow::try_run_on)) and carried
/// inside [`RunError::Rejected`] when an already-accepted submission is
/// drained by shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant's bounded submission queue was full. Back off and retry,
    /// or use the blocking [`Taskflow::run_on`](crate::Taskflow::run_on)
    /// which waits for queue space instead.
    Saturated {
        /// Name of the saturated tenant.
        tenant: String,
        /// The tenant's queue bound ([`TenantQos::max_queued`](crate::TenantQos)).
        capacity: usize,
    },
    /// The executor is shutting down ([`Executor::close`](crate::Executor)
    /// was called, or the executor is being dropped); no further work is
    /// admitted.
    ShuttingDown,
    /// Deadline-aware admission turned the run away at submit time: the
    /// expected tenant-queue wait (interpolated from the tenant's live
    /// admission-phase latency histogram) already exceeds the run's
    /// deadline, so queueing it would only burn capacity on work that is
    /// doomed to be shed. Cheap-reject beats queue-then-cancel.
    DeadlineInfeasible {
        /// Name of the tenant that rejected the run.
        tenant: String,
        /// The run's deadline, relative to submission.
        deadline: Duration,
        /// Expected queue wait estimated from recent admitted runs.
        estimated_wait: Duration,
    },
    /// The tenant's circuit breaker is open after too many consecutive
    /// run failures ([`TenantQos::breaker`](crate::TenantQos)): the
    /// submission is fast-rejected without touching the queue. Retry
    /// after `retry_after`; the first submission past that window is
    /// admitted as a half-open probe whose success closes the breaker.
    BreakerOpen {
        /// Name of the tenant whose breaker is open.
        tenant: String,
        /// How long until the breaker admits a half-open probe (zero
        /// when a probe is already in flight).
        retry_after: Duration,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Saturated { tenant, capacity } => write!(
                f,
                "tenant '{tenant}' saturated: {capacity} submissions already queued"
            ),
            AdmissionError::ShuttingDown => write!(f, "executor is shutting down"),
            AdmissionError::DeadlineInfeasible {
                tenant,
                deadline,
                estimated_wait,
            } => write!(
                f,
                "tenant '{tenant}' cannot meet a {deadline:?} deadline: \
                 expected queue wait is {estimated_wait:?}"
            ),
            AdmissionError::BreakerOpen {
                tenant,
                retry_after,
            } => write!(
                f,
                "tenant '{tenant}' circuit breaker is open: retry in {retry_after:?}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a dispatched topology did not complete cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A task's closure panicked (first panic wins; see [`TaskPanic`]).
    Panic(TaskPanic),
    /// The graph was rejected by the pre-dispatch sanitizer
    /// ([`crate::Taskflow::validate`]): it contains at least one fatal
    /// finding (a dependency cycle or a self-edge), so running it could
    /// never make progress. Carries *every* finding, warnings included.
    InvalidGraph(Vec<GraphDiagnostic>),
    /// The run was cancelled — by [`RunHandle::cancel`](crate::RunHandle),
    /// by a deadline expiring
    /// ([`RunHandle::wait_timeout`](crate::RunHandle)), or because a
    /// queued batch was drained after an earlier batch failed under
    /// [`FailurePolicy::FailFast`]. Tasks already running were allowed to
    /// finish; queued-but-unstarted tasks were skipped.
    Cancelled,
    /// The submission was accepted into a tenant queue but never
    /// dispatched: the executor shut down (or, for a submission racing
    /// `Executor::drop`, admission had already closed). No task of this
    /// batch ran.
    Rejected(AdmissionError),
    /// The run was shed from its tenant queue before dispatch: its
    /// deadline expired while it waited, or the overload controller
    /// dropped it (newest-first) because the tenant was burning its SLO
    /// error budget. No task of this batch ran; the topology was never
    /// claimed, so it re-arms clean for the next submission.
    Shed {
        /// Name of the tenant whose queue shed the run.
        tenant: String,
        /// How long the run sat queued before it was shed.
        queued_for: Duration,
    },
}

impl RunError {
    /// The panic record, when this error is a task panic.
    pub fn as_panic(&self) -> Option<&TaskPanic> {
        match self {
            RunError::Panic(p) => Some(p),
            _ => None,
        }
    }

    /// The sanitizer findings, when this error is a rejected graph.
    pub fn diagnostics(&self) -> Option<&[GraphDiagnostic]> {
        match self {
            RunError::InvalidGraph(d) => Some(d),
            _ => None,
        }
    }

    /// `true` when the run was cancelled rather than failing on its own.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, RunError::Cancelled)
    }

    /// The admission error, when the submission was rejected before any
    /// task ran.
    pub fn as_rejected(&self) -> Option<&AdmissionError> {
        match self {
            RunError::Rejected(a) => Some(a),
            _ => None,
        }
    }

    /// `true` when the run was shed from its tenant queue before
    /// dispatch (expired deadline or overload-controller drop).
    pub fn is_shed(&self) -> bool {
        matches!(self, RunError::Shed { .. })
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panic(p) => p.fmt(f),
            RunError::InvalidGraph(diags) => {
                write!(f, "invalid task graph: ")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    d.fmt(f)?;
                }
                Ok(())
            }
            RunError::Cancelled => write!(f, "run cancelled"),
            RunError::Rejected(a) => write!(f, "submission rejected: {a}"),
            RunError::Shed { tenant, queued_for } => write!(
                f,
                "run shed from tenant '{tenant}' queue after {queued_for:?} \
                 (deadline expired or overload)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<TaskPanic> for RunError {
    fn from(p: TaskPanic) -> RunError {
        RunError::Panic(p)
    }
}

/// Outcome of a dispatched topology: `Ok(())`, the first task panic, or a
/// graph rejected by the sanitizer.
pub type RunResult = Result<(), RunError>;

/// Renders a `catch_unwind` payload as a string.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_name() {
        let e = TaskPanic::new("A", "boom");
        assert_eq!(e.to_string(), "task 'A' panicked: boom");
        let e = TaskPanic::new("", "boom");
        assert_eq!(e.to_string(), "task panicked: boom");
        // The iteration index is diagnostic metadata; Display stays stable.
        assert_eq!(e.with_iteration(7).to_string(), "task panicked: boom");
    }

    #[test]
    fn equality_ignores_backtrace_but_not_iteration() {
        let a = TaskPanic::new("A", "boom");
        let mut b = a.clone();
        b.backtrace = Some("synthetic frames".into());
        assert_eq!(a, b);
        assert_ne!(a, b.with_iteration(3));
    }

    #[test]
    fn run_error_wraps_and_projects() {
        let p = TaskPanic::new("A", "boom");
        let e = RunError::from(p.clone());
        assert_eq!(e.as_panic(), Some(&p));
        assert!(e.diagnostics().is_none());
        assert_eq!(e.to_string(), "task 'A' panicked: boom");

        let e = RunError::InvalidGraph(vec![
            GraphDiagnostic::SelfEdge {
                label: "X".into(),
                node: 0,
            },
            GraphDiagnostic::Orphan {
                label: "Y".into(),
                node: 1,
            },
        ]);
        assert!(e.as_panic().is_none());
        assert_eq!(e.diagnostics().map(|d| d.len()), Some(2));
        assert_eq!(
            e.to_string(),
            "invalid task graph: task 'X' precedes itself; \
             orphan task 'Y' (no predecessors or successors)"
        );
    }

    #[test]
    fn overload_errors_display_and_project() {
        let e = AdmissionError::DeadlineInfeasible {
            tenant: "api".into(),
            deadline: Duration::from_millis(5),
            estimated_wait: Duration::from_millis(40),
        };
        assert_eq!(
            e.to_string(),
            "tenant 'api' cannot meet a 5ms deadline: expected queue wait is 40ms"
        );
        let e = AdmissionError::BreakerOpen {
            tenant: "api".into(),
            retry_after: Duration::from_millis(250),
        };
        assert_eq!(
            e.to_string(),
            "tenant 'api' circuit breaker is open: retry in 250ms"
        );
        let shed = RunError::Shed {
            tenant: "api".into(),
            queued_for: Duration::from_millis(12),
        };
        assert!(shed.is_shed());
        assert!(!shed.is_cancelled());
        assert!(shed.as_rejected().is_none());
        assert_eq!(
            shed.to_string(),
            "run shed from tenant 'api' queue after 12ms (deadline expired or overload)"
        );
        assert!(!RunError::Cancelled.is_shed());
    }

    #[test]
    fn panic_message_variants() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_message(&*s), "static");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*s), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42_u32);
        assert_eq!(panic_message(&*s), "<non-string panic payload>");
    }
}
