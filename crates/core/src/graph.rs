//! Task-graph storage: nodes, edges, and the work they carry.
//!
//! A [`Graph`] owns its nodes as `Box<Node>`, so node addresses are stable
//! for the node's entire life even as the owning collection moves (from the
//! building [`Taskflow`](crate::Taskflow) into a dispatched
//! [`Topology`](crate::topology::Topology), or inside a parent node's
//! subflow graph). The executor and task handles refer to nodes by raw
//! pointer, exactly like Cpp-Taskflow's `Node*`; liveness is guaranteed by
//! the taskflow keeping every dispatched topology alive until the taskflow
//! itself is destroyed or garbage-collected (§III-C of the paper).
//!
//! A node is split into two halves with different lifecycles:
//!
//! * [`NodeStructure`] — what the user built: name, callable, edges,
//!   static in-degree. Frozen once the graph is handed to a topology, and
//!   shared unchanged by every run of that topology.
//! * [`NodeState`] — what one execution needs: the runtime join counter,
//!   the joined-subflow countdown, parent/topology back-pointers, and the
//!   subgraph a dynamic task spawned. Re-armed from the structure before
//!   every run ([`Node::rearm`]), which is what makes topologies reusable
//!   by `run`/`run_n`/`run_until` without rebuilding the graph.

use crate::label::TaskLabel;
use crate::subflow::Subflow;
use crate::sync::AtomicUsize;
use crate::sync_cell::SyncCell;
use crate::topology::Topology;
use std::sync::atomic::Ordering;

/// Raw pointer to a node; the executor's currency.
pub(crate) type RawNode = *mut Node;

/// The callable payload of a node.
///
/// Cpp-Taskflow stores a `std::variant` of a static callable and a dynamic
/// (subflow-taking) callable behind one polymorphic wrapper (§III-D); this
/// enum is the Rust equivalent and is what makes the static and dynamic
/// tasking interfaces uniform. The callables are `FnMut`, so the same
/// payload can run once per iteration of a reused topology.
pub(crate) enum Work {
    /// Placeholder: no work yet (task handle may assign later).
    Empty,
    /// A static task: a plain closure.
    Static(Box<dyn FnMut() + Send + 'static>),
    /// A dynamic task: receives a [`Subflow`] to spawn children at runtime.
    Dynamic(Box<dyn FnMut(&mut Subflow<'_>) + Send + 'static>),
}

impl std::fmt::Debug for Work {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Work::Empty => f.write_str("Empty"),
            Work::Static(_) => f.write_str("Static"),
            Work::Dynamic(_) => f.write_str("Dynamic"),
        }
    }
}

/// The immutable half of a node: everything the build phase produced.
///
/// Mutated only while the graph is a taskflow's present graph (or a
/// subflow under construction); read-only once dispatched. Reused verbatim
/// across every iteration of a reusable topology.
pub(crate) struct NodeStructure {
    /// Optional human-readable name, interned so observers can clone it
    /// without allocating (used by the DOT dump and the tracer).
    pub(crate) name: SyncCell<TaskLabel>,
    /// The callable payload.
    pub(crate) work: SyncCell<Work>,
    /// Outgoing edges.
    pub(crate) successors: SyncCell<Vec<RawNode>>,
    /// Static in-degree, accumulated during construction; the runtime
    /// `join_counter` is armed from this value before every run.
    pub(crate) in_degree: SyncCell<usize>,
    /// Per-task retry policy ([`Task::retry`](crate::Task::retry));
    /// [`RetryPolicy::none`] by default.
    pub(crate) retry: SyncCell<RetryPolicy>,
}

/// How many times a panicking task is re-executed before its panic is
/// recorded, and how long to pause between attempts.
///
/// Set during graph construction via [`Task::retry`](crate::Task::retry) /
/// [`Task::retry_backoff`](crate::Task::retry_backoff); frozen with the
/// rest of the structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RetryPolicy {
    /// Additional attempts after the first failure (0 = no retry).
    pub(crate) limit: u32,
    /// Sleep before retry k (1-based) is `base * 2^(k-1)`, capped at
    /// [`RetryPolicy::MAX_BACKOFF`]; zero means retry immediately.
    pub(crate) base_backoff: std::time::Duration,
}

impl RetryPolicy {
    /// Exponential backoff is clamped here so a retry storm cannot stall
    /// a worker for longer than a scheduling quantum.
    pub(crate) const MAX_BACKOFF: std::time::Duration = std::time::Duration::from_millis(50);

    /// No retries: the first panic is recorded immediately.
    pub(crate) const fn none() -> RetryPolicy {
        RetryPolicy {
            limit: 0,
            base_backoff: std::time::Duration::ZERO,
        }
    }

    /// The pause before the `attempt`-th retry (1-based).
    pub(crate) fn backoff(&self, attempt: u32) -> std::time::Duration {
        if self.base_backoff.is_zero() {
            return std::time::Duration::ZERO;
        }
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        (self.base_backoff * factor).min(Self::MAX_BACKOFF)
    }
}

/// The per-run half of a node: reset by [`Node::rearm`] before each
/// iteration, mutated by workers while the iteration executes.
pub(crate) struct NodeState {
    /// Runtime countdown of unfinished predecessors; the node becomes ready
    /// when this reaches zero.
    pub(crate) join_counter: AtomicUsize,
    /// Countdown of unfinished *joined* subflow children, plus a sentinel
    /// held by the parent while it spawns. Zero-crossing completes the node.
    pub(crate) nested: AtomicUsize,
    /// Parent node when this node belongs to a joined subflow; null for
    /// top-level and detached nodes.
    pub(crate) parent: SyncCell<RawNode>,
    /// Back-pointer to the running topology; set at dispatch (top-level) or
    /// spawn (subflow children).
    pub(crate) topology: SyncCell<*const Topology>,
    /// Children spawned by a dynamic task at runtime (owned here so nested
    /// subflows form a tree of graphs, mirroring Cpp-Taskflow). Cleared on
    /// re-arm so each iteration spawns a fresh subflow.
    pub(crate) subgraph: SyncCell<Graph>,
}

/// A single vertex of a task dependency graph.
///
/// Field access follows the phase discipline documented in
/// [`crate::sync_cell`]: plain fields are mutated only during graph
/// construction, between iterations by the single re-arming driver, or by
/// the single worker executing the node; cross-thread state lives in
/// atomics.
pub(crate) struct Node {
    /// Immutable after build; shared by every run.
    pub(crate) structure: NodeStructure,
    /// Reset before each run; owned by the running iteration.
    pub(crate) state: NodeState,
}

impl Node {
    pub(crate) fn new(work: Work) -> Box<Node> {
        Box::new(Node {
            structure: NodeStructure {
                name: SyncCell::new(TaskLabel::empty()),
                work: SyncCell::new(work),
                successors: SyncCell::new(Vec::new()),
                in_degree: SyncCell::new(0),
                retry: SyncCell::new(RetryPolicy::none()),
            },
            state: NodeState {
                join_counter: AtomicUsize::new(0),
                nested: AtomicUsize::new(0),
                parent: SyncCell::new(std::ptr::null_mut()),
                topology: SyncCell::new(std::ptr::null()),
                subgraph: SyncCell::new(Graph::new()),
            },
        })
    }

    /// Name for diagnostics; the empty label when unnamed. Cloning the
    /// returned label is a reference-count bump, not an allocation.
    ///
    /// # Safety
    /// Caller must satisfy the [`SyncCell`] read contract.
    pub(crate) unsafe fn label(&self) -> &TaskLabel {
        // SAFETY: forwarding the caller's phase guarantee.
        unsafe { self.structure.name.get() }
    }

    /// Re-arms the per-run state from the immutable structure: the join
    /// counter is reloaded from the static in-degree, the joined-subflow
    /// countdown cleared, back-pointers set, and any subgraph spawned by a
    /// previous iteration dropped so the next execution spawns afresh.
    ///
    /// # Safety
    /// Caller must have exclusive access to the node: either the dispatch /
    /// re-arm driver of a quiescent topology, or the worker arming a fresh
    /// subflow child before publishing it.
    pub(crate) unsafe fn rearm(&mut self, topology: *const Topology, parent: RawNode) {
        // SAFETY: exclusive access per the caller's contract.
        unsafe {
            *self.state.topology.get_mut() = topology;
            *self.state.parent.get_mut() = parent;
            self.state
                .join_counter
                .store(*self.structure.in_degree.get(), Ordering::Relaxed);
            self.state.nested.store(0, Ordering::Relaxed);
            let sub = self.state.subgraph.get_mut();
            if !sub.is_empty() {
                *sub = Graph::new();
            }
        }
    }

    /// Re-arms *just this node* between retry attempts of a failed
    /// execution: drops whatever subgraph the failed attempt partially
    /// built and resets the joined-subflow countdown, so the next attempt
    /// starts from the same state a fresh iteration would. Topology
    /// back-pointers, parent, and the (already consumed) join counter are
    /// untouched — the node is still mid-execution from the scheduler's
    /// point of view, which is exactly why retrying here is safe: nothing
    /// has propagated to successors or the `alive` count yet.
    ///
    /// # Safety
    /// Caller must be the worker currently executing this node, before
    /// any subflow spawn was published.
    pub(crate) unsafe fn rearm_retry(&mut self) {
        // SAFETY: executing-worker exclusivity per the caller's contract;
        // a failed attempt never published its subgraph.
        unsafe {
            self.state.nested.store(0, Ordering::Relaxed);
            let sub = self.state.subgraph.get_mut();
            if !sub.is_empty() {
                *sub = Graph::new();
            }
        }
    }

    /// The retry policy frozen into this node's structure.
    ///
    /// # Safety
    /// Caller must satisfy the [`SyncCell`] read contract (the policy is
    /// written only during the build phase).
    pub(crate) unsafe fn retry_policy(&self) -> RetryPolicy {
        // SAFETY: forwarding the caller's phase guarantee.
        unsafe { *self.structure.retry.get() }
    }
}

/// An owned collection of nodes forming (part of) a task dependency graph.
#[derive(Default)]
pub(crate) struct Graph {
    /// Boxed so node addresses stay stable when the vec reallocates —
    /// `RawNode` pointers into this storage are held across pushes.
    #[allow(clippy::vec_box)]
    pub(crate) nodes: Vec<Box<Node>>,
}

impl Graph {
    pub(crate) fn new() -> Graph {
        Graph { nodes: Vec::new() }
    }

    /// Adds a node and returns its stable address.
    pub(crate) fn emplace(&mut self, work: Work) -> RawNode {
        let mut node = Node::new(work);
        let ptr: RawNode = &mut *node;
        self.nodes.push(node);
        ptr
    }

    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total node count including every (recursively) spawned subgraph.
    ///
    /// # Safety
    /// Callable only in a quiescent phase (build or post-completion).
    pub(crate) unsafe fn total_nodes(&self) -> usize {
        let mut count = self.nodes.len();
        for node in &self.nodes {
            // SAFETY: quiescent phase per the caller's contract, so reading
            // the subgraph (and recursing into it) is unsynchronized-safe.
            count += unsafe { node.state.subgraph.get().total_nodes() };
        }
        count
    }
}

// SAFETY: Graph is moved across threads (into topologies) but its interior
// is only touched under the phase discipline of `sync_cell`. All closure
// payloads are `Send`.
unsafe impl Send for Graph {}
unsafe impl Sync for Graph {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emplace_gives_stable_addresses() {
        let mut g = Graph::new();
        let first = g.emplace(Work::Empty);
        // Force reallocation of the Vec of boxes.
        let mut ptrs = vec![first];
        for _ in 0..1000 {
            ptrs.push(g.emplace(Work::Empty));
        }
        assert_eq!(g.len(), 1001);
        // The box target addresses recorded earlier must still be the nodes.
        for (i, p) in ptrs.iter().enumerate() {
            let actual: RawNode = &mut *g.nodes[i];
            assert_eq!(*p, actual);
        }
    }

    #[test]
    fn total_nodes_counts_subgraphs() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        g.emplace(Work::Empty);
        unsafe {
            let sub = (*a).state.subgraph.get_mut();
            sub.emplace(Work::Empty);
            sub.emplace(Work::Empty);
            assert_eq!(g.total_nodes(), 4);
        }
    }

    #[test]
    fn rearm_resets_runtime_state_and_clears_subgraph() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        unsafe {
            *(*a).structure.in_degree.get_mut() = 3;
            (*a).state.join_counter.store(0, Ordering::Relaxed);
            (*a).state.nested.store(7, Ordering::Relaxed);
            (*a).state.subgraph.get_mut().emplace(Work::Empty);
            (*a).rearm(std::ptr::null(), std::ptr::null_mut());
            assert_eq!((*a).state.join_counter.load(Ordering::Relaxed), 3);
            assert_eq!((*a).state.nested.load(Ordering::Relaxed), 0);
            assert!((*a).state.subgraph.get().is_empty());
        }
    }

    #[test]
    fn work_debug_names() {
        assert_eq!(format!("{:?}", Work::Empty), "Empty");
        assert_eq!(format!("{:?}", Work::Static(Box::new(|| {}))), "Static");
    }
}
