//! The work-stealing / work-sharing executor (§III-E, Algorithm 1).
//!
//! Each worker owns a Chase–Lev deque ([`crate::wsq`]) plus an **exclusive
//! task cache**: when a finishing task makes exactly one successor ready,
//! that successor goes straight into the cache and is executed next by the
//! same worker — linear chains run speculatively with no queue traffic and
//! no wake-ups (Algorithm 1 lines 16–25). Workers that find every queue
//! empty park themselves on the **idler list** ([`crate::notifier`]), from
//! which wakers pop exactly one spare worker (lines 5–13). After draining
//! a chain, a worker wakes one idler with a small probability to rebalance
//! load (lines 26–28).
//!
//! An executor is shareable between any number of taskflows
//! (`Arc<Executor>`), mirroring the paper's `std::shared_ptr`-managed
//! executor that avoids thread over-subscription in modular applications.

use crate::error::{panic_message, FailurePolicy, RunError, RunResult, TaskPanic};
use crate::future::SharedFuture;
use crate::graph::{RawNode, Work};
use crate::introspect::{CurrentTask, IntrospectConfig, IntrospectHandle, IntrospectState};
use crate::notifier::Notifier;
use crate::observer::{ExecutorObserver, DISPATCH_LANE};
use crate::stats::{ExecutorStats, WorkerStats};
use crate::subflow::Subflow;
use crate::sync::{fence, AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, RwLock};
use crate::topology::{Advance, PendingRun, RunCondition, Topology};
use crate::wsq;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tunables of the scheduling algorithm; the defaults match the paper.
/// The ablation switches exist so the benches can quantify each heuristic.
#[derive(Debug, Clone)]
pub(crate) struct Config {
    /// Use the per-worker cache slot for the first ready successor.
    pub cache_slot: bool,
    /// After draining a chain, wake one idler with probability
    /// `1/wake_ratio` (0 disables the heuristic).
    pub wake_ratio: u64,
    /// Initial per-worker deque capacity (power of two). The default
    /// matches [`crate::wsq`]; tiny capacities exist so the sanitizer can
    /// reach the deque's grow path with model-sized graphs.
    pub queue_capacity: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cache_slot: true,
            wake_ratio: 64,
            queue_capacity: wsq::INITIAL_CAPACITY,
        }
    }
}

/// Builds an [`Executor`] with custom settings.
///
/// ```
/// let ex = rustflow::ExecutorBuilder::new().workers(2).build();
/// assert_eq!(ex.num_workers(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ExecutorBuilder {
    workers: Option<usize>,
    cfg: Config,
}

impl ExecutorBuilder {
    /// Starts a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of worker threads (default: available parallelism).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Ablation switch: disable the per-worker task cache so every ready
    /// successor goes through the deque.
    pub fn cache_slot(mut self, enabled: bool) -> Self {
        self.cfg.cache_slot = enabled;
        self
    }

    /// Ablation switch: the load-balancing wake-up fires with probability
    /// `1/ratio` after each drained chain (0 disables it).
    pub fn wake_ratio(mut self, ratio: u64) -> Self {
        self.cfg.wake_ratio = ratio;
        self
    }

    /// Initial per-worker deque capacity (rounded up to a power of two,
    /// minimum 2). Defaults to the production size; the sanitizer shrinks
    /// it so the Chase–Lev grow path is exercised by model-sized graphs.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity.max(2).next_power_of_two();
        self
    }

    /// Builds the executor and spawns its worker threads.
    pub fn build(self) -> Arc<Executor> {
        let workers = self.workers.unwrap_or_else(default_parallelism);
        Executor::with_config(workers, self.cfg)
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-worker state visible to other threads.
pub(crate) struct WorkerShared {
    pub(crate) stealer: wsq::Stealer,
    /// The task this worker is executing right now, published only while
    /// live introspection is on (`Inner::introspect_live`). Uncontended
    /// in steady state: the worker writes twice per task, the collector
    /// reads once per period.
    pub(crate) current: Mutex<Option<CurrentTask>>,
    /// Diagnostic counters (relaxed; advisory). Each worker writes only
    /// its own set, so there is no cross-worker contention.
    executed: AtomicU64,
    cache_hits: AtomicU64,
    steals: AtomicU64,
    steal_attempts: AtomicU64,
    steal_fails: AtomicU64,
    injector_pops: AtomicU64,
    parks: AtomicU64,
    wakes_sent: AtomicU64,
    skipped: AtomicU64,
    retries: AtomicU64,
}

impl WorkerShared {
    pub(crate) fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            executed: self.executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steal_fails: self.steal_fails.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            wakes_sent: self.wakes_sent.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            ring_dropped: 0,
        }
    }
}

/// Per-worker private state.
struct WorkerCtx {
    id: usize,
    owner: wsq::Owner,
    /// The exclusive task cache (Algorithm 1); 0 = empty.
    cache: usize,
    /// xorshift64 state for the probabilistic wake-up.
    rng: u64,
    last_victim: usize,
}

impl WorkerCtx {
    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64: cheap thread-local randomness; quality is irrelevant,
        // we only need an unbiased-enough coin for the wake heuristic.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

pub(crate) struct Inner {
    pub(crate) shareds: Box<[WorkerShared]>,
    /// External submission queue (dispatch pushes source tasks here).
    pub(crate) injector: Mutex<VecDeque<usize>>,
    /// Workers currently inside a steal round. While any thief is active
    /// there is no need to wake another worker for a freshly pushed task —
    /// the spinning thief will find it (Cpp-Taskflow's notifier applies
    /// the same guard). Safe against lost wake-ups because a thief that
    /// gives up re-checks every queue under the notifier's Dekker
    /// protocol before parking.
    num_spinning: AtomicUsize,
    pub(crate) notifier: Notifier,
    stop: AtomicBool,
    /// Keep-alive registry: topologies currently executing.
    pub(crate) running: Mutex<Vec<Arc<Topology>>>,
    /// Signalled (under the `running` mutex) whenever `running` empties;
    /// `Executor::drop` sleeps on it instead of busy-yielding.
    all_done: Condvar,
    observers: RwLock<Vec<Arc<dyn ExecutorObserver>>>,
    has_observers: AtomicBool,
    cfg: Config,
    /// The shared monotonic clock origin ([`crate::clock::origin`]),
    /// latched here so every timestamp this executor emits — ring events,
    /// flight-recorder windows, `/trace` output, profile spans — lives in
    /// one time domain (`Executor::now_us`).
    pub(crate) epoch: Instant,
    /// `true` while live introspection is on; gates the current-task
    /// publication in `execute` (one relaxed load when off).
    pub(crate) introspect_live: AtomicBool,
    /// The live-introspection service, if started (collector + optional
    /// HTTP server). Holds a `Weak` back-reference to this `Inner`, so no
    /// cycle keeps the executor alive.
    pub(crate) introspect: RwLock<Option<Arc<IntrospectState>>>,
    /// Seeded sanitizer bug: a cell written plainly by `execute` and read
    /// plainly by parking workers with no ordering between them — a true
    /// data race the happens-before detector must flag.
    #[cfg(rustflow_weaken = "seed_plain_race")]
    race_scratch: crate::sync_cell::SyncCell<u64>,
}

impl Inner {
    /// Snapshot of every worker's counters, with ring-drop counts folded
    /// in from the introspection tracer when one is installed.
    pub(crate) fn worker_stats(&self) -> Vec<WorkerStats> {
        let mut stats: Vec<WorkerStats> = self.shareds.iter().map(|s| s.snapshot()).collect();
        if let Some(state) = self.introspect.read().as_ref() {
            for (w, dropped) in stats.iter_mut().zip(state.tracer().dropped_per_lane()) {
                w.ring_dropped = dropped;
            }
        }
        stats
    }
}

/// Runs every observer hook iff at least one observer is installed; the
/// hot paths pay a single relaxed-ish load when tracing is off.
#[inline]
fn notify_observers(inner: &Inner, f: impl Fn(&dyn ExecutorObserver)) {
    // ORDERING: Acquire pairs with `observe`'s Release store, so a hook
    // that fires sees the fully-constructed observer list.
    if inner.has_observers.load(Ordering::Acquire) {
        for ob in inner.observers.read().iter() {
            f(&**ob);
        }
    }
}

/// A shared pool of worker threads executing task dependency graphs.
pub struct Executor {
    inner: Arc<Inner>,
    /// Worker threads: model threads under the sanitizer, real named
    /// threads otherwise (see [`crate::sync::thread`]).
    threads: Mutex<Vec<crate::sync::thread::JoinHandle<()>>>,
    /// Introspection service threads (collector, HTTP acceptor); joined
    /// on drop after their stop flag is raised. Always real `std` threads
    /// — introspection is outside the model's scope.
    aux_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Executor {
    /// Creates an executor with `workers` threads and default heuristics.
    pub fn new(workers: usize) -> Arc<Executor> {
        Executor::with_config(workers.max(1), Config::default())
    }

    fn with_config(workers: usize, cfg: Config) -> Arc<Executor> {
        let mut owners = Vec::with_capacity(workers);
        let mut shareds = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (owner, stealer) = wsq::deque_with_capacity(cfg.queue_capacity);
            owners.push(owner);
            shareds.push(WorkerShared {
                stealer,
                current: Mutex::new(None),
                executed: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                steal_attempts: AtomicU64::new(0),
                steal_fails: AtomicU64::new(0),
                injector_pops: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                wakes_sent: AtomicU64::new(0),
                skipped: AtomicU64::new(0),
                retries: AtomicU64::new(0),
            });
        }
        let inner = Arc::new(Inner {
            shareds: shareds.into_boxed_slice(),
            injector: Mutex::new(VecDeque::new()),
            num_spinning: AtomicUsize::new(0),
            notifier: Notifier::new(workers),
            stop: AtomicBool::new(false),
            running: Mutex::new(Vec::new()),
            all_done: Condvar::new(),
            observers: RwLock::new(Vec::new()),
            has_observers: AtomicBool::new(false),
            cfg,
            epoch: crate::clock::origin(),
            introspect_live: AtomicBool::new(false),
            introspect: RwLock::new(None),
            #[cfg(rustflow_weaken = "seed_plain_race")]
            race_scratch: crate::sync_cell::SyncCell::new(0),
        });
        let mut threads = Vec::with_capacity(workers);
        for (id, owner) in owners.into_iter().enumerate() {
            let inner = Arc::clone(&inner);
            let ctx = WorkerCtx {
                id,
                owner,
                cache: 0,
                rng: 0x9E37_79B9_7F4A_7C15 ^ ((id as u64 + 1) << 17),
                last_victim: (id + 1) % workers,
            };
            threads.push(crate::sync::thread::spawn_named(
                format!("rustflow-worker-{id}"),
                move || worker_loop(&inner, ctx),
            ));
        }
        Arc::new(Executor {
            inner,
            threads: Mutex::new(threads),
            aux_threads: Mutex::new(Vec::new()),
        })
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.inner.shareds.len()
    }

    /// Number of currently parked (idle) workers; advisory.
    pub fn num_idlers(&self) -> usize {
        self.inner.notifier.num_idlers()
    }

    /// Number of topologies currently executing on this executor.
    pub fn num_running_topologies(&self) -> usize {
        self.inner.running.lock().len()
    }

    /// Installs an observer whose hooks run around every task execution.
    pub fn observe(&self, observer: Arc<dyn ExecutorObserver>) {
        observer.on_observe(self.num_workers());
        let mut obs = self.inner.observers.write();
        obs.push(observer);
        // ORDERING: Release publishes the list write above to
        // `notify_observers`' Acquire fast-path load.
        self.inner.has_observers.store(true, Ordering::Release);
    }

    /// Removes all observers.
    pub fn remove_observers(&self) {
        let mut obs = self.inner.observers.write();
        obs.clear();
        // ORDERING: Release orders the clear before the flag flip; the
        // fast path never iterates a list mid-teardown.
        self.inner.has_observers.store(false, Ordering::Release);
    }

    /// Per-worker diagnostic counters. When live introspection is on
    /// ([`Executor::serve_introspection`]) each entry also carries its
    /// worker's telemetry-ring drop count
    /// ([`WorkerStats::ring_dropped`]).
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.inner.worker_stats()
    }

    /// A point-in-time snapshot of every worker's counters, ready for
    /// diffing ([`ExecutorStats::delta`]) or Prometheus-style export
    /// ([`ExecutorStats::prometheus_text`]).
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            workers: self.worker_stats(),
        }
    }

    /// Microseconds since the process-wide monotonic clock origin — the
    /// time domain of every [`SchedEvent::ts_us`](crate::SchedEvent),
    /// flight-recorder window, `/trace` timestamp, and profile span this
    /// executor emits. Scrapers use it to correlate a live observation
    /// with trace output.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Starts the live-introspection collector (flight recorder +
    /// watchdog) **without** an HTTP endpoint; snapshots are read through
    /// the returned [`IntrospectHandle`]. The whole feature is off until
    /// this (or [`Executor::serve_introspection`]) is called: workers pay
    /// one relaxed load per task when disabled.
    ///
    /// Errors with [`std::io::ErrorKind::AlreadyExists`] if introspection
    /// was already started on this executor.
    pub fn start_introspection(
        &self,
        config: IntrospectConfig,
    ) -> std::io::Result<IntrospectHandle> {
        crate::introspect::start(self, &self.inner, config, None)
    }

    /// Starts live introspection with the default [`IntrospectConfig`]
    /// and serves it over an embedded HTTP endpoint bound to `addr`
    /// (e.g. `"127.0.0.1:9100"`; port 0 picks a free port — read it back
    /// via [`IntrospectHandle::local_addr`]).
    ///
    /// Routes: `GET /metrics` (Prometheus text), `GET /status` (JSON
    /// snapshot), `GET /trace?last_ms=N` (Chrome-trace JSON window from
    /// the flight recorder). The server is a dependency-free blocking
    /// `TcpListener` acceptor on its own thread; it shuts down with the
    /// executor.
    pub fn serve_introspection(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<IntrospectHandle> {
        self.serve_introspection_with(addr, IntrospectConfig::default())
    }

    /// [`Executor::serve_introspection`] with a custom config.
    pub fn serve_introspection_with(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: IntrospectConfig,
    ) -> std::io::Result<IntrospectHandle> {
        let listener = std::net::TcpListener::bind(addr)?;
        crate::introspect::start(self, &self.inner, config, Some(listener))
    }

    /// Hands the introspection service threads to the executor, which
    /// joins them on drop (after raising the service's stop flag).
    pub(crate) fn adopt_aux_threads(&self, threads: Vec<JoinHandle<()>>) {
        self.aux_threads.lock().extend(threads);
    }

    /// The process-wide default executor (used by [`crate::Taskflow::new`]),
    /// sized to the machine's available parallelism.
    pub fn default_shared() -> Arc<Executor> {
        static DEFAULT: OnceLock<Arc<Executor>> = OnceLock::new();
        Arc::clone(DEFAULT.get_or_init(|| Executor::new(default_parallelism())))
    }

    /// Submits an execution batch (`cond`) for a reusable topology and
    /// returns its completion future.
    ///
    /// Fast-fails on the topology's cached sanitizer verdict without
    /// touching the queue — a graph that could never complete (dependency
    /// cycle, self-edge) resolves immediately with
    /// [`RunError::InvalidGraph`] instead of deadlocking the worker pool
    /// as in Cpp-Taskflow. If the submission claims the idle topology, the
    /// caller's thread becomes the driver: it registers the keep-alive and
    /// starts the first iteration; otherwise the batch waits FIFO and the
    /// executor's finalize path picks it up.
    pub(crate) fn run_topology(
        &self,
        topo: &Arc<Topology>,
        cond: RunCondition,
    ) -> SharedFuture<RunResult> {
        if let Some(fatal) = topo.fatal() {
            return SharedFuture::ready(Err(fatal.clone()));
        }
        if topo.num_static_nodes() == 0 {
            // Nothing to run; never reaches the workers.
            return SharedFuture::ready(Ok(()));
        }
        let (promise, future) = crate::future::promise_pair();
        if topo.enqueue(PendingRun { cond, promise }) {
            self.inner.running.lock().push(Arc::clone(topo));
            advance_topology(&self.inner, topo, false);
        }
        future
    }
}

/// Drives a topology on behalf of the current driver (the thread that
/// claimed it at submission, or the worker whose final `alive` decrement
/// ended an iteration): steps the batch state machine, then re-arms and
/// publishes the next iteration — or, when every batch is done, drops the
/// keep-alive registration.
fn advance_topology(inner: &Inner, topo: &Topology, iteration_finished: bool) {
    // SAFETY: the caller holds the driver role per the functions's
    // contract; at most one driver exists per topology at a time.
    match unsafe { topo.advance(iteration_finished) } {
        Advance::RunIteration => {
            // SAFETY: driver role; the topology is quiescent between
            // iterations, so re-arming owns every node until `publish`
            // makes the sources visible below.
            unsafe {
                topo.begin_iteration(|sources| {
                    notify_observers(inner, |ob| {
                        ob.on_topology_start(topo.iteration_info(), topo.num_static_nodes())
                    });
                    let k = sources.len();
                    inner.injector.lock().extend(sources.iter().copied());
                    // ORDERING: Dekker fence — the pushes above must
                    // precede the idler check inside wake_one in the
                    // SeqCst total order (see notifier docs), or a
                    // concurrently-parking worker could be missed.
                    fence(Ordering::SeqCst);
                    for _ in 0..k {
                        match inner.notifier.wake_one() {
                            Some(w) => {
                                notify_observers(inner, |ob| ob.on_wake(DISPATCH_LANE, w, true))
                            }
                            None => break,
                        }
                    }
                });
            }
        }
        Advance::Idle => {
            // Every promise is resolved and the topology is settled: drop
            // the keep-alive. A concurrent resubmission may already have
            // pushed its own registration for the same topology; removing
            // one matching entry keeps the count balanced either way.
            let keep_alive = {
                let mut running = inner.running.lock();
                let ka = running
                    .iter()
                    .position(|t| std::ptr::eq(Arc::as_ptr(t), topo as *const Topology))
                    .map(|p| running.swap_remove(p));
                if running.is_empty() {
                    // Wake a destructor waiting for quiescence
                    // (Executor::drop).
                    inner.all_done.notify_all();
                }
                ka
            };
            drop(keep_alive);
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        if crate::sync::model_teardown() {
            // A model execution is being torn down (schedule aborted, or
            // this drop runs during an assertion unwind): the checker owns
            // every model thread and each shimmed wait below would wedge.
            // Skip the shutdown protocol; the engine reclaims the threads.
            return;
        }
        // Let in-flight topologies finish: their node pointers reference
        // graphs that callers may drop right after their future resolves.
        // `finalize` signals `all_done` when the registry empties, so this
        // sleeps instead of burning a core on yield_now.
        {
            let mut running = self.inner.running.lock();
            while !running.is_empty() {
                self.inner.all_done.wait(&mut running);
            }
        }
        // Stop the introspection service (collector + HTTP acceptor)
        // before the workers: its threads hold an `Arc<Inner>` and poll a
        // stop flag with bounded sleeps, so the join is prompt.
        let introspect = self.inner.introspect.write().take();
        if let Some(state) = introspect {
            // ORDERING: Release — workers' Relaxed `live` loads may lag,
            // but anything they published before this store is visible to
            // the collector's final drain.
            self.inner.introspect_live.store(false, Ordering::Release);
            state.request_stop();
        }
        for t in self.aux_threads.lock().drain(..) {
            let _ = t.join();
        }
        // ORDERING: SeqCst puts the stop flag in the Dekker total order
        // ahead of wake_all, so a worker that re-checks queues on its way
        // to parking cannot miss shutdown and sleep forever.
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.notifier.wake_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.num_workers())
            .field("idlers", &self.num_idlers())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Worker loop (Algorithm 1)
// ---------------------------------------------------------------------------

fn worker_loop(inner: &Inner, mut ctx: WorkerCtx) {
    loop {
        // ORDERING: Acquire pairs with the SeqCst stop store in `drop`,
        // so a stopping worker sees all pre-shutdown writes.
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        // Line 2: own queue first (the cache was drained last round).
        let mut t = std::mem::take(&mut ctx.cache);
        if t == 0 {
            t = ctx.owner.pop().unwrap_or(0);
        }
        // Line 3: steal. The spinning counter gates redundant wake-ups
        // from concurrent pushes (see Inner::num_spinning).
        if t == 0 {
            // ORDERING: SeqCst bracket around the steal attempt — the
            // spinner count shares the Dekker total order with
            // `schedule`'s fence, so a submitter either sees a spinner
            // (and skips the wake) or the spinner's scan sees its push.
            inner.num_spinning.fetch_add(1, Ordering::SeqCst);
            t = try_steal(inner, &mut ctx);
            inner.num_spinning.fetch_sub(1, Ordering::SeqCst); // ORDERING: closes the bracket above.
        }
        // Lines 5–13: park when everything is empty.
        if t == 0 {
            // SAFETY: deliberately WRONG — this plain read races with the
            // plain write in `execute`; it is the bug this mutation seeds
            // for the sanitizer to catch.
            #[cfg(rustflow_weaken = "seed_plain_race")]
            let _ = unsafe { *inner.race_scratch.get() };
            inner.shareds[ctx.id].parks.fetch_add(1, Ordering::Relaxed);
            notify_observers(inner, |ob| ob.on_park(ctx.id));
            inner.notifier.wait(
                ctx.id,
                || {
                    inner.shareds.iter().all(|s| s.stealer.is_empty())
                        && inner.injector.lock().is_empty()
                },
                &inner.stop,
            );
            continue;
        }
        // Lines 16–25: run the task, then speculatively drain the cache —
        // a linear chain executes here without touching any queue. Every
        // non-empty take after the first task is a cache hit.
        // The counter bumps *before* `execute`: execution of the last task
        // finalizes its topology and releases `wait_for_all`, so counting
        // afterwards would let a freshly released reader miss the final
        // increments.
        inner.shareds[ctx.id]
            .executed
            .fetch_add(1, Ordering::Relaxed);
        execute(inner, &mut ctx, t as RawNode);
        loop {
            t = std::mem::take(&mut ctx.cache);
            if t == 0 {
                break;
            }
            inner.shareds[ctx.id]
                .cache_hits
                .fetch_add(1, Ordering::Relaxed);
            // SAFETY: the node is armed and its topology alive (same
            // contract as `execute` below, which runs it next).
            let label = unsafe { (*(t as RawNode)).label() };
            notify_observers(inner, |ob| ob.on_cache_hit(ctx.id, label));
            inner.shareds[ctx.id]
                .executed
                .fetch_add(1, Ordering::Relaxed);
            execute(inner, &mut ctx, t as RawNode);
        }
        // Lines 26–28: probabilistic wake-up for load balancing.
        if inner.cfg.wake_ratio != 0 && ctx.next_rand().is_multiple_of(inner.cfg.wake_ratio) {
            if let Some(woken) = inner.notifier.wake_one() {
                inner.shareds[ctx.id]
                    .wakes_sent
                    .fetch_add(1, Ordering::Relaxed);
                notify_observers(inner, |ob| ob.on_wake(ctx.id, woken, false));
            }
        }
    }
}

/// One round of stealing: last victim first, then the other workers, then
/// the external injector. `Retry` results re-attempt the same victim.
fn try_steal(inner: &Inner, ctx: &mut WorkerCtx) -> usize {
    let n = inner.shareds.len();
    let me = ctx.id;
    let mut attempts = 2 * n + 2;
    while attempts > 0 {
        attempts -= 1;
        let v = ctx.last_victim;
        if v != me {
            inner.shareds[me]
                .steal_attempts
                .fetch_add(1, Ordering::Relaxed);
            match inner.shareds[v].stealer.steal() {
                wsq::Steal::Success(x) => {
                    inner.shareds[me].steals.fetch_add(1, Ordering::Relaxed);
                    notify_observers(inner, |ob| ob.on_steal(me, v));
                    return x;
                }
                wsq::Steal::Retry => continue, // same victim again
                wsq::Steal::Empty => {}
            }
        }
        ctx.last_victim = (v + 1) % n;
    }
    // The injector guard drops before the observer hooks run.
    let popped = inner.injector.lock().pop_front();
    match popped {
        Some(x) => {
            inner.shareds[me]
                .injector_pops
                .fetch_add(1, Ordering::Relaxed);
            notify_observers(inner, |ob| ob.on_injector_pop(me));
            x
        }
        None => {
            inner.shareds[me]
                .steal_fails
                .fetch_add(1, Ordering::Relaxed);
            notify_observers(inner, |ob| ob.on_steal_fail(me));
            0
        }
    }
}

/// Schedules a node that just became ready, from worker context.
///
/// # Safety
/// `node` must be armed (join counter reached zero exactly once) and its
/// topology alive.
unsafe fn schedule(inner: &Inner, ctx: &mut WorkerCtx, node: RawNode) {
    let item = node as usize;
    if inner.cfg.cache_slot && ctx.cache == 0 {
        // First ready successor: speculative execution, no queue traffic.
        ctx.cache = item;
        return;
    }
    ctx.owner.push(item);
    // ORDERING: Dekker fence + SeqCst load — the push must precede the
    // spinner/idler checks in the single total order (notifier docs);
    // otherwise the new task could go unnoticed by every worker.
    fence(Ordering::SeqCst);
    if inner.num_spinning.load(Ordering::SeqCst) == 0 {
        if let Some(woken) = inner.notifier.wake_one() {
            inner.shareds[ctx.id]
                .wakes_sent
                .fetch_add(1, Ordering::Relaxed);
            notify_observers(inner, |ob| ob.on_wake(ctx.id, woken, true));
        }
    }
}

/// Executes a node: runs its work (retrying per the node's
/// [`RetryPolicy`](crate::graph::RetryPolicy)), spawns its subflow if any,
/// and performs completion bookkeeping. A node whose topology was
/// cancelled before this point is **skipped**: its work never runs, only
/// the bookkeeping — which is what lets a cancelled graph drain promptly
/// instead of executing its whole tail.
fn execute(inner: &Inner, ctx: &mut WorkerCtx, node: RawNode) {
    // SAFETY: the scheduling protocol hands each armed node to exactly one
    // worker; the node's topology (and thus the node) is kept alive by
    // `inner.running` until every node completed.
    unsafe {
        let topo = &*(*(*node).state.topology.get());
        if topo.is_cancelled() {
            // The cancel flag was published after `RunError::Cancelled`
            // was recorded (see `Topology::cancel`), so skipping here can
            // never let the batch resolve `Ok`. Skipped tasks emit no
            // begin/end span — they did not run.
            inner.shareds[ctx.id]
                .skipped
                .fetch_add(1, Ordering::Relaxed);
            let label = (*node).label();
            notify_observers(inner, |ob| ob.on_task_skipped(ctx.id, label));
            complete(inner, ctx, node);
            return;
        }
        // Publish the running task for live introspection (`/status`,
        // stall watchdog). Off by default: one relaxed load per task;
        // when live, two uncontended mutex writes bracketing the work.
        let live = inner.introspect_live.load(Ordering::Relaxed);
        if live {
            *inner.shareds[ctx.id].current.lock() = Some(CurrentTask {
                label: (*node).label().clone(),
                node: node as u64,
                topology: topo.uid(),
                since_us: crate::clock::now_us(),
            });
        }
        // ORDERING: Acquire pairs with `observe`'s Release, so span hooks
        // run against a fully-installed observer list.
        let observed = inner.has_observers.load(Ordering::Acquire);
        // Span identity is built only when somebody is listening; the
        // zero-observer hot path pays the single Acquire load and nothing
        // else. Node and parent addresses are stable for the iteration,
        // and the run id cannot change while this node is alive.
        let span = observed.then(|| crate::observer::TaskSpanInfo {
            node: node as u64,
            parent: (*(*node).state.parent.get()) as u64,
            run: topo.run_id(),
        });
        if let Some(span) = span {
            let label = (*node).label();
            for ob in inner.observers.read().iter() {
                ob.on_task_begin(ctx.id, label, span);
            }
        }
        let retry = (*node).retry_policy();
        let mut attempt: u32 = 0;
        let mut deferred = false;
        loop {
            let mut failed: Option<Box<dyn std::any::Any + Send>> = None;
            let mut will_retry = false;
            {
                // Publish the executing topology so the closure can poll
                // `this_task::is_cancelled()` / read its iteration.
                let _task_scope = crate::this_task::ContextGuard::enter(topo as *const Topology);
                match (*node).structure.work.get_mut() {
                    Work::Empty => {}
                    Work::Static(f) => {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                            if crate::sync::is_model_abort(payload.as_ref()) {
                                // Engine-internal unwind tearing the model
                                // execution down: the topology may already
                                // be freed, so no bookkeeping — rethrow.
                                std::panic::resume_unwind(payload);
                            }
                            will_retry = attempt < retry.limit && !topo.is_cancelled();
                            failed = Some(payload);
                        }
                    }
                    Work::Dynamic(f) => {
                        let mut sf = Subflow::new(node);
                        match catch_unwind(AssertUnwindSafe(|| f(&mut sf))) {
                            Ok(()) => deferred = spawn_subflow(inner, ctx, node, sf.is_detached()),
                            Err(payload) => {
                                if crate::sync::is_model_abort(payload.as_ref()) {
                                    // See the static arm above.
                                    std::panic::resume_unwind(payload);
                                }
                                will_retry = attempt < retry.limit && !topo.is_cancelled();
                                if !will_retry {
                                    // Final failure: publish whatever the
                                    // closure managed to spawn, preserving
                                    // the historical partially-built-subflow
                                    // semantics (children built before the
                                    // panic still run under ContinueAll).
                                    deferred = spawn_subflow(inner, ctx, node, sf.is_detached());
                                }
                                failed = Some(payload);
                            }
                        }
                    }
                }
            }
            let Some(payload) = failed else { break };
            if will_retry {
                attempt += 1;
                inner.shareds[ctx.id]
                    .retries
                    .fetch_add(1, Ordering::Relaxed);
                let label = (*node).label();
                notify_observers(inner, |ob| ob.on_task_retry(ctx.id, label, attempt));
                // Reset just this node's run state (half-built subflow,
                // joined-child countdown); nothing propagated to
                // successors or `alive` yet, so the retry is invisible to
                // the rest of the graph.
                (*node).rearm_retry();
                let pause = retry.backoff(attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                continue;
            }
            topo.record_panic(
                TaskPanic::new((*node).label().to_string(), panic_message(&*payload))
                    .with_iteration(topo.iterations()),
            );
            if topo.policy() == FailurePolicy::FailFast {
                // The panic is recorded (and wins over `Cancelled`), so
                // publishing the flag now satisfies the same
                // record-before-publish order `Topology::cancel` keeps.
                topo.cancel_internal();
            }
            break;
        }
        // SAFETY: deliberately WRONG — this plain increment races with the
        // plain read in `worker_loop`; it is the bug this mutation seeds
        // for the sanitizer to catch.
        #[cfg(rustflow_weaken = "seed_plain_race")]
        {
            *inner.race_scratch.get_mut() += 1;
        }
        if live {
            *inner.shareds[ctx.id].current.lock() = None;
        }
        if let Some(span) = span {
            let label = (*node).label();
            for ob in inner.observers.read().iter() {
                ob.on_task_end(ctx.id, label, span);
            }
        }
        if deferred {
            // Drop the spawn sentinel; the last finishing child (or we,
            // right now, if they all already finished) completes the node.
            // ORDERING: AcqRel — Release publishes this side's writes to
            // whoever hits zero; Acquire on the zero-crossing gathers
            // every child's effects before `complete` runs.
            if (*node).state.nested.fetch_sub(1, Ordering::AcqRel) == 1 {
                complete(inner, ctx, node);
            }
        } else {
            complete(inner, ctx, node);
        }
    }
}

/// Publishes a dynamic task's spawned children (§III-D).
///
/// Returns `true` when the parent's completion is deferred until the
/// (joined) children finish.
///
/// # Safety
/// Caller is the worker that just executed `node`.
unsafe fn spawn_subflow(inner: &Inner, ctx: &mut WorkerCtx, node: RawNode, detached: bool) -> bool {
    // SAFETY: the caller is the sole worker executing `node`, so its
    // subgraph is exclusively ours (cleared at re-arm, so it holds only
    // what this iteration's closure spawned).
    let sub = unsafe { (*node).state.subgraph.get_mut() };
    if sub.is_empty() {
        return false;
    }
    // Runtime-built graphs get the same sanitation as dispatched ones: a
    // cyclic subflow would keep the topology's `alive` counter from ever
    // reaching zero, wedging `wait_for_all`. Record the typed error and
    // spawn nothing (the parent completes as an empty subflow).
    //
    // SAFETY: no child has been spawned, so the subgraph is quiescent.
    let diagnostics = unsafe { crate::validate::validate_graph(sub) };
    if diagnostics.iter().any(|d| d.is_fatal()) {
        // SAFETY: the topology pointer was armed at dispatch and its
        // storage is kept alive by the executor's `running` registry.
        let topo_ptr = unsafe { *(*node).state.topology.get() };
        // SAFETY: `topo_ptr` is live (see above); `record_error` is
        // internally synchronized.
        unsafe { (*topo_ptr).record_error(RunError::InvalidGraph(diagnostics)) };
        return false;
    }
    // SAFETY: armed at dispatch, kept alive by `running` (see above).
    let topo_ptr = unsafe { *(*node).state.topology.get() };
    // The topology must know about the children before any of them can
    // finish, otherwise `alive` could hit zero early.
    //
    // SAFETY: `topo_ptr` is live; `alive` is an atomic.
    unsafe { (*topo_ptr).alive.fetch_add(sub.len(), Ordering::Relaxed) };
    if !detached {
        // +1 sentinel held by the parent until spawning finishes; prevents
        // the children from completing the parent while we still arm their
        // siblings.
        //
        // SAFETY: `node` is ours (executing worker); `nested` is atomic.
        unsafe { (*node).state.nested.store(sub.len() + 1, Ordering::Relaxed) };
    }
    let parent: RawNode = if detached { std::ptr::null_mut() } else { node };
    for child in sub.nodes.iter_mut() {
        // SAFETY: `child` is a boxed node owned by the subgraph; it has
        // not been scheduled yet, so we have exclusive access.
        unsafe { child.rearm(topo_ptr, parent) };
    }
    for i in 0..sub.nodes.len() {
        let c: RawNode = &mut *sub.nodes[i];
        // SAFETY: in-degree is frozen once the subflow closure returned.
        if unsafe { *(*c).structure.in_degree.get() } == 0 {
            // SAFETY: `c` is armed (join counter = in-degree = 0) and its
            // topology alive.
            unsafe { schedule(inner, ctx, c) };
        }
    }
    !detached
}

/// Completion bookkeeping: release successors, count down the topology,
/// and propagate joined-subflow completion to the parent.
///
/// # Safety
/// Called exactly once per node, by the worker that finished it (or, for a
/// parent with a joined subflow, by the worker that finished its last
/// child).
unsafe fn complete(inner: &Inner, ctx: &mut WorkerCtx, node: RawNode) {
    // SAFETY: per this function's contract the node is finished and owned
    // by us; its topology/parent pointers were armed before it could run,
    // and their storage outlives the topology, which `inner.running`
    // keeps alive until the last node (at least until this call returns).
    let topo_ptr = unsafe { *(*node).state.topology.get() };
    // SAFETY: same contract; `parent` was armed at spawn time.
    let parent = unsafe { *(*node).state.parent.get() };
    {
        // SAFETY: successors are frozen after the build/spawn phase.
        let succs = unsafe { (*node).structure.successors.get() };
        for &s in succs.iter() {
            // ORDERING: AcqRel — each predecessor Releases its task's
            // effects; the zero-crossing Acquires them all, so `s` runs
            // after every dependency in the happens-before order.
            // SAFETY: `s` targets a live boxed node of the same topology;
            // `join_counter` is atomic.
            if unsafe { (*s).state.join_counter.fetch_sub(1, Ordering::AcqRel) } == 1 {
                // SAFETY: the zero-crossing arms `s`; it happened exactly
                // once, so we are its unique scheduler.
                unsafe { schedule(inner, ctx, s) };
            }
        }
    }
    // ORDERING: AcqRel — the finalizing zero-crossing must Acquire every
    // node's completion writes before tearing the iteration down.
    // SAFETY: `topo_ptr` is live until the last `alive` decrement — which
    // is at earliest this one.
    if unsafe { (*topo_ptr).alive.fetch_sub(1, Ordering::AcqRel) } == 1 {
        // Only a node with no parent can be the last alive: a parent's own
        // completion is always pending while any child lives.
        debug_assert!(parent.is_null());
        finalize(inner, topo_ptr);
        return;
    }
    // ORDERING: AcqRel — the last joined child's effects are Acquired
    // before the parent completes (mirror of the sentinel drop above).
    // SAFETY: a non-null parent is a live node awaiting its joined
    // children; `nested` is atomic.
    if !parent.is_null() && unsafe { (*parent).state.nested.fetch_sub(1, Ordering::AcqRel) } == 1 {
        // SAFETY: the last joined child completes the parent exactly once.
        unsafe { complete(inner, ctx, parent) };
    }
}

/// Ends the iteration whose last node just completed, then hands the
/// driver role back to the batch state machine — which either re-arms and
/// re-dispatches the same topology for its next iteration or retires the
/// keep-alive once every queued batch has resolved.
fn finalize(inner: &Inner, topo_ptr: *const Topology) {
    // SAFETY: the keep-alive registry holds the topology until `advance`
    // transitions it to idle (inside `advance_topology` below), so the
    // pointer is live for this whole call.
    let topo = unsafe { &*topo_ptr };
    notify_observers(inner, |ob| ob.on_topology_stop(topo.iteration_info()));
    advance_topology(inner, topo, true);
}
