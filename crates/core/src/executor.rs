//! The work-stealing / work-sharing executor (§III-E, Algorithm 1).
//!
//! Each worker owns a Chase–Lev deque ([`crate::wsq`]) plus an **exclusive
//! task cache**: when a finishing task makes exactly one successor ready,
//! that successor goes straight into the cache and is executed next by the
//! same worker — linear chains run speculatively with no queue traffic and
//! no wake-ups (Algorithm 1 lines 16–25). Workers that find every queue
//! empty park themselves on the **idler list** ([`crate::notifier`]), from
//! which wakers pop exactly one spare worker (lines 5–13). After draining
//! a chain, a worker wakes one idler with a small probability to rebalance
//! load (lines 26–28).
//!
//! An executor is shareable between any number of taskflows
//! (`Arc<Executor>`), mirroring the paper's `std::shared_ptr`-managed
//! executor that avoids thread over-subscription in modular applications.

use crate::error::{panic_message, AdmissionError, FailurePolicy, RunError, RunResult, TaskPanic};
use crate::future::{Promise, SharedFuture};
use crate::graph::{RawNode, Work};
use crate::injector::Injector;
use crate::introspect::{CurrentTask, IntrospectConfig, IntrospectHandle, IntrospectState};
use crate::notifier::Notifier;
use crate::observer::{ExecutorObserver, DISPATCH_LANE};
use crate::stats::{AtomicHistogram, ExecutorStats, TenantStats, WorkerStats};
use crate::subflow::Subflow;
use crate::sync::{fence, AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, RwLock};
use crate::topology::{Advance, PendingRun, RunCondition, Topology};
use crate::wsq;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the scheduling algorithm; the defaults match the paper.
/// The ablation switches exist so the benches can quantify each heuristic.
#[derive(Debug, Clone)]
pub(crate) struct Config {
    /// Use the per-worker cache slot for the first ready successor.
    pub cache_slot: bool,
    /// After draining a chain, wake one idler with probability
    /// `1/wake_ratio` (0 disables the heuristic).
    pub wake_ratio: u64,
    /// Initial per-worker deque capacity (power of two). The default
    /// matches [`crate::wsq`]; tiny capacities exist so the sanitizer can
    /// reach the deque's grow path with model-sized graphs.
    pub queue_capacity: usize,
    /// Slot count of the lock-free MPMC injector ring; dispatch bursts
    /// past it spill into the injector's mutexed side queue.
    pub injector_capacity: usize,
    /// Ablation switch: route the injector through its mutexed side queue
    /// on every operation, reproducing the seed's `Mutex<VecDeque>`
    /// submission path for A/B benchmarking.
    pub mutexed_injector: bool,
    /// Admission budget: how many tenant-submitted topologies may be
    /// dispatched-but-not-finalized at once. Submissions past it queue
    /// per tenant and are released by weighted fair queueing.
    /// `usize::MAX` (the default) never queues.
    pub max_inflight: usize,
    /// Record per-tenant lifecycle latency into lock-free histogram
    /// shards (default on; the cost is a few relaxed atomics per tenant
    /// run). The `false` side is the introspect-gate's A/B ablation.
    pub latency_histograms: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cache_slot: true,
            wake_ratio: 64,
            queue_capacity: wsq::INITIAL_CAPACITY,
            injector_capacity: 1024,
            mutexed_injector: false,
            max_inflight: usize::MAX,
            latency_histograms: true,
        }
    }
}

/// Builds an [`Executor`] with custom settings.
///
/// ```
/// let ex = rustflow::ExecutorBuilder::new().workers(2).build();
/// assert_eq!(ex.num_workers(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ExecutorBuilder {
    workers: Option<usize>,
    cfg: Config,
}

impl ExecutorBuilder {
    /// Starts a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of worker threads (default: available parallelism).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Ablation switch: disable the per-worker task cache so every ready
    /// successor goes through the deque.
    pub fn cache_slot(mut self, enabled: bool) -> Self {
        self.cfg.cache_slot = enabled;
        self
    }

    /// Ablation switch: the load-balancing wake-up fires with probability
    /// `1/ratio` after each drained chain (0 disables it).
    pub fn wake_ratio(mut self, ratio: u64) -> Self {
        self.cfg.wake_ratio = ratio;
        self
    }

    /// Initial per-worker deque capacity (rounded up to a power of two,
    /// minimum 2). Defaults to the production size; the sanitizer shrinks
    /// it so the Chase–Lev grow path is exercised by model-sized graphs.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity.max(2).next_power_of_two();
        self
    }

    /// Slot count of the lock-free MPMC injector ring (rounded up to a
    /// power of two, minimum 2). Dispatch bursts larger than the ring
    /// spill into a mutexed side queue, so no capacity loses tasks.
    pub fn injector_capacity(mut self, capacity: usize) -> Self {
        self.cfg.injector_capacity = capacity.max(2).next_power_of_two();
        self
    }

    /// Ablation switch: replace the lock-free injector with the seed's
    /// mutexed queue on the identical code path — the baseline the
    /// `serving` benchmark compares submission throughput against.
    pub fn mutexed_injector(mut self, enabled: bool) -> Self {
        self.cfg.mutexed_injector = enabled;
        self
    }

    /// Admission budget for tenant submissions: at most `n` tenant
    /// topologies may be dispatched-but-not-finalized at once; further
    /// submissions wait in their tenant's bounded queue and are released
    /// by weighted fair queueing. Defaults to unlimited (submissions
    /// dispatch immediately and tenant queues never fill).
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.cfg.max_inflight = n.max(1);
        self
    }

    /// Ablation switch: record per-tenant lifecycle latency (submit →
    /// admitted → dispatched → first task → finalize) into lock-free
    /// histogram shards, surfaced via `/metrics` and `/status` (default
    /// on). Disabling it removes the per-run stamping and recording —
    /// the baseline the introspect-gate A/Bs the latency layer against.
    pub fn latency_histograms(mut self, enabled: bool) -> Self {
        self.cfg.latency_histograms = enabled;
        self
    }

    /// Builds the executor and spawns its worker threads.
    pub fn build(self) -> Arc<Executor> {
        let workers = self.workers.unwrap_or_else(default_parallelism);
        Executor::with_config(workers, self.cfg)
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-worker state visible to other threads.
pub(crate) struct WorkerShared {
    pub(crate) stealer: wsq::Stealer,
    /// The task this worker is executing right now, published only while
    /// live introspection is on (`Inner::introspect_live`). Uncontended
    /// in steady state: the worker writes twice per task, the collector
    /// reads once per period.
    pub(crate) current: Mutex<Option<CurrentTask>>,
    /// Diagnostic counters (relaxed; advisory). Each worker writes only
    /// its own set, so there is no cross-worker contention.
    executed: AtomicU64,
    cache_hits: AtomicU64,
    steals: AtomicU64,
    steal_attempts: AtomicU64,
    steal_fails: AtomicU64,
    injector_pops: AtomicU64,
    parks: AtomicU64,
    wakes_sent: AtomicU64,
    skipped: AtomicU64,
    retries: AtomicU64,
}

impl WorkerShared {
    pub(crate) fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            executed: self.executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steal_fails: self.steal_fails.load(Ordering::Relaxed),
            injector_pops: self.injector_pops.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            wakes_sent: self.wakes_sent.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            ring_dropped: 0,
        }
    }
}

/// Per-worker private state.
struct WorkerCtx {
    id: usize,
    owner: wsq::Owner,
    /// The exclusive task cache (Algorithm 1); 0 = empty.
    cache: usize,
    /// xorshift64 state for the probabilistic wake-up.
    rng: u64,
    last_victim: usize,
}

impl WorkerCtx {
    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64: cheap thread-local randomness; quality is irrelevant,
        // we only need an unbiased-enough coin for the wake heuristic.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

pub(crate) struct Inner {
    pub(crate) shareds: Box<[WorkerShared]>,
    /// External submission queue (dispatch pushes source tasks here):
    /// a lock-free MPMC ring with a mutexed overflow spill.
    pub(crate) injector: Injector,
    /// Workers currently inside a steal round. While any thief is active
    /// there is no need to wake another worker for a freshly pushed task —
    /// the spinning thief will find it (Cpp-Taskflow's notifier applies
    /// the same guard). Safe against lost wake-ups because a thief that
    /// gives up re-checks every queue under the notifier's Dekker
    /// protocol before parking.
    num_spinning: AtomicUsize,
    pub(crate) notifier: Notifier,
    stop: AtomicBool,
    /// Keep-alive registry: topologies currently executing, keyed by
    /// stable uid, plus the authoritative shutdown flag (see
    /// [`RunningRegistry`]).
    pub(crate) running: Mutex<RunningRegistry>,
    /// Signalled (under the `running` mutex) whenever the registry
    /// empties; `Executor::drop` sleeps on it instead of busy-yielding.
    all_done: Condvar,
    /// Fast-path mirror of [`RunningRegistry::closing`]: lets submission
    /// paths reject without the registry lock. The registry bool (set
    /// first, under its lock) is the authoritative race-free check.
    closing: AtomicBool,
    /// Tenant control plane: the tenant list and the weighted-fair-queue
    /// dispatch state (virtual time, in-flight budget).
    qos: Mutex<QosState>,
    observers: RwLock<Vec<Arc<dyn ExecutorObserver>>>,
    has_observers: AtomicBool,
    cfg: Config,
    /// The shared monotonic clock origin ([`crate::clock::origin`]),
    /// latched here so every timestamp this executor emits — ring events,
    /// flight-recorder windows, `/trace` output, profile spans — lives in
    /// one time domain (`Executor::now_us`).
    pub(crate) epoch: Instant,
    /// `true` while live introspection is on; gates the current-task
    /// publication in `execute` (one relaxed load when off).
    pub(crate) introspect_live: AtomicBool,
    /// The live-introspection service, if started (collector + optional
    /// HTTP server). Holds a `Weak` back-reference to this `Inner`, so no
    /// cycle keeps the executor alive.
    pub(crate) introspect: RwLock<Option<Arc<IntrospectState>>>,
    /// Seeded sanitizer bug: a cell written plainly by `execute` and read
    /// plainly by parking workers with no ordering between them — a true
    /// data race the happens-before detector must flag.
    #[cfg(rustflow_weaken = "seed_plain_race")]
    race_scratch: crate::sync_cell::SyncCell<u64>,
}

impl Inner {
    /// Snapshot of every worker's counters, with ring-drop counts folded
    /// in from the introspection tracer when one is installed.
    pub(crate) fn worker_stats(&self) -> Vec<WorkerStats> {
        let mut stats: Vec<WorkerStats> = self.shareds.iter().map(|s| s.snapshot()).collect();
        if let Some(state) = self.introspect.read().as_ref() {
            for (w, dropped) in stats.iter_mut().zip(state.tracer().dropped_per_lane()) {
                w.ring_dropped = dropped;
            }
        }
        stats
    }

    /// Snapshot of every tenant's counters and gauges.
    pub(crate) fn tenant_stats(&self) -> Vec<TenantStats> {
        let tenants: Vec<Arc<TenantState>> = self.qos.lock().tenants.clone();
        tenants.iter().map(|t| t.snapshot()).collect()
    }

    /// Scrape-time merge of every tenant's latency shards: folds each
    /// lock-free [`AtomicHistogram`](crate::AtomicHistogram) into a plain
    /// [`Histogram`] per phase. Workers never pay for this — the fold is
    /// a bucket-count copy done by the scraping thread.
    pub(crate) fn tenant_latency(&self) -> Vec<TenantLatencySnapshot> {
        let tenants: Vec<Arc<TenantState>> = self.qos.lock().tenants.clone();
        tenants
            .iter()
            .map(|t| TenantLatencySnapshot {
                name: t.name.clone(),
                slo: t.slo,
                phases: LATENCY_PHASES
                    .iter()
                    .zip(t.latency.iter())
                    .map(|(phase, shard)| (*phase, shard.snapshot()))
                    .collect(),
            })
            .collect()
    }
}

/// One tenant's latency distributions, merged at scrape time: phase
/// label → bucketed histogram, in [`LATENCY_PHASES`] order.
pub(crate) struct TenantLatencySnapshot {
    pub(crate) name: String,
    pub(crate) slo: Option<SloSpec>,
    pub(crate) phases: Vec<(&'static str, crate::stats::Histogram)>,
}

/// Runs every observer hook iff at least one observer is installed; the
/// hot paths pay a single relaxed-ish load when tracing is off.
#[inline]
fn notify_observers(inner: &Inner, f: impl Fn(&dyn ExecutorObserver)) {
    // ORDERING: Acquire pairs with `observe`'s Release store, so a hook
    // that fires sees the fully-constructed observer list.
    if inner.has_observers.load(Ordering::Acquire) {
        for ob in inner.observers.read().iter() {
            f(&**ob);
        }
    }
}

/// A shared pool of worker threads executing task dependency graphs.
pub struct Executor {
    inner: Arc<Inner>,
    /// Worker threads: model threads under the sanitizer, real named
    /// threads otherwise (see [`crate::sync::thread`]).
    threads: Mutex<Vec<crate::sync::thread::JoinHandle<()>>>,
    /// Introspection service threads (collector, HTTP acceptor); joined
    /// on drop after their stop flag is raised. Always real `std` threads
    /// — introspection is outside the model's scope.
    aux_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Executor {
    /// Creates an executor with `workers` threads and default heuristics.
    pub fn new(workers: usize) -> Arc<Executor> {
        Executor::with_config(workers.max(1), Config::default())
    }

    fn with_config(workers: usize, cfg: Config) -> Arc<Executor> {
        let mut owners = Vec::with_capacity(workers);
        let mut shareds = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (owner, stealer) = wsq::deque_with_capacity(cfg.queue_capacity);
            owners.push(owner);
            shareds.push(WorkerShared {
                stealer,
                current: Mutex::new(None),
                executed: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                steal_attempts: AtomicU64::new(0),
                steal_fails: AtomicU64::new(0),
                injector_pops: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                wakes_sent: AtomicU64::new(0),
                skipped: AtomicU64::new(0),
                retries: AtomicU64::new(0),
            });
        }
        let inner = Arc::new(Inner {
            shareds: shareds.into_boxed_slice(),
            injector: Injector::new(cfg.injector_capacity, cfg.mutexed_injector),
            num_spinning: AtomicUsize::new(0),
            notifier: Notifier::new(workers),
            stop: AtomicBool::new(false),
            running: Mutex::new(RunningRegistry::default()),
            all_done: Condvar::new(),
            closing: AtomicBool::new(false),
            qos: Mutex::new(QosState::default()),
            observers: RwLock::new(Vec::new()),
            has_observers: AtomicBool::new(false),
            cfg,
            epoch: crate::clock::origin(),
            introspect_live: AtomicBool::new(false),
            introspect: RwLock::new(None),
            #[cfg(rustflow_weaken = "seed_plain_race")]
            race_scratch: crate::sync_cell::SyncCell::new(0),
        });
        let mut threads = Vec::with_capacity(workers);
        for (id, owner) in owners.into_iter().enumerate() {
            let inner = Arc::clone(&inner);
            let ctx = WorkerCtx {
                id,
                owner,
                cache: 0,
                rng: 0x9E37_79B9_7F4A_7C15 ^ ((id as u64 + 1) << 17),
                last_victim: (id + 1) % workers,
            };
            threads.push(crate::sync::thread::spawn_named(
                format!("rustflow-worker-{id}"),
                move || worker_loop(&inner, ctx),
            ));
        }
        Arc::new(Executor {
            inner,
            threads: Mutex::new(threads),
            aux_threads: Mutex::new(Vec::new()),
        })
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.inner.shareds.len()
    }

    /// Number of currently parked (idle) workers; advisory.
    pub fn num_idlers(&self) -> usize {
        self.inner.notifier.num_idlers()
    }

    /// Number of topologies currently executing on this executor.
    pub fn num_running_topologies(&self) -> usize {
        self.inner.running.lock().len()
    }

    /// Returns the tenant handle for `name`, creating it with the default
    /// [`TenantQos`] on first use. Handles are cheap to clone and safe to
    /// share across client threads.
    pub fn tenant(&self, name: &str) -> Tenant {
        self.tenant_with(name, TenantQos::default())
    }

    /// Returns the tenant handle for `name`, creating it with `qos` on
    /// first use. A tenant that already exists keeps its original QoS —
    /// weights are fixed at creation so the fair-queue arithmetic stays
    /// consistent across in-flight work.
    pub fn tenant_with(&self, name: &str, qos: TenantQos) -> Tenant {
        let mut q = self.inner.qos.lock();
        let state = match q.tenants.iter().find(|t| t.name == name) {
            Some(t) => Arc::clone(t),
            None => {
                let state = Arc::new(TenantState::new(
                    q.tenants.len() as u64 + 1,
                    name.to_string(),
                    qos,
                ));
                q.tenants.push(Arc::clone(&state));
                state
            }
        };
        drop(q);
        Tenant {
            state,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Stops admitting work: every queued tenant submission and every
    /// later `submit`/`try_submit` resolves with
    /// [`AdmissionError::ShuttingDown`]; topologies already dispatched run
    /// to completion. Idempotent; called automatically by `Drop`. This is
    /// the serving drain hook — call it before tearing a service down to
    /// get typed rejections instead of racing the destructor.
    pub fn close(&self) {
        {
            // The registry bool is authoritative: submission paths check
            // it under the same lock that registers keep-alives, so a
            // submission either registers before the drain below or is
            // rejected — never silently dropped.
            self.inner.running.lock().closing = true;
        }
        // ORDERING: SeqCst publishes the fast-path flag before the queue
        // drain; a tenant submit that pushed before the drain acquired
        // its queue lock is drained, one after sees the flag (checked
        // under the same queue lock) and is rejected.
        self.inner.closing.store(true, Ordering::SeqCst);
        let tenants: Vec<Arc<TenantState>> = self.inner.qos.lock().tenants.clone();
        for tenant in tenants {
            let drained: Vec<QueuedRun> = {
                let mut q = tenant.queue.lock();
                let runs: Vec<QueuedRun> = q.drain(..).collect();
                // Counted under the queue lock, atomically with the
                // drain, so the ledger stays balanced for scrapers.
                tenant
                    .rejected_shutdown
                    .fetch_add(runs.len() as u64, Ordering::Relaxed);
                // Unblock submitters waiting for queue space; they
                // re-check the closing flag and return the typed error.
                tenant.space.notify_all();
                runs
            };
            for run in drained {
                tenant.release_probe(run.probe);
                run.promise
                    .set(Err(RunError::Rejected(AdmissionError::ShuttingDown)));
            }
        }
    }

    /// Installs an observer whose hooks run around every task execution.
    pub fn observe(&self, observer: Arc<dyn ExecutorObserver>) {
        observer.on_observe(self.num_workers());
        let mut obs = self.inner.observers.write();
        obs.push(observer);
        // ORDERING: Release publishes the list write above to
        // `notify_observers`' Acquire fast-path load.
        self.inner.has_observers.store(true, Ordering::Release);
    }

    /// Removes all observers.
    pub fn remove_observers(&self) {
        let mut obs = self.inner.observers.write();
        obs.clear();
        // ORDERING: Release orders the clear before the flag flip; the
        // fast path never iterates a list mid-teardown.
        self.inner.has_observers.store(false, Ordering::Release);
    }

    /// Per-worker diagnostic counters. When live introspection is on
    /// ([`Executor::serve_introspection`]) each entry also carries its
    /// worker's telemetry-ring drop count
    /// ([`WorkerStats::ring_dropped`]).
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.inner.worker_stats()
    }

    /// A point-in-time snapshot of every worker's counters, ready for
    /// diffing ([`ExecutorStats::delta`]) or Prometheus-style export
    /// ([`ExecutorStats::prometheus_text`]).
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            workers: self.worker_stats(),
            tenants: self.inner.tenant_stats(),
        }
    }

    /// Microseconds since the process-wide monotonic clock origin — the
    /// time domain of every [`SchedEvent::ts_us`](crate::SchedEvent),
    /// flight-recorder window, `/trace` timestamp, and profile span this
    /// executor emits. Scrapers use it to correlate a live observation
    /// with trace output.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Starts the live-introspection collector (flight recorder +
    /// watchdog) **without** an HTTP endpoint; snapshots are read through
    /// the returned [`IntrospectHandle`]. The whole feature is off until
    /// this (or [`Executor::serve_introspection`]) is called: workers pay
    /// one relaxed load per task when disabled.
    ///
    /// Errors with [`std::io::ErrorKind::AlreadyExists`] if introspection
    /// was already started on this executor.
    pub fn start_introspection(
        &self,
        config: IntrospectConfig,
    ) -> std::io::Result<IntrospectHandle> {
        crate::introspect::start(self, &self.inner, config, None)
    }

    /// Starts live introspection with the default [`IntrospectConfig`]
    /// and serves it over an embedded HTTP endpoint bound to `addr`
    /// (e.g. `"127.0.0.1:9100"`; port 0 picks a free port — read it back
    /// via [`IntrospectHandle::local_addr`]).
    ///
    /// Routes: `GET /metrics` (Prometheus text), `GET /status` (JSON
    /// snapshot), `GET /trace?last_ms=N` (Chrome-trace JSON window from
    /// the flight recorder). The server is a dependency-free blocking
    /// `TcpListener` acceptor on its own thread; it shuts down with the
    /// executor.
    pub fn serve_introspection(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<IntrospectHandle> {
        self.serve_introspection_with(addr, IntrospectConfig::default())
    }

    /// [`Executor::serve_introspection`] with a custom config.
    pub fn serve_introspection_with(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: IntrospectConfig,
    ) -> std::io::Result<IntrospectHandle> {
        let listener = std::net::TcpListener::bind(addr)?;
        crate::introspect::start(self, &self.inner, config, Some(listener))
    }

    /// Hands the introspection service threads to the executor, which
    /// joins them on drop (after raising the service's stop flag).
    pub(crate) fn adopt_aux_threads(&self, threads: Vec<JoinHandle<()>>) {
        self.aux_threads.lock().extend(threads);
    }

    /// The process-wide default executor (used by [`crate::Taskflow::new`]),
    /// sized to the machine's available parallelism.
    pub fn default_shared() -> Arc<Executor> {
        static DEFAULT: OnceLock<Arc<Executor>> = OnceLock::new();
        Arc::clone(DEFAULT.get_or_init(|| Executor::new(default_parallelism())))
    }

    /// Submits an execution batch (`cond`) for a reusable topology and
    /// returns its completion future.
    ///
    /// Fast-fails on the topology's cached sanitizer verdict without
    /// touching the queue — a graph that could never complete (dependency
    /// cycle, self-edge) resolves immediately with
    /// [`RunError::InvalidGraph`] instead of deadlocking the worker pool
    /// as in Cpp-Taskflow. If the submission claims the idle topology, the
    /// caller's thread becomes the driver: it registers the keep-alive and
    /// starts the first iteration; otherwise the batch waits FIFO and the
    /// executor's finalize path picks it up.
    ///
    /// A submission racing shutdown resolves with
    /// [`RunError::Rejected`]`(`[`AdmissionError::ShuttingDown`]`)`: the
    /// closing check and the enqueue-plus-register step share one registry
    /// lock hold, so `Executor::drop` (which sets the flag under the same
    /// lock before waiting for the registry to empty) can never observe
    /// emptiness while a submission is half-registered.
    pub(crate) fn run_topology(
        &self,
        topo: &Arc<Topology>,
        cond: RunCondition,
    ) -> SharedFuture<RunResult> {
        if let Some(fatal) = topo.fatal() {
            return SharedFuture::ready(Err(fatal.clone()));
        }
        if topo.num_static_nodes() == 0 {
            // Nothing to run; never reaches the workers.
            return SharedFuture::ready(Ok(()));
        }
        let (promise, future) = crate::future::promise_pair();
        let claimed = {
            let mut reg = self.inner.running.lock();
            if reg.closing {
                return SharedFuture::ready(Err(RunError::Rejected(AdmissionError::ShuttingDown)));
            }
            if topo.enqueue(PendingRun { cond, promise }) {
                reg.register(topo, None);
                true
            } else {
                false
            }
        };
        if claimed {
            // Untenanted claim: reset the tenant tag and lifecycle stamps
            // a previous tenant stint may have left on this (reusable)
            // topology, so observer events label this stint untenanted
            // and the latency pipeline stays disarmed.
            topo.set_tenant(0);
            topo.stamps.clear();
            advance_topology(&self.inner, topo, false);
        }
        future
    }

    /// Tenant-scoped submission: queues the batch in `tenant`'s bounded
    /// queue and lets the weighted-fair-queue pump dispatch it within the
    /// executor's in-flight budget. `block` decides what a full queue
    /// does: reject with [`AdmissionError::Saturated`] immediately, wait
    /// bounded, or wait indefinitely. `deadline`, when set (or defaulted
    /// from [`TenantQos::deadline`]), is checked for feasibility against
    /// the live queue-wait estimate and stamped onto the queued run for
    /// the dispatcher's shed check.
    pub(crate) fn run_topology_on(
        &self,
        tenant: &Tenant,
        topo: &Arc<Topology>,
        cond: RunCondition,
        block: Block,
        deadline: Option<Duration>,
    ) -> Result<SharedFuture<RunResult>, AdmissionError> {
        assert!(
            Arc::ptr_eq(&self.inner, &tenant.inner),
            "tenant '{}' belongs to a different executor",
            tenant.state.name
        );
        if let Some(fatal) = topo.fatal() {
            return Ok(SharedFuture::ready(Err(fatal.clone())));
        }
        if topo.num_static_nodes() == 0 {
            return Ok(SharedFuture::ready(Ok(())));
        }
        let state = &tenant.state;
        // Resolve the effective deadline (per-run override beats the
        // tenant default) and its feasibility estimate before taking the
        // queue lock — the estimate merges the admission-phase histogram
        // shards, which is too much work to do under the lock.
        let deadline = deadline.or(state.deadline);
        let estimate_us = match deadline {
            Some(_) => state.estimated_queue_wait_us(),
            None => None,
        };
        let (promise, future) = crate::future::promise_pair();
        let mut transition = None;
        let admitted = {
            let mut q = state.queue.lock();
            // Counted per admission *attempt* (under the queue lock, so
            // the ledger `submitted == queued + dispatched + coalesced +
            // shed + rejected_*` holds at every quiescent point).
            state.submitted.fetch_add(1, Ordering::Relaxed);
            self.admit_queued(state, &mut q, block, deadline, estimate_us, &mut transition)
                .map(|probe| {
                    let now = crate::clock::now_us().max(1);
                    q.push_back(QueuedRun {
                        topo: Arc::clone(topo),
                        cond,
                        promise,
                        // `.max(1)`: 0 is the "not stamped" sentinel and
                        // the clock's first microsecond is
                        // indistinguishable from it.
                        submit_us: if self.inner.cfg.latency_histograms {
                            now
                        } else {
                            0
                        },
                        admitted_us: 0,
                        enqueued_us: now,
                        deadline_us: deadline
                            .map(|d| now.saturating_add(d.as_micros() as u64))
                            .unwrap_or(0),
                        probe,
                    });
                })
        };
        // Emit outside the queue lock: diagnostic subscribers run
        // arbitrary code.
        if let Some((from, to)) = transition {
            emit_breaker_transition(&self.inner, state, from, to);
        }
        admitted?;
        pump_tenants(&self.inner);
        Ok(future)
    }

    /// The admission gauntlet for one tenant submission, run under the
    /// tenant's queue lock: shutdown check, circuit breaker, deadline
    /// feasibility, then the bounded-queue wait according to `block`.
    /// `Ok(probe)` clears the run for enqueue.
    fn admit_queued(
        &self,
        state: &TenantState,
        q: &mut crate::sync::MutexGuard<'_, VecDeque<QueuedRun>>,
        block: Block,
        deadline: Option<Duration>,
        estimate_us: Option<u64>,
        transition: &mut Option<(BreakerState, BreakerState)>,
    ) -> Result<bool, AdmissionError> {
        // ORDERING: SeqCst pairs with `close`'s store. Checked under the
        // queue lock: a push serialized before the drain is always
        // drained; one after always sees the flag. Either way no
        // submission is silently dropped.
        if self.inner.closing.load(Ordering::SeqCst) {
            state.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(AdmissionError::ShuttingDown);
        }
        // Breaker before deadline: an open breaker is the cheaper (and
        // more actionable) rejection. Checked once per submission — the
        // space wait below does not re-run it, so a probe admitted here
        // is never re-judged by its own claim.
        let probe = match state.breaker_admit(crate::clock::now_us().max(1), transition) {
            Ok(probe) => probe,
            Err(retry_after) => {
                state.rejected_breaker.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::BreakerOpen {
                    tenant: state.name.clone(),
                    retry_after,
                });
            }
        };
        // Deadline feasibility: cheap-reject beats queue-then-shed. Only
        // ever rejects with a warm histogram (cold start admits).
        if let (Some(deadline), Some(est)) = (deadline, estimate_us) {
            if est > deadline.as_micros() as u64 {
                state.rejected_infeasible.fetch_add(1, Ordering::Relaxed);
                state.release_probe(probe);
                return Err(AdmissionError::DeadlineInfeasible {
                    tenant: state.name.clone(),
                    deadline,
                    estimated_wait: Duration::from_micros(est),
                });
            }
        }
        loop {
            // ORDERING: SeqCst pairs with `close`'s store (same protocol
            // as the entry check above). Re-checked after every wakeup:
            // `close` drains the queue and notifies `space`, so a parked
            // submitter must observe the flag rather than push into a
            // drained queue.
            if self.inner.closing.load(Ordering::SeqCst) {
                state.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                state.release_probe(probe);
                return Err(AdmissionError::ShuttingDown);
            }
            if q.len() < state.max_queue {
                return Ok(probe);
            }
            match block {
                Block::Never => {}
                Block::Forever => {
                    state.space.wait(q);
                    continue;
                }
                Block::Until(until) => {
                    // Spurious wakeups loop back with the same absolute
                    // deadline; only a timeout with the queue still full
                    // gives up.
                    if !state.space.wait_until(q, until).timed_out() || q.len() < state.max_queue {
                        continue;
                    }
                }
            }
            state.rejected_saturated.fetch_add(1, Ordering::Relaxed);
            state.release_probe(probe);
            return Err(AdmissionError::Saturated {
                tenant: state.name.clone(),
                capacity: state.max_queue,
            });
        }
    }
}

/// What a tenant submission does when the queue is at `max_queued`
/// ([`Executor::run_topology_on`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Block {
    /// Reject with [`AdmissionError::Saturated`] immediately
    /// (`try_run_on`).
    Never,
    /// Wait for space until the absolute deadline, then reject with
    /// [`AdmissionError::Saturated`] (`run_on_timeout`).
    Until(Instant),
    /// Wait for space indefinitely (`run_on`).
    Forever,
}

/// Drives a topology on behalf of the current driver (the thread that
/// claimed it at submission, or the worker whose final `alive` decrement
/// ended an iteration): steps the batch state machine, then re-arms and
/// publishes the next iteration — or, when every batch is done, drops the
/// keep-alive registration.
fn advance_topology(inner: &Inner, topo: &Topology, iteration_finished: bool) {
    // Lifecycle stamps must be copied out *before* `advance` can
    // transition the topology to idle: the instant it is idle, a
    // concurrent resubmission may claim it and overwrite the stamps with
    // its own stint's. The end stamp is taken here too — before `advance`
    // resolves the promises — so the recorded e2e interval is bracketed
    // by any client timing its own submit→resolve round trip (promise
    // resolution and finalize bookkeeping can be descheduled for a long
    // time on a loaded box, and that wait belongs to neither view). Four
    // relaxed loads and a clock read, skipped when the pipeline is off.
    let stamps = inner
        .cfg
        .latency_histograms
        .then(|| (topo.stamps.snapshot(), crate::clock::now_us().max(1)));
    // The breaker's failure signal must be read before `advance` too: the
    // idle transition consumes the recorded error while resolving the
    // run's promises. Panics (and invalid graphs) count; a plain
    // cancellation is the client's choice, not the tenant's health.
    let failed = topo.tenant_id() != 0 && topo.has_panic();
    // SAFETY: the caller holds the driver role per the functions's
    // contract; at most one driver exists per topology at a time.
    match unsafe { topo.advance(iteration_finished) } {
        Advance::RunIteration => {
            // SAFETY: driver role; the topology is quiescent between
            // iterations, so re-arming owns every node until `publish`
            // makes the sources visible below.
            unsafe {
                topo.begin_iteration(|sources| {
                    notify_observers(inner, |ob| {
                        ob.on_topology_start(topo.iteration_info(), topo.num_static_nodes())
                    });
                    let k = sources.len();
                    inner.injector.push_batch(sources.iter().copied());
                    // ORDERING: Dekker fence — the pushes above must
                    // precede the idler check inside wake_one in the
                    // SeqCst total order (see notifier docs), or a
                    // concurrently-parking worker could be missed.
                    fence(Ordering::SeqCst);
                    for _ in 0..k {
                        match inner.notifier.wake_one() {
                            Some(w) => {
                                notify_observers(inner, |ob| ob.on_wake(DISPATCH_LANE, w, true))
                            }
                            None => break,
                        }
                    }
                });
            }
        }
        Advance::Idle => {
            // Every promise is resolved and the topology is settled: drop
            // the keep-alive. A concurrent resubmission may already have
            // pushed its own registration under the same uid; removing the
            // *oldest* registration keeps the count balanced either way
            // (O(1) in the slab, no linear scan).
            let (keep_alive, tenant) = {
                let mut running = inner.running.lock();
                let removed = running.remove_one(topo.uid());
                if running.is_empty() {
                    // Wake a destructor waiting for quiescence
                    // (Executor::drop).
                    inner.all_done.notify_all();
                }
                removed
            };
            drop(keep_alive);
            if let Some(tenant) = tenant {
                // Fold the finished stint into the tenant's latency
                // shards (a few relaxed fetch_adds; coalesced piggybacks
                // never get here — they are counted separately and have
                // no lifecycle of their own).
                if let Some((stamps, end_us)) = stamps {
                    record_latency(&tenant, stamps, end_us);
                }
                // Credit the tenant and return its admission slot to the
                // budget, then let the fair-queue pump dispatch whatever
                // the freed slot admits.
                tenant.completed.fetch_add(1, Ordering::Relaxed);
                tenant.inflight.fetch_sub(1, Ordering::Relaxed);
                // Feed the circuit breaker; no locks held, so the
                // transition (if any) can be emitted inline.
                if let Some((from, to)) = tenant.note_outcome(failed, crate::clock::now_us().max(1))
                {
                    emit_breaker_transition(inner, &tenant, from, to);
                }
                inner.qos.lock().inflight -= 1;
                pump_tenants(inner);
            }
        }
    }
}

/// Decomposes a finished tenant stint's lifecycle into the five latency
/// phases and records each into the tenant's lock-free shards. All stamps
/// share one clock domain ([`crate::clock::origin`]), so the end-to-end
/// phase equals the sum of the four sub-phases exactly (modulo the
/// `saturating_sub` clamps against clock-read reordering). `end` is
/// stamped by the caller just before the idle transition resolves the
/// run's promises.
fn record_latency(tenant: &TenantState, s: crate::topology::StampSnapshot, end: u64) {
    if s.submit == 0 {
        // Stint never stamped: the latency pipeline was off when this
        // dispatch claimed the driver role, or an untenanted claim.
        return;
    }
    // An armed-but-unstamped latch (0: the stint ran no task, e.g. an
    // instantly-cancelled batch) falls back to the dispatch stamp so the
    // dispatch/exec split stays well-defined.
    let first = if s.first_start == 0 || s.first_start == u64::MAX {
        s.dispatched
    } else {
        s.first_start
    };
    tenant.latency[0].record(s.admitted.saturating_sub(s.submit));
    tenant.latency[1].record(s.dispatched.saturating_sub(s.admitted));
    tenant.latency[2].record(first.saturating_sub(s.dispatched));
    tenant.latency[3].record(end.saturating_sub(first));
    tenant.latency[4].record(end.saturating_sub(s.submit));
}

/// Forwards a breaker transition to the watchdog's diagnostic stream
/// (counter + subscribers), if introspection is live. Callers must hold
/// no tenant/qos locks — subscribers run arbitrary code.
fn emit_breaker_transition(
    inner: &Inner,
    tenant: &TenantState,
    from: BreakerState,
    to: BreakerState,
) {
    let state = inner.introspect.read().clone();
    if let Some(state) = state {
        state
            .watchdog()
            .note_breaker_transition(&tenant.name, from, to);
    }
}

/// The overload controller's actuator, invoked from the watchdog when a
/// tenant's SLO burn rate fires: sheds the newest half of the tenant's
/// queued runs (newest-first — the oldest queued work is closest to
/// dispatch and most worth finishing). Returns `(shed, still_queued)`.
pub(crate) fn shed_overburn(inner: &Inner, tenant: &str) -> (u64, u64) {
    let state = {
        let qos = inner.qos.lock();
        qos.tenants.iter().find(|t| t.name == tenant).cloned()
    };
    let Some(state) = state else {
        return (0, 0);
    };
    let now = crate::clock::now_us().max(1);
    let mut dropped: Vec<QueuedRun> = Vec::new();
    let remaining = {
        let mut q = state.queue.lock();
        let keep = q.len() / 2;
        while q.len() > keep {
            // Counted under the queue lock, like the dispatcher's
            // deadline sheds, so the ledger never transiently leaks.
            let run = q.pop_back().expect("len > keep >= 0");
            state.shed.fetch_add(1, Ordering::Relaxed);
            state.space.notify_one();
            dropped.push(run);
        }
        q.len() as u64
    };
    let count = dropped.len() as u64;
    for run in dropped {
        let queued_for_us = now.saturating_sub(run.enqueued_us);
        resolve_shed(&state, run, queued_for_us);
    }
    (count, remaining)
}

/// Consults the run's tenant retry budget on behalf of [`execute`]'s
/// retry path. Untenanted runs (and tenants without a budget) always
/// retry; only reached when a task failed and would otherwise retry, so
/// the qos-lock lookup is off the hot path.
fn charge_retry(inner: &Inner, topo: &Topology) -> bool {
    let id = topo.tenant_id();
    if id == 0 {
        return true;
    }
    let state = {
        let qos = inner.qos.lock();
        qos.tenants.get(id as usize - 1).cloned()
    };
    match state {
        Some(state) => state.charge_retry(),
        None => true,
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        if crate::sync::model_teardown() {
            // A model execution is being torn down (schedule aborted, or
            // this drop runs during an assertion unwind): the checker owns
            // every model thread and each shimmed wait below would wedge.
            // Skip the shutdown protocol; the engine reclaims the threads.
            return;
        }
        // Reject everything not yet admitted: queued tenant submissions
        // resolve with a typed `ShuttingDown` error, and any `submit`
        // racing this destructor is turned away instead of silently
        // dropped (the closing flag and the keep-alive registration share
        // the registry lock, so no submission can slip between the flag
        // and the emptiness wait below).
        self.close();
        // Let in-flight topologies finish: their node pointers reference
        // graphs that callers may drop right after their future resolves.
        // `finalize` signals `all_done` when the registry empties, so this
        // sleeps instead of burning a core on yield_now.
        {
            let mut running = self.inner.running.lock();
            while !running.is_empty() {
                self.inner.all_done.wait(&mut running);
            }
        }
        // Stop the introspection service (collector + HTTP acceptor)
        // before the workers: its threads hold an `Arc<Inner>` and poll a
        // stop flag with bounded sleeps, so the join is prompt.
        let introspect = self.inner.introspect.write().take();
        if let Some(state) = introspect {
            // ORDERING: Release — workers' Relaxed `live` loads may lag,
            // but anything they published before this store is visible to
            // the collector's final drain.
            self.inner.introspect_live.store(false, Ordering::Release);
            state.request_stop();
        }
        for t in self.aux_threads.lock().drain(..) {
            let _ = t.join();
        }
        // ORDERING: SeqCst puts the stop flag in the Dekker total order
        // ahead of wake_all, so a worker that re-checks queues on its way
        // to parking cannot miss shutdown and sleep forever.
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.notifier.wake_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.num_workers())
            .field("idlers", &self.num_idlers())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Worker loop (Algorithm 1)
// ---------------------------------------------------------------------------

fn worker_loop(inner: &Inner, mut ctx: WorkerCtx) {
    loop {
        // ORDERING: Acquire pairs with the SeqCst stop store in `drop`,
        // so a stopping worker sees all pre-shutdown writes.
        if inner.stop.load(Ordering::Acquire) {
            break;
        }
        // Line 2: own queue first (the cache was drained last round).
        let mut t = std::mem::take(&mut ctx.cache);
        if t == 0 {
            t = ctx.owner.pop().unwrap_or(0);
        }
        // Line 3: steal. The spinning counter gates redundant wake-ups
        // from concurrent pushes (see Inner::num_spinning).
        if t == 0 {
            // ORDERING: SeqCst bracket around the steal attempt — the
            // spinner count shares the Dekker total order with
            // `schedule`'s fence, so a submitter either sees a spinner
            // (and skips the wake) or the spinner's scan sees its push.
            inner.num_spinning.fetch_add(1, Ordering::SeqCst);
            t = try_steal(inner, &mut ctx);
            inner.num_spinning.fetch_sub(1, Ordering::SeqCst); // ORDERING: closes the bracket above.
        }
        // Lines 5–13: park when everything is empty.
        if t == 0 {
            // SAFETY: deliberately WRONG — this plain read races with the
            // plain write in `execute`; it is the bug this mutation seeds
            // for the sanitizer to catch.
            #[cfg(rustflow_weaken = "seed_plain_race")]
            let _ = unsafe { *inner.race_scratch.get() };
            inner.shareds[ctx.id].parks.fetch_add(1, Ordering::Relaxed);
            notify_observers(inner, |ob| ob.on_park(ctx.id));
            inner.notifier.wait(
                ctx.id,
                || inner.shareds.iter().all(|s| s.stealer.is_empty()) && inner.injector.is_empty(),
                &inner.stop,
            );
            continue;
        }
        // Lines 16–25: run the task, then speculatively drain the cache —
        // a linear chain executes here without touching any queue. Every
        // non-empty take after the first task is a cache hit.
        // The counter bumps *before* `execute`: execution of the last task
        // finalizes its topology and releases `wait_for_all`, so counting
        // afterwards would let a freshly released reader miss the final
        // increments.
        inner.shareds[ctx.id]
            .executed
            .fetch_add(1, Ordering::Relaxed);
        execute(inner, &mut ctx, t as RawNode);
        loop {
            t = std::mem::take(&mut ctx.cache);
            if t == 0 {
                break;
            }
            inner.shareds[ctx.id]
                .cache_hits
                .fetch_add(1, Ordering::Relaxed);
            // SAFETY: the node is armed and its topology alive (same
            // contract as `execute` below, which runs it next).
            let label = unsafe { (*(t as RawNode)).label() };
            notify_observers(inner, |ob| ob.on_cache_hit(ctx.id, label));
            inner.shareds[ctx.id]
                .executed
                .fetch_add(1, Ordering::Relaxed);
            execute(inner, &mut ctx, t as RawNode);
        }
        // Lines 26–28: probabilistic wake-up for load balancing.
        if inner.cfg.wake_ratio != 0 && ctx.next_rand().is_multiple_of(inner.cfg.wake_ratio) {
            if let Some(woken) = inner.notifier.wake_one() {
                inner.shareds[ctx.id]
                    .wakes_sent
                    .fetch_add(1, Ordering::Relaxed);
                notify_observers(inner, |ob| ob.on_wake(ctx.id, woken, false));
            }
        }
    }
}

/// One round of stealing: last victim first, then the other workers, then
/// the external injector. `Retry` results re-attempt the same victim.
fn try_steal(inner: &Inner, ctx: &mut WorkerCtx) -> usize {
    let n = inner.shareds.len();
    let me = ctx.id;
    let mut attempts = 2 * n + 2;
    while attempts > 0 {
        attempts -= 1;
        let v = ctx.last_victim;
        if v != me {
            inner.shareds[me]
                .steal_attempts
                .fetch_add(1, Ordering::Relaxed);
            match inner.shareds[v].stealer.steal() {
                wsq::Steal::Success(x) => {
                    inner.shareds[me].steals.fetch_add(1, Ordering::Relaxed);
                    notify_observers(inner, |ob| ob.on_steal(me, v));
                    return x;
                }
                wsq::Steal::Retry => continue, // same victim again
                wsq::Steal::Empty => {}
            }
        }
        ctx.last_victim = (v + 1) % n;
    }
    let popped = inner.injector.pop();
    match popped {
        Some(x) => {
            inner.shareds[me]
                .injector_pops
                .fetch_add(1, Ordering::Relaxed);
            notify_observers(inner, |ob| ob.on_injector_pop(me));
            x
        }
        None => {
            inner.shareds[me]
                .steal_fails
                .fetch_add(1, Ordering::Relaxed);
            notify_observers(inner, |ob| ob.on_steal_fail(me));
            0
        }
    }
}

/// Schedules a node that just became ready, from worker context.
///
/// # Safety
/// `node` must be armed (join counter reached zero exactly once) and its
/// topology alive.
unsafe fn schedule(inner: &Inner, ctx: &mut WorkerCtx, node: RawNode) {
    let item = node as usize;
    if inner.cfg.cache_slot && ctx.cache == 0 {
        // First ready successor: speculative execution, no queue traffic.
        ctx.cache = item;
        return;
    }
    ctx.owner.push(item);
    // ORDERING: Dekker fence + SeqCst load — the push must precede the
    // spinner/idler checks in the single total order (notifier docs);
    // otherwise the new task could go unnoticed by every worker.
    fence(Ordering::SeqCst);
    if inner.num_spinning.load(Ordering::SeqCst) == 0 {
        if let Some(woken) = inner.notifier.wake_one() {
            inner.shareds[ctx.id]
                .wakes_sent
                .fetch_add(1, Ordering::Relaxed);
            notify_observers(inner, |ob| ob.on_wake(ctx.id, woken, true));
        }
    }
}

/// Executes a node: runs its work (retrying per the node's
/// [`RetryPolicy`](crate::graph::RetryPolicy)), spawns its subflow if any,
/// and performs completion bookkeeping. A node whose topology was
/// cancelled before this point is **skipped**: its work never runs, only
/// the bookkeeping — which is what lets a cancelled graph drain promptly
/// instead of executing its whole tail.
fn execute(inner: &Inner, ctx: &mut WorkerCtx, node: RawNode) {
    // SAFETY: the scheduling protocol hands each armed node to exactly one
    // worker; the node's topology (and thus the node) is kept alive by
    // `inner.running` until every node completed.
    unsafe {
        let topo = &*(*(*node).state.topology.get());
        // First-task stamp for the per-tenant latency pipeline: a single
        // relaxed load per task in steady state (the latch is armed only
        // between a tenant dispatch and its first task), one CAS for the
        // task that wins the race.
        topo.stamps.note_first_start();
        if topo.is_cancelled() {
            // The cancel flag was published after `RunError::Cancelled`
            // was recorded (see `Topology::cancel`), so skipping here can
            // never let the batch resolve `Ok`. Skipped tasks emit no
            // begin/end span — they did not run.
            inner.shareds[ctx.id]
                .skipped
                .fetch_add(1, Ordering::Relaxed);
            let label = (*node).label();
            notify_observers(inner, |ob| ob.on_task_skipped(ctx.id, label));
            complete(inner, ctx, node);
            return;
        }
        // Publish the running task for live introspection (`/status`,
        // stall watchdog). Off by default: one relaxed load per task;
        // when live, two uncontended mutex writes bracketing the work.
        let live = inner.introspect_live.load(Ordering::Relaxed);
        if live {
            *inner.shareds[ctx.id].current.lock() = Some(CurrentTask {
                label: (*node).label().clone(),
                node: node as u64,
                topology: topo.uid(),
                since_us: crate::clock::now_us(),
            });
        }
        // ORDERING: Acquire pairs with `observe`'s Release, so span hooks
        // run against a fully-installed observer list.
        let observed = inner.has_observers.load(Ordering::Acquire);
        // Span identity is built only when somebody is listening; the
        // zero-observer hot path pays the single Acquire load and nothing
        // else. Node and parent addresses are stable for the iteration,
        // and the run id cannot change while this node is alive.
        let span = observed.then(|| crate::observer::TaskSpanInfo {
            node: node as u64,
            parent: (*(*node).state.parent.get()) as u64,
            run: topo.run_id(),
        });
        if let Some(span) = span {
            let label = (*node).label();
            for ob in inner.observers.read().iter() {
                ob.on_task_begin(ctx.id, label, span);
            }
        }
        let retry = (*node).retry_policy();
        let mut attempt: u32 = 0;
        let mut deferred = false;
        loop {
            let mut failed: Option<Box<dyn std::any::Any + Send>> = None;
            let mut will_retry = false;
            {
                // Publish the executing topology so the closure can poll
                // `this_task::is_cancelled()` / read its iteration.
                let _task_scope = crate::this_task::ContextGuard::enter(topo as *const Topology);
                match (*node).structure.work.get_mut() {
                    Work::Empty => {}
                    Work::Static(f) => {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                            if crate::sync::is_model_abort(payload.as_ref()) {
                                // Engine-internal unwind tearing the model
                                // execution down: the topology may already
                                // be freed, so no bookkeeping — rethrow.
                                std::panic::resume_unwind(payload);
                            }
                            // Budget last: the `&&` chain charges a
                            // retry token only when the retry would
                            // otherwise happen.
                            will_retry = attempt < retry.limit
                                && !topo.is_cancelled()
                                && charge_retry(inner, topo);
                            failed = Some(payload);
                        }
                    }
                    Work::Dynamic(f) => {
                        let mut sf = Subflow::new(node);
                        match catch_unwind(AssertUnwindSafe(|| f(&mut sf))) {
                            Ok(()) => deferred = spawn_subflow(inner, ctx, node, sf.is_detached()),
                            Err(payload) => {
                                if crate::sync::is_model_abort(payload.as_ref()) {
                                    // See the static arm above.
                                    std::panic::resume_unwind(payload);
                                }
                                will_retry = attempt < retry.limit
                                    && !topo.is_cancelled()
                                    && charge_retry(inner, topo);
                                if !will_retry {
                                    // Final failure: publish whatever the
                                    // closure managed to spawn, preserving
                                    // the historical partially-built-subflow
                                    // semantics (children built before the
                                    // panic still run under ContinueAll).
                                    deferred = spawn_subflow(inner, ctx, node, sf.is_detached());
                                }
                                failed = Some(payload);
                            }
                        }
                    }
                }
            }
            let Some(payload) = failed else { break };
            if will_retry {
                attempt += 1;
                inner.shareds[ctx.id]
                    .retries
                    .fetch_add(1, Ordering::Relaxed);
                let label = (*node).label();
                notify_observers(inner, |ob| ob.on_task_retry(ctx.id, label, attempt));
                // Reset just this node's run state (half-built subflow,
                // joined-child countdown); nothing propagated to
                // successors or `alive` yet, so the retry is invisible to
                // the rest of the graph.
                (*node).rearm_retry();
                let pause = retry.backoff(attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                continue;
            }
            topo.record_panic(
                TaskPanic::new((*node).label().to_string(), panic_message(&*payload))
                    .with_iteration(topo.iterations()),
            );
            if topo.policy() == FailurePolicy::FailFast {
                // The panic is recorded (and wins over `Cancelled`), so
                // publishing the flag now satisfies the same
                // record-before-publish order `Topology::cancel` keeps.
                topo.cancel_internal();
            }
            break;
        }
        // SAFETY: deliberately WRONG — this plain increment races with the
        // plain read in `worker_loop`; it is the bug this mutation seeds
        // for the sanitizer to catch.
        #[cfg(rustflow_weaken = "seed_plain_race")]
        {
            *inner.race_scratch.get_mut() += 1;
        }
        if live {
            *inner.shareds[ctx.id].current.lock() = None;
        }
        if let Some(span) = span {
            let label = (*node).label();
            for ob in inner.observers.read().iter() {
                ob.on_task_end(ctx.id, label, span);
            }
        }
        if deferred {
            // Drop the spawn sentinel; the last finishing child (or we,
            // right now, if they all already finished) completes the node.
            // ORDERING: AcqRel — Release publishes this side's writes to
            // whoever hits zero; Acquire on the zero-crossing gathers
            // every child's effects before `complete` runs.
            if (*node).state.nested.fetch_sub(1, Ordering::AcqRel) == 1 {
                complete(inner, ctx, node);
            }
        } else {
            complete(inner, ctx, node);
        }
    }
}

/// Publishes a dynamic task's spawned children (§III-D).
///
/// Returns `true` when the parent's completion is deferred until the
/// (joined) children finish.
///
/// # Safety
/// Caller is the worker that just executed `node`.
unsafe fn spawn_subflow(inner: &Inner, ctx: &mut WorkerCtx, node: RawNode, detached: bool) -> bool {
    // SAFETY: the caller is the sole worker executing `node`, so its
    // subgraph is exclusively ours (cleared at re-arm, so it holds only
    // what this iteration's closure spawned).
    let sub = unsafe { (*node).state.subgraph.get_mut() };
    if sub.is_empty() {
        return false;
    }
    // Runtime-built graphs get the same sanitation as dispatched ones: a
    // cyclic subflow would keep the topology's `alive` counter from ever
    // reaching zero, wedging `wait_for_all`. Record the typed error and
    // spawn nothing (the parent completes as an empty subflow).
    //
    // SAFETY: no child has been spawned, so the subgraph is quiescent.
    let diagnostics = unsafe { crate::validate::validate_graph(sub) };
    if diagnostics.iter().any(|d| d.is_fatal()) {
        // SAFETY: the topology pointer was armed at dispatch and its
        // storage is kept alive by the executor's `running` registry.
        let topo_ptr = unsafe { *(*node).state.topology.get() };
        // SAFETY: `topo_ptr` is live (see above); `record_error` is
        // internally synchronized.
        unsafe { (*topo_ptr).record_error(RunError::InvalidGraph(diagnostics)) };
        return false;
    }
    // SAFETY: armed at dispatch, kept alive by `running` (see above).
    let topo_ptr = unsafe { *(*node).state.topology.get() };
    // The topology must know about the children before any of them can
    // finish, otherwise `alive` could hit zero early.
    //
    // SAFETY: `topo_ptr` is live; `alive` is an atomic.
    unsafe { (*topo_ptr).alive.fetch_add(sub.len(), Ordering::Relaxed) };
    if !detached {
        // +1 sentinel held by the parent until spawning finishes; prevents
        // the children from completing the parent while we still arm their
        // siblings.
        //
        // SAFETY: `node` is ours (executing worker); `nested` is atomic.
        unsafe { (*node).state.nested.store(sub.len() + 1, Ordering::Relaxed) };
    }
    let parent: RawNode = if detached { std::ptr::null_mut() } else { node };
    for child in sub.nodes.iter_mut() {
        // SAFETY: `child` is a boxed node owned by the subgraph; it has
        // not been scheduled yet, so we have exclusive access.
        unsafe { child.rearm(topo_ptr, parent) };
    }
    for i in 0..sub.nodes.len() {
        let c: RawNode = &mut *sub.nodes[i];
        // SAFETY: in-degree is frozen once the subflow closure returned.
        if unsafe { *(*c).structure.in_degree.get() } == 0 {
            // SAFETY: `c` is armed (join counter = in-degree = 0) and its
            // topology alive.
            unsafe { schedule(inner, ctx, c) };
        }
    }
    !detached
}

/// Completion bookkeeping: release successors, count down the topology,
/// and propagate joined-subflow completion to the parent.
///
/// # Safety
/// Called exactly once per node, by the worker that finished it (or, for a
/// parent with a joined subflow, by the worker that finished its last
/// child).
unsafe fn complete(inner: &Inner, ctx: &mut WorkerCtx, node: RawNode) {
    // SAFETY: per this function's contract the node is finished and owned
    // by us; its topology/parent pointers were armed before it could run,
    // and their storage outlives the topology, which `inner.running`
    // keeps alive until the last node (at least until this call returns).
    let topo_ptr = unsafe { *(*node).state.topology.get() };
    // SAFETY: same contract; `parent` was armed at spawn time.
    let parent = unsafe { *(*node).state.parent.get() };
    {
        // SAFETY: successors are frozen after the build/spawn phase.
        let succs = unsafe { (*node).structure.successors.get() };
        for &s in succs.iter() {
            // ORDERING: AcqRel — each predecessor Releases its task's
            // effects; the zero-crossing Acquires them all, so `s` runs
            // after every dependency in the happens-before order.
            // SAFETY: `s` targets a live boxed node of the same topology;
            // `join_counter` is atomic.
            if unsafe { (*s).state.join_counter.fetch_sub(1, Ordering::AcqRel) } == 1 {
                // SAFETY: the zero-crossing arms `s`; it happened exactly
                // once, so we are its unique scheduler.
                unsafe { schedule(inner, ctx, s) };
            }
        }
    }
    // ORDERING: AcqRel — the finalizing zero-crossing must Acquire every
    // node's completion writes before tearing the iteration down.
    // SAFETY: `topo_ptr` is live until the last `alive` decrement — which
    // is at earliest this one.
    if unsafe { (*topo_ptr).alive.fetch_sub(1, Ordering::AcqRel) } == 1 {
        // Only a node with no parent can be the last alive: a parent's own
        // completion is always pending while any child lives.
        debug_assert!(parent.is_null());
        finalize(inner, topo_ptr);
        return;
    }
    // ORDERING: AcqRel — the last joined child's effects are Acquired
    // before the parent completes (mirror of the sentinel drop above).
    // SAFETY: a non-null parent is a live node awaiting its joined
    // children; `nested` is atomic.
    if !parent.is_null() && unsafe { (*parent).state.nested.fetch_sub(1, Ordering::AcqRel) } == 1 {
        // SAFETY: the last joined child completes the parent exactly once.
        unsafe { complete(inner, ctx, parent) };
    }
}

/// Ends the iteration whose last node just completed, then hands the
/// driver role back to the batch state machine — which either re-arms and
/// re-dispatches the same topology for its next iteration or retires the
/// keep-alive once every queued batch has resolved.
fn finalize(inner: &Inner, topo_ptr: *const Topology) {
    // SAFETY: the keep-alive registry holds the topology until `advance`
    // transitions it to idle (inside `advance_topology` below), so the
    // pointer is live for this whole call.
    let topo = unsafe { &*topo_ptr };
    notify_observers(inner, |ob| ob.on_topology_stop(topo.iteration_info()));
    advance_topology(inner, topo, true);
}

// ---------------------------------------------------------------------------
// Keep-alive registry
// ---------------------------------------------------------------------------

/// One topology's keep-alives: the `Arc` pinning its storage plus one
/// registration per driver claim currently outstanding (a resubmission
/// racing finalize can briefly hold two).
struct RunningEntry {
    topo: Arc<Topology>,
    /// Oldest first; each slot remembers which tenant (if any) gets the
    /// completion credit and the admission slot back when that stint
    /// finalizes.
    regs: VecDeque<Option<Arc<TenantState>>>,
}

/// Topologies currently executing, keyed by stable topology uid — O(1)
/// register and finalize, replacing the seed's linear-scan `Vec`. The
/// `closing` flag lives inside so shutdown and registration serialize on
/// one lock: a submission either registers before `Executor::drop` starts
/// waiting for emptiness or observes the flag and is rejected.
#[derive(Default)]
pub(crate) struct RunningRegistry {
    /// Authoritative shutdown flag (mirrored by `Inner::closing` for
    /// lock-free fast paths).
    pub(crate) closing: bool,
    entries: HashMap<u64, RunningEntry>,
}

impl RunningRegistry {
    /// Adds a keep-alive registration for `topo`, crediting `tenant` (if
    /// any) when the corresponding stint finalizes.
    fn register(&mut self, topo: &Arc<Topology>, tenant: Option<Arc<TenantState>>) {
        self.entries
            .entry(topo.uid())
            .or_insert_with(|| RunningEntry {
                topo: Arc::clone(topo),
                regs: VecDeque::with_capacity(1),
            })
            .regs
            .push_back(tenant);
    }

    /// Removes the oldest registration for `uid` (the stint now
    /// finalizing), returning the keep-alive `Arc` once the last
    /// registration goes and the tenant owed the completion credit.
    fn remove_one(&mut self, uid: u64) -> (Option<Arc<Topology>>, Option<Arc<TenantState>>) {
        let Some(entry) = self.entries.get_mut(&uid) else {
            return (None, None);
        };
        let tenant = entry.regs.pop_front().flatten();
        if entry.regs.is_empty() {
            let entry = self.entries.remove(&uid).expect("entry present");
            (Some(entry.topo), tenant)
        } else {
            (None, tenant)
        }
    }

    /// Number of distinct topologies currently registered.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no topology is registered (executor quiescent).
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of the registered topologies (for introspection).
    pub(crate) fn topologies(&self) -> Vec<Arc<Topology>> {
        self.entries.values().map(|e| Arc::clone(&e.topo)).collect()
    }
}

// ---------------------------------------------------------------------------
// Tenants: per-client admission control + weighted fair queueing
// ---------------------------------------------------------------------------

/// Virtual-time fixed-point scale: a weight-1 tenant advances its clock by
/// `VT_SCALE` per dispatched topology, a weight-w tenant by `VT_SCALE/w`,
/// so over any busy interval tenants dispatch in proportion to weight.
const VT_SCALE: u64 = 1 << 20;

/// Quality-of-service parameters for a tenant, fixed at tenant creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQos {
    /// Weighted-fair-queueing share: a weight-4 tenant dispatches 4
    /// topologies for each one of a weight-1 tenant while both have work
    /// queued. Clamped to at least 1.
    pub weight: u32,
    /// Admission bound: submissions beyond this many queued (not yet
    /// dispatched) topologies block (`submit`) or are rejected with
    /// [`AdmissionError::Saturated`] (`try_submit`). Clamped to at
    /// least 1.
    pub max_queued: usize,
    /// Optional latency objective. When set, the stall watchdog runs a
    /// multi-window burn-rate check over this tenant's end-to-end latency
    /// histogram and emits
    /// [`WatchdogDiagnostic::SloBurn`](crate::WatchdogDiagnostic) when
    /// the error budget burns too fast (see [`SloSpec`]).
    pub slo: Option<SloSpec>,
    /// Default deadline applied to every run submitted on this tenant
    /// (overridable per run via
    /// [`Taskflow::run_on_deadline`](crate::Taskflow::run_on_deadline)).
    /// A deadlined run is cheap-rejected at submit time when the
    /// expected queue wait already exceeds it
    /// ([`AdmissionError::DeadlineInfeasible`]) and shed from the queue
    /// ([`RunError::Shed`](crate::RunError)) if it expires before the
    /// fair-queue pump dispatches it. The deadline does **not** cancel a
    /// run once dispatched — pair it with
    /// [`RunHandle::wait_timeout`](crate::RunHandle::wait_timeout) for
    /// execution-side expiry.
    pub deadline: Option<Duration>,
    /// Retry budget consulted by [`Task::retry`](crate::Task::retry):
    /// when set, retries beyond `floor + per_mille/1000 ×
    /// completions` degrade to ordinary failures instead of amplifying
    /// load exactly when capacity is scarcest. `None` (the default)
    /// leaves retries unbudgeted.
    pub retry_budget: Option<RetryBudget>,
    /// Per-tenant circuit breaker: after `failures` consecutive failed
    /// runs the tenant's submissions are fast-rejected with
    /// [`AdmissionError::BreakerOpen`] for `open_for`, then a single
    /// half-open probe is admitted whose success closes the breaker.
    /// `None` (the default) disables the breaker.
    pub breaker: Option<BreakerSpec>,
}

impl Default for TenantQos {
    fn default() -> Self {
        TenantQos {
            weight: 1,
            max_queued: 1024,
            slo: None,
            deadline: None,
            retry_budget: None,
            breaker: None,
        }
    }
}

/// Retry-budget parameters ([`TenantQos::retry_budget`]): the tenant may
/// spend `floor` retries unconditionally plus `per_mille` additional
/// retries per 1000 successful completions. The budget is cumulative —
/// healthy periods bank allowance that overload then draws down, so a
/// retry storm under sustained failure degrades to plain failures once
/// the bank is empty ([`rustflow_retry_budget_exhausted_total`]).
///
/// [`rustflow_retry_budget_exhausted_total`]: crate::TenantStats::retry_budget_exhausted
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Retries always available, regardless of completion history.
    pub floor: u64,
    /// Extra retries granted per 1000 successful completions (100 =
    /// the canonical "10% of completions").
    pub per_mille: u32,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            floor: 8,
            per_mille: 100,
        }
    }
}

/// Circuit-breaker parameters ([`TenantQos::breaker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSpec {
    /// Consecutive failed runs (task panics / invalid graphs — not
    /// cancellations) that open the breaker. Clamped to at least 1.
    pub failures: u32,
    /// How long an open breaker fast-rejects submissions before
    /// admitting one half-open probe.
    pub open_for: Duration,
}

impl Default for BreakerSpec {
    fn default() -> Self {
        BreakerSpec {
            failures: 5,
            open_for: Duration::from_secs(1),
        }
    }
}

/// State of a tenant's circuit breaker (closed → open → half-open →
/// closed). Exposed as the `rustflow_breaker_state` gauge (0, 1, 2 in
/// declaration order) and in [`WatchdogDiagnostic::BreakerTransition`](crate::WatchdogDiagnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal admission; consecutive failures are being counted.
    Closed,
    /// Fast-rejecting all submissions until the open window elapses.
    Open,
    /// One probe run has been admitted; its outcome decides the next
    /// state (success → closed, failure → open again).
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding used by `rustflow_breaker_state` and the tenant
    /// state word: 0 = closed, 1 = open, 2 = half-open.
    pub(crate) fn from_word(w: u64) -> BreakerState {
        match w {
            BREAKER_OPEN => BreakerState::Open,
            BREAKER_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// The state's name as rendered in `/status` and diagnostics.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// [`TenantState::breaker_word`] encodings (the atomic state word of the
/// breaker state machine).
const BREAKER_CLOSED: u64 = 0;
const BREAKER_OPEN: u64 = 1;
const BREAKER_HALF_OPEN: u64 = 2;

/// A per-tenant latency service-level objective: "99% of runs finish
/// end-to-end (submit → finalize) within `p99_us`, judged over `window`".
///
/// The error budget is the 1% of runs allowed past the target. The
/// watchdog alerts SRE-style on *burn rate* — budget consumed per unit
/// budget allotted — over two windows at once (`window` and `window/12`),
/// so a sustained breach fires quickly while a long-gone spike does not
/// page ([`WatchdogDiagnostic::SloBurn`](crate::WatchdogDiagnostic)).
///
/// ```
/// use std::time::Duration;
/// let qos = rustflow::TenantQos {
///     slo: Some(rustflow::SloSpec {
///         p99_us: 50_000,
///         window: Duration::from_secs(60),
///     }),
///     ..rustflow::TenantQos::default()
/// };
/// assert_eq!(qos.slo.unwrap().p99_us, 50_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Target 99th-percentile end-to-end latency, in microseconds.
    pub p99_us: u64,
    /// The long burn-rate window; the fast window is `window/12`
    /// (clamped to one watchdog pass). Clamped to at least one second.
    pub window: Duration,
}

/// A run waiting in a tenant queue for a dispatch slot.
pub(crate) struct QueuedRun {
    topo: Arc<Topology>,
    cond: RunCondition,
    promise: Promise<RunResult>,
    /// [`crate::clock::now_us`] at admission into the tenant queue
    /// (`.max(1)`); `0` when the latency pipeline is off.
    submit_us: u64,
    /// Stamped by [`next_dispatch`] when the fair-queue pump pops the
    /// run; `0` until then (and when the pipeline is off).
    admitted_us: u64,
    /// [`crate::clock::now_us`] at enqueue, always stamped (unlike
    /// `submit_us` it does not depend on the latency pipeline): the
    /// shed path reports time spent queued from it.
    enqueued_us: u64,
    /// Absolute expiry ([`crate::clock::now_us`] domain) past which the
    /// dispatcher sheds this run instead of dispatching it; `0` = none.
    deadline_us: u64,
    /// This run is the circuit breaker's half-open probe; shedding or
    /// shutdown-draining it must release the probe claim so the breaker
    /// can admit another.
    probe: bool,
}

/// Shared per-tenant state: the bounded submission queue plus the fair
/// queueing clock and the counters exported as [`TenantStats`].
pub(crate) struct TenantState {
    /// Stable 1-based id; `0` in trace output means "untenanted".
    pub(crate) id: u64,
    pub(crate) name: String,
    weight: u32,
    max_queue: usize,
    queue: Mutex<VecDeque<QueuedRun>>,
    /// Signalled when queue space frees up (dispatch) or admission closes
    /// (shutdown); blocking submitters wait on it.
    space: Condvar,
    /// Weighted-fair-queueing virtual finish time. Only mutated under the
    /// executor's `qos` lock; atomic so snapshots read it lock-free.
    vtime: AtomicU64,
    submitted: AtomicU64,
    dispatched: AtomicU64,
    coalesced: AtomicU64,
    completed: AtomicU64,
    rejected_saturated: AtomicU64,
    rejected_shutdown: AtomicU64,
    /// Runs rejected at submit time because the expected queue wait
    /// already exceeded their deadline ([`AdmissionError::DeadlineInfeasible`]).
    rejected_infeasible: AtomicU64,
    /// Runs fast-rejected by an open circuit breaker
    /// ([`AdmissionError::BreakerOpen`]).
    rejected_breaker: AtomicU64,
    /// Queued runs dropped by the dispatcher — deadline expired in the
    /// queue, or the overload controller shed them
    /// ([`RunError::Shed`](crate::RunError)).
    shed: AtomicU64,
    /// Retries that the retry budget refused (the task failed instead).
    retry_budget_exhausted: AtomicU64,
    /// Retries charged against the budget so far (monotone; allowance is
    /// recomputed from `completed`, so no refill bookkeeping is needed).
    retry_spent: AtomicU64,
    /// Consecutive failed runs; reset by any non-failed completion.
    consecutive_failures: AtomicU64,
    /// Circuit-breaker state word: [`BREAKER_CLOSED`]/[`BREAKER_OPEN`]/
    /// [`BREAKER_HALF_OPEN`]. All transitions are CASes, so every
    /// transition has exactly one witness (which emits the diagnostic).
    breaker_word: AtomicU64,
    /// When the current open window ends ([`crate::clock::now_us`]
    /// domain). Written before the word transitions to open.
    breaker_open_until_us: AtomicU64,
    /// A half-open probe has been admitted and not yet resolved.
    probe_inflight: AtomicBool,
    inflight: AtomicU64,
    /// Lock-free latency shards, one per [`LATENCY_PHASES`] entry.
    /// Recorded by the finalizing driver (a few relaxed `fetch_add`s per
    /// run), merged only at scrape time. ~4.2 KiB per tenant
    /// (5 phases × 105 buckets × 8 B).
    latency: [AtomicHistogram; LATENCY_PHASES.len()],
    /// The tenant's latency objective, if any ([`TenantQos::slo`]).
    slo: Option<SloSpec>,
    /// Default per-run deadline, if any ([`TenantQos::deadline`]).
    deadline: Option<Duration>,
    /// Retry budget, if any ([`TenantQos::retry_budget`]).
    retry_budget: Option<RetryBudget>,
    /// Circuit-breaker parameters, if any ([`TenantQos::breaker`]).
    breaker: Option<BreakerSpec>,
}

/// Phase labels of the per-tenant latency decomposition, in the order of
/// [`TenantState::latency`]: admission wait (submit → admitted), queue
/// wait (admitted → dispatched), dispatch-to-first-task, execution
/// (first task → finalize), and end-to-end (submit → finalize).
pub(crate) const LATENCY_PHASES: [&str; 5] = ["admission", "queue", "dispatch", "exec", "e2e"];

/// Index of the end-to-end phase in [`LATENCY_PHASES`].
pub(crate) const PHASE_E2E: usize = 4;

impl TenantState {
    fn new(id: u64, name: String, qos: TenantQos) -> TenantState {
        TenantState {
            id,
            name,
            weight: qos.weight.max(1),
            max_queue: qos.max_queued.max(1),
            queue: Mutex::new(VecDeque::new()),
            space: Condvar::new(),
            vtime: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_saturated: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            rejected_infeasible: AtomicU64::new(0),
            rejected_breaker: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            retry_budget_exhausted: AtomicU64::new(0),
            retry_spent: AtomicU64::new(0),
            consecutive_failures: AtomicU64::new(0),
            breaker_word: AtomicU64::new(BREAKER_CLOSED),
            breaker_open_until_us: AtomicU64::new(0),
            probe_inflight: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicHistogram::new()),
            slo: qos.slo,
            deadline: qos.deadline,
            retry_budget: qos.retry_budget,
            breaker: qos.breaker,
        }
    }

    /// Point-in-time snapshot of this tenant's counters and gauges.
    ///
    /// Holds the queue lock across every read: all ledger mutations
    /// (submit, reject, shed, dispatch) happen under the same lock, so a
    /// scraper never observes a transiently unbalanced ledger — `queued`
    /// and `dispatched` move together with the counters. The only
    /// exceptions are the shutdown races documented in
    /// [`dispatch_tenant_run`], and `completed`/`in_flight`, which by
    /// design trail `dispatched` while work is genuinely in flight.
    fn snapshot(&self) -> TenantStats {
        let q = self.queue.lock();
        TenantStats {
            name: self.name.clone(),
            weight: self.weight,
            queued: q.len() as u64,
            in_flight: self.inflight.load(Ordering::Relaxed),
            submitted: self.submitted.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_saturated: self.rejected_saturated.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            rejected_infeasible: self.rejected_infeasible.load(Ordering::Relaxed),
            rejected_breaker: self.rejected_breaker.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retry_budget_exhausted: self.retry_budget_exhausted.load(Ordering::Relaxed),
            consecutive_failures: self.consecutive_failures.load(Ordering::Relaxed),
            breaker_state: self.breaker_word.load(Ordering::Relaxed),
        }
    }

    /// Expected tenant-queue wait in microseconds, interpolated from the
    /// live admission-phase histogram (p50 of submit → admitted). `None`
    /// until at least [`ESTIMATE_MIN_SAMPLES`] runs have been recorded:
    /// the cold start admits optimistically rather than guessing.
    fn estimated_queue_wait_us(&self) -> Option<u64> {
        let h = self.latency[0].snapshot();
        if h.count() < ESTIMATE_MIN_SAMPLES {
            return None;
        }
        Some(h.percentile(0.50) as u64)
    }

    /// Circuit-breaker admission check. `Ok(probe)` admits (with `probe`
    /// set when this run is the half-open probe); `Err(retry_after)`
    /// fast-rejects. Lock-free; callers may hold the queue lock. A state
    /// transition taken here (open → half-open) is returned through
    /// `transition` for the caller to emit *after* dropping its locks.
    fn breaker_admit(
        &self,
        now_us: u64,
        transition: &mut Option<(BreakerState, BreakerState)>,
    ) -> Result<bool, Duration> {
        let Some(spec) = self.breaker else {
            return Ok(false);
        };
        loop {
            // ORDERING: Acquire pairs with the Release CAS in
            // `note_outcome` so an observed `open` word comes with the
            // `breaker_open_until_us` write that preceded it.
            match self.breaker_word.load(Ordering::Acquire) {
                BREAKER_OPEN => {
                    let until = self.breaker_open_until_us.load(Ordering::Relaxed);
                    if now_us < until {
                        return Err(Duration::from_micros(until - now_us));
                    }
                    // Open window elapsed: race to admit the probe. The
                    // winner's run decides the breaker's fate; losers
                    // re-read the new state.
                    // ORDERING: AcqRel — the winner owns the probe slot
                    // (store below) before any other submitter can see
                    // `half-open`.
                    if self
                        .breaker_word
                        .compare_exchange(
                            BREAKER_OPEN,
                            BREAKER_HALF_OPEN,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        self.probe_inflight.store(true, Ordering::Relaxed);
                        *transition = Some((BreakerState::Open, BreakerState::HalfOpen));
                        return Ok(true);
                    }
                }
                BREAKER_HALF_OPEN => {
                    // Exactly one probe at a time; everyone else waits
                    // out roughly another open window.
                    if !self.probe_inflight.swap(true, Ordering::Relaxed) {
                        return Ok(true);
                    }
                    return Err(spec.open_for);
                }
                _ => return Ok(false),
            }
        }
    }

    /// Releases the half-open probe claim when a probe run is resolved
    /// without executing (shed, shutdown-drained, or rejected later in
    /// admission). Benign race: if the breaker has since closed and
    /// reopened, this may let one extra probe through — one stray run,
    /// never a stuck-open breaker.
    fn release_probe(&self, probe: bool) {
        if probe {
            self.probe_inflight.store(false, Ordering::Relaxed);
        }
    }

    /// Folds a finished run's outcome into the breaker state machine.
    /// Returns the transition this outcome caused, if any, for the
    /// caller to emit (no locks are held here).
    fn note_outcome(&self, failed: bool, now_us: u64) -> Option<(BreakerState, BreakerState)> {
        let spec = self.breaker?;
        if failed {
            let fails = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
            // Arm the open window *before* any CAS can expose the open
            // state; a stale overwrite by a concurrent failure only
            // nudges the window, never unleashes admission early.
            self.breaker_open_until_us.store(
                now_us.saturating_add(spec.open_for.as_micros() as u64),
                Ordering::Relaxed,
            );
            // A failure while half-open (the probe, or a straggler
            // admitted before the breaker opened) re-opens immediately.
            // ORDERING: Release on success publishes the window store
            // above to `breaker_admit`'s Acquire load.
            if self
                .breaker_word
                .compare_exchange(
                    BREAKER_HALF_OPEN,
                    BREAKER_OPEN,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.probe_inflight.store(false, Ordering::Relaxed);
                return Some((BreakerState::HalfOpen, BreakerState::Open));
            }
            if fails >= u64::from(spec.failures.max(1)) {
                // ORDERING: Release — as above.
                if self
                    .breaker_word
                    .compare_exchange(
                        BREAKER_CLOSED,
                        BREAKER_OPEN,
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return Some((BreakerState::Closed, BreakerState::Open));
                }
            }
            None
        } else {
            self.consecutive_failures.store(0, Ordering::Relaxed);
            // Probe success (or a healthy straggler): close fully.
            // ORDERING: Release orders the failure-streak reset above
            // before the closed word becomes visible.
            if self
                .breaker_word
                .compare_exchange(
                    BREAKER_HALF_OPEN,
                    BREAKER_CLOSED,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.probe_inflight.store(false, Ordering::Relaxed);
                return Some((BreakerState::HalfOpen, BreakerState::Closed));
            }
            None
        }
    }

    /// Charges one retry against the tenant's budget: allowance is
    /// `floor + per_mille/1000 × completed`, spending is monotone.
    /// Returns whether the retry may proceed.
    fn charge_retry(&self) -> bool {
        let Some(budget) = self.retry_budget else {
            return true;
        };
        let allowance = budget.floor.saturating_add(
            self.completed.load(Ordering::Relaxed) * u64::from(budget.per_mille) / 1000,
        );
        let spent = self.retry_spent.fetch_add(1, Ordering::Relaxed);
        if spent < allowance {
            true
        } else {
            // Over-claimed: hand the token back. Racing claimants may
            // transiently see a pessimistic allowance — retries degrade
            // to failures, never the reverse.
            self.retry_spent.fetch_sub(1, Ordering::Relaxed);
            self.retry_budget_exhausted.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Minimum admission-phase samples before the deadline-feasibility
/// estimate trusts the histogram ([`TenantState::estimated_queue_wait_us`]).
const ESTIMATE_MIN_SAMPLES: u64 = 8;

/// The tenant control plane, guarded by `Inner::qos`: the tenant list and
/// the weighted-fair-queueing dispatch state.
#[derive(Default)]
pub(crate) struct QosState {
    pub(crate) tenants: Vec<Arc<TenantState>>,
    /// Tenant topologies dispatched but not yet finalized, bounded by
    /// `Config::max_inflight`.
    inflight: usize,
    /// The fair queue's notion of "now": the virtual time of the last
    /// dispatch. A tenant idle for a while resumes from here rather than
    /// from its stale clock, so sleeping never banks credit.
    vnow: u64,
}

/// A client handle for one tenant of an [`Executor`] — the unit of
/// isolation for the multi-tenant submission path.
///
/// Obtained from [`Executor::tenant`] / [`Executor::tenant_with`]; cheap
/// to clone and safe to share across threads. Submissions through a
/// tenant ([`Taskflow::run_on`](crate::Taskflow::run_on),
/// [`Taskflow::try_run_on`](crate::Taskflow::try_run_on)) pass admission
/// control (bounded per-tenant queue) and weighted fair queueing before
/// they reach the executor's injector.
#[derive(Clone)]
pub struct Tenant {
    pub(crate) state: Arc<TenantState>,
    pub(crate) inner: Arc<Inner>,
}

impl Tenant {
    /// The tenant's name, as passed to [`Executor::tenant`].
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The tenant's stable 1-based id within its executor — the id trace
    /// output and [`ChaosSpec::for_tenant`](crate::chaos::ChaosSpec::for_tenant)
    /// scoping use (`0` there means "untenanted").
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The tenant's fair-queueing weight.
    pub fn weight(&self) -> u32 {
        self.state.weight
    }

    /// The tenant's admission bound (maximum queued submissions).
    pub fn max_queued(&self) -> usize {
        self.state.max_queue
    }

    /// Point-in-time snapshot of this tenant's counters.
    pub fn stats(&self) -> TenantStats {
        self.state.snapshot()
    }

    /// The tenant's latency objective, if one was set at creation
    /// ([`TenantQos::slo`]).
    pub fn slo(&self) -> Option<SloSpec> {
        self.state.slo
    }

    /// The tenant's default run deadline, if one was set at creation
    /// ([`TenantQos::deadline`]).
    pub fn deadline(&self) -> Option<Duration> {
        self.state.deadline
    }

    /// Current state of the tenant's circuit breaker. Always
    /// [`BreakerState::Closed`] when no breaker was configured.
    pub fn breaker_state(&self) -> BreakerState {
        BreakerState::from_word(self.state.breaker_word.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.state.name)
            .field("weight", &self.state.weight)
            .field("max_queued", &self.state.max_queue)
            .finish()
    }
}

/// Dispatches queued tenant runs while the admission budget has room:
/// repeatedly picks the nonempty tenant with the smallest virtual time
/// (weighted fair queueing) and starts its oldest queued run.
///
/// Called after every tenant submission and after every tenant topology
/// finalizes, so the budget is always refilled promptly. Runs on client
/// and worker threads alike; all steps are non-blocking.
fn pump_tenants(inner: &Inner) {
    let mut shed: Vec<(Arc<TenantState>, QueuedRun, u64)> = Vec::new();
    loop {
        let next = next_dispatch(inner, &mut shed);
        // Resolve shed runs *after* the qos/queue locks drop — promise
        // resolution can run arbitrary waker code (same discipline as
        // `Executor::close`).
        for (tenant, run, queued_for_us) in shed.drain(..) {
            resolve_shed(&tenant, run, queued_for_us);
        }
        let Some((tenant, run)) = next else {
            return;
        };
        dispatch_tenant_run(inner, tenant, run);
    }
}

/// Resolves one shed run: releases a probe claim it may hold and fails
/// its promise with [`RunError::Shed`]. The run never reached
/// `Topology::enqueue`, so the topology stays idle/claimable — re-arming
/// after a shed needs no cleanup.
fn resolve_shed(tenant: &TenantState, run: QueuedRun, queued_for_us: u64) {
    tenant.release_probe(run.probe);
    run.promise.set(Err(RunError::Shed {
        tenant: tenant.name.clone(),
        queued_for: Duration::from_micros(queued_for_us),
    }));
}

/// Picks the next run to dispatch under weighted fair queueing, or `None`
/// when the budget is exhausted or every tenant queue is empty. On
/// success the admission slot is already charged (`qos.inflight`) and the
/// tenant's `dispatched` counter bumped (under the queue lock, atomically
/// with the pop, so snapshots never see the run in neither bucket).
///
/// Queued runs whose deadline has already expired are shed instead of
/// dispatched: counted under the queue lock, pushed onto `shed` for the
/// caller to resolve outside the locks.
fn next_dispatch(
    inner: &Inner,
    shed: &mut Vec<(Arc<TenantState>, QueuedRun, u64)>,
) -> Option<(Arc<TenantState>, QueuedRun)> {
    let mut qos = inner.qos.lock();
    'scan: loop {
        if qos.inflight >= inner.cfg.max_inflight {
            return None;
        }
        // Min-virtual-time scan. Tenant counts are small (a handful of
        // clients); the scan under the qos lock is cheaper than a heap
        // that would need rebalancing on every idle/busy transition.
        let vnow = qos.vnow;
        let mut best: Option<(usize, u64)> = None;
        for (i, t) in qos.tenants.iter().enumerate() {
            // Lock order: qos → tenant.queue (established here and in
            // `Executor::close`; never the inverse).
            if t.queue.lock().is_empty() {
                continue;
            }
            // An idle tenant's stale clock fast-forwards to `vnow`:
            // fairness applies to backlogged tenants, idling banks no
            // credit.
            let vt = t.vtime.load(Ordering::Relaxed).max(vnow);
            if best.is_none_or(|(_, b)| vt < b) {
                best = Some((i, vt));
            }
        }
        let (idx, vt) = best?;
        let tenant = Arc::clone(&qos.tenants[idx]);
        let run = {
            let mut q = tenant.queue.lock();
            let now = crate::clock::now_us().max(1);
            loop {
                let Some(mut run) = q.pop_front() else {
                    // The whole queue was doomed work; rescan — another
                    // tenant may still have dispatchable runs.
                    continue 'scan;
                };
                if run.deadline_us != 0 && now >= run.deadline_us {
                    // Shed: the run could not be dispatched before its
                    // deadline; dispatching it now would burn worker
                    // time on work whose client has given up.
                    tenant.shed.fetch_add(1, Ordering::Relaxed);
                    tenant.space.notify_one();
                    let queued_for_us = now.saturating_sub(run.enqueued_us);
                    shed.push((Arc::clone(&tenant), run, queued_for_us));
                    continue;
                }
                if run.submit_us != 0 {
                    // Admission stamp: the fair-queue pump just released
                    // this run from the tenant queue (end of the
                    // admission-wait phase).
                    run.admitted_us = now;
                }
                // Dispatched the moment it leaves the queue: same lock
                // hold as the pop, so `queued + dispatched` is invariant
                // across the handoff (see `TenantState::snapshot`).
                tenant.dispatched.fetch_add(1, Ordering::Relaxed);
                // A blocking submitter may be waiting for exactly this
                // slot.
                tenant.space.notify_one();
                break run;
            }
        };
        qos.vnow = vt;
        tenant
            .vtime
            .store(vt + VT_SCALE / u64::from(tenant.weight), Ordering::Relaxed);
        qos.inflight += 1;
        return Some((tenant, run));
    }
}

/// Starts a run handed out by [`next_dispatch`]: registers the keep-alive
/// (or rejects, if shutdown began since the pop) and drives the first
/// iteration when this run claims the topology's driver role.
fn dispatch_tenant_run(inner: &Inner, tenant: Arc<TenantState>, run: QueuedRun) {
    let QueuedRun {
        topo,
        cond,
        promise,
        submit_us,
        admitted_us,
        enqueued_us: _,
        deadline_us: _,
        probe,
    } = run;
    let claimed = {
        let mut reg = inner.running.lock();
        if reg.closing {
            drop(reg);
            inner.qos.lock().inflight -= 1;
            // `next_dispatch` already counted this run dispatched (under
            // the queue lock); move it to the rejected bucket. The two
            // steps are not under one lock, so a scraper racing this
            // narrow shutdown window can see the run double-counted for
            // an instant — over-counted, never lost.
            tenant.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            tenant.dispatched.fetch_sub(1, Ordering::Relaxed);
            tenant.release_probe(probe);
            promise.set(Err(RunError::Rejected(AdmissionError::ShuttingDown)));
            return;
        }
        if topo.enqueue(PendingRun { cond, promise }) {
            topo.set_tenant(tenant.id);
            reg.register(&topo, Some(Arc::clone(&tenant)));
            true
        } else {
            false
        }
    };
    if claimed {
        // Stamp the stint's lifecycle and arm the first-task latch before
        // the first iteration publishes: the claiming dispatch has
        // exclusive access to the stamps until `begin_iteration` makes
        // the sources visible (the injector's Release publish carries
        // them to workers). Coalesced dispatches below ride the incumbent
        // driver's stint and are never recorded.
        if submit_us != 0 {
            topo.stamps
                .arm(submit_us, admitted_us, crate::clock::now_us().max(1));
        } else {
            topo.stamps.clear();
        }
        tenant.inflight.fetch_add(1, Ordering::Relaxed);
        advance_topology(inner, &topo, false);
    } else {
        // The topology is already running under another registration; the
        // batch rides the incumbent driver's pending queue and resolves
        // with it. The admission slot frees immediately — this dispatch
        // put no new topology in flight. A probe claim is handed back:
        // the incumbent's outcome (possibly another tenant's) must not
        // be this breaker's verdict, and holding the claim with no stint
        // of our own to clear it would wedge the breaker half-open.
        tenant.release_probe(probe);
        tenant.coalesced.fetch_add(1, Ordering::Relaxed);
        inner.qos.lock().inflight -= 1;
    }
}
