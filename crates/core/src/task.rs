//! Task handles: lightweight, copyable wrappers over graph nodes
//! (§III-A/B of the paper).
//!
//! A [`Task`] is the only way users touch a node. It is `Copy` (like
//! Cpp-Taskflow's `tf::Task`), tied by lifetime to the [`Taskflow`] or
//! [`Subflow`](crate::Subflow) that created it, and deliberately
//! `!Send`/`!Sync`: graph construction is a single-threaded phase.
//!
//! Handles stay valid after the graph is dispatched (the taskflow keeps
//! dispatched topologies alive), but *mutating* a task after dispatch is a
//! logic error; every mutating method asserts the node has not yet been
//! handed to the executor.

use crate::graph::{RawNode, Work};
use crate::subflow::Subflow;
use std::marker::PhantomData;

/// A handle to a task in a task dependency graph.
#[derive(Clone, Copy)]
pub struct Task<'g> {
    pub(crate) node: RawNode,
    pub(crate) _marker: PhantomData<&'g ()>,
}

impl<'g> Task<'g> {
    pub(crate) fn new(node: RawNode) -> Task<'g> {
        Task {
            node,
            _marker: PhantomData,
        }
    }

    #[inline]
    fn assert_mutable(self) {
        // SAFETY: reading a plain field from the build thread; the topology
        // pointer is only set at dispatch, which the build thread performs.
        let dispatched = unsafe { !(*self.node).state.topology.get().is_null() };
        assert!(
            !dispatched,
            "task mutated after its graph was dispatched for execution"
        );
    }

    /// Assigns a human-readable name (shown in DOT dumps and observer
    /// events); returns `self`. The name is interned once here — every
    /// later use (tracing, stats, dumps) clones a reference, never the
    /// text.
    pub fn name(self, name: impl Into<String>) -> Self {
        self.assert_mutable();
        // SAFETY: build phase, single thread.
        unsafe {
            *(*self.node).structure.name.get_mut() = crate::TaskLabel::from(name.into());
        }
        self
    }

    /// The task's name, or an empty string.
    pub fn name_str(self) -> String {
        // SAFETY: name is written only during build; reading later is fine.
        unsafe { (*self.node).label().to_string() }
    }

    /// Adds dependency edges so that `self` runs before every task in
    /// `targets` (the paper's `A.precede(B, C)`). Accepts a single task, an
    /// array, a slice, or a `Vec`.
    pub fn precede<T: TaskSet<'g>>(self, targets: T) -> Self {
        self.assert_mutable();
        targets.for_each(&mut |t| {
            // SAFETY: build phase, single thread; both nodes belong to
            // graphs owned by the same (not yet dispatched) taskflow.
            unsafe {
                (*self.node).structure.successors.get_mut().push(t.node);
                *(*t.node).structure.in_degree.get_mut() += 1;
            }
        });
        self
    }

    /// Adds dependency edges so that `self` runs after every task in
    /// `sources`. The mirror image of [`Task::precede`].
    pub fn succeed<T: TaskSet<'g>>(self, sources: T) -> Self {
        self.assert_mutable();
        sources.for_each(&mut |t| {
            // SAFETY: build phase, single thread; both nodes belong to
            // graphs owned by the same (not yet dispatched) taskflow.
            unsafe {
                (*t.node).structure.successors.get_mut().push(self.node);
                *(*self.node).structure.in_degree.get_mut() += 1;
            }
        });
        self
    }

    /// Assigns (or replaces) the callable of this task. Useful for
    /// placeholders whose work is decided late (§III-A).
    pub fn work<F>(self, f: F) -> Self
    where
        F: FnMut() + Send + 'static,
    {
        self.assert_mutable();
        // SAFETY: build phase, single thread.
        unsafe {
            *(*self.node).structure.work.get_mut() = Work::Static(Box::new(f));
        }
        self
    }

    /// Assigns a dynamic (subflow-spawning) callable to this task.
    pub fn work_subflow<F>(self, f: F) -> Self
    where
        F: FnMut(&mut Subflow<'_>) + Send + 'static,
    {
        self.assert_mutable();
        // SAFETY: build phase, single thread.
        unsafe {
            *(*self.node).structure.work.get_mut() = Work::Dynamic(Box::new(f));
        }
        self
    }

    /// Allows this task to be re-executed up to `n` more times if its
    /// closure panics, before the panic is recorded against the run. The
    /// failed attempt's partial state (a half-built subflow, for a dynamic
    /// task) is re-armed before each retry, and nothing propagates to
    /// successors until an attempt succeeds or the budget is exhausted.
    /// Retries are visible to observers
    /// ([`ExecutorObserver::on_task_retry`](crate::ExecutorObserver::on_task_retry))
    /// and counted in [`ExecutorStats`](crate::ExecutorStats).
    ///
    /// ```
    /// use std::sync::atomic::{AtomicU32, Ordering};
    /// static ATTEMPTS: AtomicU32 = AtomicU32::new(0);
    /// let tf = rustflow::Taskflow::new();
    /// tf.emplace(|| {
    ///     if ATTEMPTS.fetch_add(1, Ordering::Relaxed) < 2 {
    ///         panic!("flaky");
    ///     }
    /// })
    /// .retry(2);
    /// assert!(tf.run().get().is_ok()); // third attempt succeeds
    /// ```
    pub fn retry(self, n: u32) -> Self {
        self.retry_backoff(n, std::time::Duration::ZERO)
    }

    /// Like [`Task::retry`], pausing before retry *k* for
    /// `base * 2^(k-1)`, capped at 50 ms — bounded exponential backoff for
    /// tasks whose failures are transient (contended resources, flaky
    /// I/O).
    pub fn retry_backoff(self, n: u32, base: std::time::Duration) -> Self {
        self.assert_mutable();
        // SAFETY: build phase, single thread.
        unsafe {
            *(*self.node).structure.retry.get_mut() = crate::graph::RetryPolicy {
                limit: n,
                base_backoff: base,
            };
        }
        self
    }

    /// Number of outgoing edges.
    pub fn num_successors(self) -> usize {
        // SAFETY: edges mutate only during the single-threaded build phase.
        unsafe { (*self.node).structure.successors.get().len() }
    }

    /// Number of incoming edges.
    pub fn num_dependents(self) -> usize {
        // SAFETY: edges mutate only during the single-threaded build phase.
        unsafe { *(*self.node).structure.in_degree.get() }
    }

    /// `true` when the task has no callable assigned yet.
    pub fn is_placeholder(self) -> bool {
        // SAFETY: work is assigned only during the build phase.
        unsafe { matches!(*(*self.node).structure.work.get(), Work::Empty) }
    }
}

impl std::fmt::Debug for Task<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("name", &self.name_str())
            .field("successors", &self.num_successors())
            .field("dependents", &self.num_dependents())
            .finish()
    }
}

/// Anything that can stand on the right-hand side of
/// [`Task::precede`]/[`Task::succeed`]: a task, `[Task; N]`, `&[Task]`, or
/// `Vec<Task>`. This is the Rust rendering of Cpp-Taskflow's variadic
/// `precede(Ts&&... tasks)` parameter pack.
pub trait TaskSet<'g> {
    /// Invokes `f` on every task in the set.
    fn for_each(self, f: &mut dyn FnMut(Task<'g>));
}

impl<'g> TaskSet<'g> for Task<'g> {
    fn for_each(self, f: &mut dyn FnMut(Task<'g>)) {
        f(self)
    }
}

impl<'g, const N: usize> TaskSet<'g> for [Task<'g>; N] {
    fn for_each(self, f: &mut dyn FnMut(Task<'g>)) {
        for t in self {
            f(t)
        }
    }
}

impl<'g> TaskSet<'g> for &[Task<'g>] {
    fn for_each(self, f: &mut dyn FnMut(Task<'g>)) {
        for &t in self {
            f(t)
        }
    }
}

impl<'g> TaskSet<'g> for &Vec<Task<'g>> {
    fn for_each(self, f: &mut dyn FnMut(Task<'g>)) {
        for &t in self {
            f(t)
        }
    }
}

impl<'g> TaskSet<'g> for Vec<Task<'g>> {
    fn for_each(self, f: &mut dyn FnMut(Task<'g>)) {
        for t in self {
            f(t)
        }
    }
}
