//! # rustflow — fast task-based parallel programming
//!
//! A from-scratch Rust reproduction of **Cpp-Taskflow** (T.-W. Huang,
//! C.-X. Lin, G. Guo, M. Wong, *Cpp-Taskflow: Fast Task-Based Parallel
//! Programming Using Modern C++*, IPDPS 2019).
//!
//! rustflow helps you quickly write parallel programs using **task
//! dependency graphs**: you describe *what* depends on *what*; a
//! work-stealing executor decides *who* runs *when*. There is no explicit
//! thread management and no lock juggling in user code.
//!
//! ```
//! let tf = rustflow::Taskflow::new();
//!
//! let (a, b, c, d) = rustflow::emplace!(tf,
//!     || println!("Task A"),
//!     || println!("Task B"),
//!     || println!("Task C"),
//!     || println!("Task D"),
//! );
//!
//! a.precede([b, c]); // A runs before B and C
//! b.precede(d);      // B runs before D
//! c.precede(d);      // C runs before D
//!
//! tf.wait_for_all(); // block until finish
//! ```
//!
//! ## Feature map (paper section → API)
//!
//! | Paper | API |
//! |---|---|
//! | §III-A create a task | [`Taskflow::emplace`], [`Taskflow::placeholder`], [`emplace!`] |
//! | §III-B static tasking | [`Task::precede`], [`Task::succeed`] |
//! | §III-C dispatch | [`Taskflow::wait_for_all`], [`Taskflow::dispatch`], [`Taskflow::silent_dispatch`], [`RunHandle`] |
//! | §III-D dynamic tasking | [`Taskflow::emplace_subflow`], [`Subflow`] (join/detach) |
//! | §III-E executor | [`Executor`], [`ExecutorBuilder`] (work stealing + work sharing, Algorithm 1) |
//! | §III-F algorithms | [`algorithm::parallel_for`], [`algorithm::reduce`], [`algorithm::transform`] |
//! | §III-G debugging | [`Taskflow::dump`], [`Taskflow::dump_topologies`] (GraphViz DOT) |
//!
//! ## Scheduling (Algorithm 1 of the paper)
//!
//! The executor mixes **work stealing** with **work sharing**: each worker
//! owns a Chase–Lev deque plus an *exclusive task cache* that lets linear
//! task chains run speculatively with no queue traffic; idle workers park
//! on a precise *idler list* from which wakers pop exactly one spare
//! worker; and a finishing worker occasionally wakes an idler to
//! rebalance load. See [`Executor`] for details and ablation switches.

#![warn(missing_docs)]
#![warn(unsafe_op_in_unsafe_fn)]

#[macro_use]
mod taskflow;

pub mod algorithm;
pub mod chaos;
mod clock;
mod dot;
mod error;
mod executor;
mod future;
mod graph;
mod handle;
mod injector;
pub mod introspect;
mod label;
mod notifier;
mod observer;
pub mod profile;
#[cfg(feature = "rustflow_check")]
mod rearm_model;
mod ring;
mod shared_vec;
mod stats;
mod subflow;
mod sync;
mod sync_cell;
mod task;
pub mod this_task;
mod topology;
mod validate;
pub mod wsq;

/// Internal protocol types re-exported for the model-checker test suite
/// (`crates/check/tests`). Not part of the public API.
#[cfg(feature = "rustflow_check")]
#[doc(hidden)]
pub mod check_internals {
    pub use crate::injector::Injector;
    pub use crate::notifier::Notifier;
    pub use crate::rearm_model::RearmHarness;
    pub use crate::ring::EventRing;
}

pub use error::{AdmissionError, FailurePolicy, RunError, RunResult, TaskPanic};
pub use executor::{
    BreakerSpec, BreakerState, Executor, ExecutorBuilder, RetryBudget, SloSpec, Tenant, TenantQos,
};
pub use future::{Promise, SharedFuture};
pub use handle::RunHandle;
pub use introspect::{IntrospectConfig, IntrospectHandle, WatchdogCounts, WatchdogDiagnostic};
pub use label::TaskLabel;
pub use observer::{
    chrome_trace_json_from, BusyCounter, ExecutorObserver, IterationInfo, SchedEvent,
    SchedEventKind, TaskSpanInfo, TopologyAgg, TopologyRollup, TraceEvent, Tracer, DISPATCH_LANE,
    SCHED_EVENT_SCHEMA_VERSION,
};
pub use profile::{GraphSnapshot, ProfileReport, PROFILE_SCHEMA_VERSION};
pub use shared_vec::SharedVec;
pub use stats::{
    escape_label_value, percentile, AtomicHistogram, ExecutorStats, Histogram, TenantStats,
    WorkerStats,
};
pub use subflow::Subflow;
pub use task::{Task, TaskSet};
pub use taskflow::Taskflow;
pub use validate::GraphDiagnostic;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::algorithm::{self, parallel_for, reduce, transform};
    pub use crate::emplace;
    pub use crate::{
        Executor, ExecutorBuilder, FailurePolicy, RunHandle, SharedVec, Subflow, Task, Taskflow,
    };
}
