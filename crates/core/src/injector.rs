//! Lock-free MPMC injector: how external work enters the executor.
//!
//! Topology dispatch publishes source-task indices here and the
//! work-stealing loop pops them when a worker's own deque and every
//! victim are empty. The seed serialized every cross-thread handoff on a
//! `Mutex<VecDeque<usize>>`; under a serving load with many client
//! threads submitting topologies concurrently that one lock is the
//! bottleneck of the whole submission path. This replaces it with
//! Vyukov's bounded MPMC queue (the same slot protocol as
//! [`crate::ring::EventRing`]): producers claim a slot with a CAS on
//! `head` and publish it by storing `seq = pos + 1`; consumers claim
//! with a CAS on `tail` and recycle the slot for the next lap.
//!
//! Two departures from the event ring, both driven by the injector's
//! job of *never losing a task*:
//!
//! - **Overflow spills, it does not drop.** A full ring diverts the
//!   push into a mutex-protected side queue. Spilling only happens when
//!   a dispatch burst outruns the ring capacity, so the common path
//!   stays lock-free while publication stays loss-free. Consumers drain
//!   the ring first (ring items are older than any spill made while
//!   they were queued), then the spill.
//! - **Emptiness participates in the sleep protocol.** A parking worker
//!   decides whether to sleep by checking [`Injector::is_empty`] after
//!   announcing itself in the notifier; a submitter checks for sleepers
//!   after pushing. That Dekker handshake needs the emptiness check and
//!   the slot claim in the single SeqCst total order — see the ORDERING
//!   comments on `head`/`tail`/`spilled`.
//!
//! The `mutexed` constructor flag routes every push and pop through the
//! side queue, reproducing the seed's mutexed injector on the identical
//! code path — the ablation baseline for `tf-bench --bin serving`.

use crate::sync::{AtomicU64, AtomicUsize, CheckedCell, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;

/// ORDERING: Release on the slot-publish `seq` store orders the payload
/// write before the sequence number a consumer Acquire-loads, so the
/// consumer's plain read of `value` never races the producer's write.
/// The `rustflow_weaken` cfg deliberately breaks it so the model checker
/// and the sanitizer can demonstrate the lost/phantom task it causes
/// (see crates/check).
const INJECTOR_PUBLISH: Ordering = if cfg!(rustflow_weaken = "injector_publish") {
    Ordering::Relaxed
} else {
    Ordering::Release
};

struct Slot {
    /// Vyukov sequence number: `pos` when free, `pos + 1` when occupied.
    seq: AtomicUsize,
    /// The queued task index; validity is mediated by `seq`.
    value: CheckedCell<usize>,
}

/// A bounded lock-free MPMC queue of task indices with a mutexed
/// overflow spill (push never fails, never blocks on the fast path).
pub struct Injector {
    head: AtomicUsize,
    tail: AtomicUsize,
    mask: usize,
    slots: Box<[Slot]>,
    /// Items currently parked in `overflow`. Kept as an atomic so
    /// `is_empty`/`len` stay lock-free on the park path.
    spilled: AtomicUsize,
    /// Lifetime count of pushes that overflowed into the side queue.
    spilled_total: AtomicU64,
    /// Ablation switch: route everything through `overflow`, reproducing
    /// the seed's `Mutex<VecDeque>` injector for A/B benchmarking.
    mutexed: bool,
    overflow: Mutex<VecDeque<usize>>,
}

// SAFETY: slot access is mediated by the Vyukov sequence protocol; a
// slot's value is only touched by the thread that owns it per `seq`.
unsafe impl Send for Injector {}
unsafe impl Sync for Injector {}

impl Injector {
    /// An injector with a ring of `capacity` slots (rounded up to a
    /// power of two, minimum 2). With `mutexed` set the ring is unused
    /// and every operation takes the overflow lock.
    pub fn new(capacity: usize, mutexed: bool) -> Injector {
        let cap = capacity.max(2).next_power_of_two();
        Injector {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            mask: cap - 1,
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: CheckedCell::new(0),
                })
                .collect(),
            spilled: AtomicUsize::new(0),
            spilled_total: AtomicU64::new(0),
            mutexed,
            overflow: Mutex::new(VecDeque::new()),
        }
    }

    /// Ring capacity in slots.
    #[cfg_attr(not(any(test, feature = "rustflow_check")), allow(dead_code))]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// `true` when this injector runs in the mutexed ablation mode.
    #[cfg_attr(not(any(test, feature = "rustflow_check")), allow(dead_code))]
    pub fn is_mutexed(&self) -> bool {
        self.mutexed
    }

    /// Lifetime count of pushes that overflowed into the side queue
    /// (always equals the push count in mutexed mode).
    pub fn spilled_total(&self) -> u64 {
        self.spilled_total.load(Ordering::Relaxed)
    }

    /// Queues `item`. Lock-free unless the ring is full, in which case
    /// the item spills into the mutexed side queue — publication never
    /// drops a task.
    pub fn push(&self, item: usize) {
        if self.mutexed || !self.ring_push(item) {
            self.spill(item);
        }
    }

    /// Queues every index in `items` (a dispatch burst of source tasks).
    pub fn push_batch(&self, items: impl IntoIterator<Item = usize>) {
        for item in items {
            self.push(item);
        }
    }

    fn spill(&self, item: usize) {
        let mut overflow = self.overflow.lock();
        // ORDERING: SeqCst places the spill count increment in the
        // single total order before the submitter's SeqCst fence, so a
        // parking worker that the submitter misses is guaranteed to see
        // `spilled != 0` in its `is_empty` re-check (Dekker handshake;
        // see crate::notifier).
        self.spilled.fetch_add(1, Ordering::SeqCst);
        self.spilled_total.fetch_add(1, Ordering::Relaxed);
        overflow.push_back(item);
    }

    /// Claims a ring slot and publishes `item`; `false` when the ring is
    /// full (caller spills).
    fn ring_push(&self, item: usize) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // ORDERING: Acquire pairs with the consumer's Release `seq`
            // store in `ring_pop`, so a slot seen free is fully drained.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // ORDERING: SeqCst on the successful claim places the
                // head advance in the single total order before the
                // submitter's SeqCst fence; a parking worker whose
                // announcement the submitter misses is guaranteed to see
                // `head != tail` in its `is_empty` re-check.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gives this thread exclusive
                        // ownership of the slot until the seq store below.
                        unsafe { slot.value.with_mut(|p| *p = item) };
                        slot.seq.store(pos.wrapping_add(1), INJECTOR_PUBLISH);
                        return true;
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                // Lapped: the ring is full.
                return false;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest available task index, ring first, then the spill.
    pub fn pop(&self) -> Option<usize> {
        if !self.mutexed {
            if let Some(item) = self.ring_pop() {
                return Some(item);
            }
        }
        // ORDERING: SeqCst keeps the spill probe in the same total order
        // as the park-path `is_empty` check; Relaxed would be enough for
        // correctness here (the lock below is authoritative) but the
        // stronger order costs nothing off the fast path.
        if self.spilled.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut overflow = self.overflow.lock();
        let item = overflow.pop_front();
        if item.is_some() {
            // ORDERING: SeqCst mirrors the increment in `spill`.
            self.spilled.fetch_sub(1, Ordering::SeqCst);
        }
        item
    }

    fn ring_pop(&self) -> Option<usize> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // ORDERING: Acquire pairs with [`INJECTOR_PUBLISH`] in
            // `ring_push`, so an occupied slot's payload is visible
            // before it is read.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                // ORDERING: SeqCst on the successful claim keeps the
                // tail advance in the single total order read by
                // `is_empty` on the park path.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gives this thread exclusive
                        // ownership of the occupied slot.
                        let value = unsafe { slot.value.with(|p| *p) };
                        // ORDERING: Release orders the read-out above
                        // before the slot is recycled; the producer's
                        // Acquire `seq` load won't overwrite a payload
                        // still being read out.
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Number of queued task indices (ring fill level plus spill).
    /// Advisory for gauges; the park path uses [`Injector::is_empty`].
    pub fn len(&self) -> usize {
        // ORDERING: SeqCst so the park predicate's emptiness check sits
        // in the same total order as producers' claim CASes (Dekker
        // handshake with the submitter's post-publish fence).
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        let ring = head.wrapping_sub(tail).min(self.slots.len());
        // ORDERING: SeqCst mirrors `spill`'s increment — same Dekker
        // total order as the head/tail loads above.
        ring + self.spilled.load(Ordering::SeqCst)
    }

    /// `true` when no task is queued. Conservative under concurrency: a
    /// slot claimed but not yet published reads as *non*-empty, so a
    /// parking worker re-spins rather than sleeping through a task.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_ring() {
        let inj = Injector::new(8, false);
        assert_eq!(inj.capacity(), 8);
        assert!(inj.is_empty());
        for i in 1..=5 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 5);
        for i in 1..=5 {
            assert_eq!(inj.pop(), Some(i));
        }
        assert_eq!(inj.pop(), None);
        assert_eq!(inj.spilled_total(), 0);
    }

    #[test]
    fn overflow_spills_and_drains() {
        let inj = Injector::new(2, false);
        inj.push_batch([1, 2, 3, 4, 5]);
        assert_eq!(inj.len(), 5);
        assert_eq!(inj.spilled_total(), 3, "three pushes past a 2-slot ring");
        let mut got: Vec<usize> = std::iter::from_fn(|| inj.pop()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5], "spill loses nothing");
        assert!(inj.is_empty());
    }

    #[test]
    fn wraps_many_times() {
        let inj = Injector::new(4, false);
        for round in 0..100 {
            for i in 0..3 {
                inj.push(round * 10 + i + 1);
            }
            for i in 0..3 {
                assert_eq!(inj.pop(), Some(round * 10 + i + 1));
            }
        }
        assert_eq!(inj.spilled_total(), 0);
    }

    #[test]
    fn mutexed_mode_matches_semantics() {
        let inj = Injector::new(8, true);
        assert!(inj.is_mutexed());
        inj.push_batch([7, 8, 9]);
        assert_eq!(inj.len(), 3);
        assert_eq!(inj.pop(), Some(7));
        assert_eq!(inj.pop(), Some(8));
        assert_eq!(inj.pop(), Some(9));
        assert_eq!(inj.pop(), None);
        assert!(inj.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore = "hundreds of thousands of spins; too slow under miri")]
    fn concurrent_producers_and_consumers_conserve_items() {
        use std::collections::HashSet;
        use std::sync::Arc;
        const PRODUCERS: usize = 4;
        const PER: usize = 10_000;
        let inj = Arc::new(Injector::new(64, false));
        let writers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        inj.push(p * PER + i + 1);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 10_000 {
                        match inj.pop() {
                            Some(v) => {
                                got.push(v);
                                dry = 0;
                            }
                            None => dry += 1,
                        }
                    }
                    got
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let mut all = Vec::new();
        for r in readers {
            all.extend(r.join().unwrap());
        }
        while let Some(v) = inj.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), PRODUCERS * PER, "no task lost");
        let distinct: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len(), "no task duplicated or invented");
    }
}
