//! A minimal promise / shared-future pair.
//!
//! Cpp-Taskflow communicates topology completion through a
//! `std::promise` / `std::shared_future` pair (§III-C of the paper). Rust's
//! standard library has no blocking future primitive, so we implement the
//! equivalent on top of a mutex and a condition variable, exactly the
//! construction *Rust Atomics and Locks* chapter 1/9 walks through.
//!
//! [`SharedFuture`] is cloneable; every clone observes the same value. The
//! producing side is a single-use [`Promise`].

use crate::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct Shared<T> {
    value: Mutex<Option<T>>,
    cv: Condvar,
}

/// The producing half: fulfil it once with [`Promise::set`].
#[derive(Debug)]
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half: blocks on [`SharedFuture::wait`] / clones freely.
#[derive(Debug)]
pub struct SharedFuture<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for SharedFuture<T> {
    fn clone(&self) -> Self {
        SharedFuture {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Creates a connected promise / shared-future pair.
pub fn promise_pair<T>() -> (Promise<T>, SharedFuture<T>) {
    let shared = Arc::new(Shared {
        value: Mutex::new(None),
        cv: Condvar::new(),
    });
    (
        Promise {
            shared: Arc::clone(&shared),
        },
        SharedFuture { shared },
    )
}

impl<T> Promise<T> {
    /// Fulfils the promise, waking every waiter.
    ///
    /// Panics if the promise was already fulfilled: a topology completes
    /// exactly once, and fulfilling twice would indicate a scheduler bug.
    pub fn set(self, value: T) {
        let mut guard = self.shared.value.lock();
        assert!(guard.is_none(), "promise fulfilled twice");
        *guard = Some(value);
        drop(guard);
        self.shared.cv.notify_all();
    }
}

impl<T: Clone> SharedFuture<T> {
    /// Blocks until the value is available and returns a clone of it.
    pub fn get(&self) -> T {
        let mut guard = self.shared.value.lock();
        while guard.is_none() {
            self.shared.cv.wait(&mut guard);
        }
        guard.as_ref().expect("checked above").clone()
    }

    /// Returns the value if already available, without blocking.
    pub fn try_get(&self) -> Option<T> {
        self.shared.value.lock().clone()
    }

    /// Blocks until the value is available or `timeout` elapses.
    pub fn get_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.shared.value.lock();
        while guard.is_none() {
            if self.shared.cv.wait_until(&mut guard, deadline).timed_out() {
                return guard.clone();
            }
        }
        guard.clone()
    }
}

impl<T> SharedFuture<T> {
    /// Creates a future that is already fulfilled with `value`.
    ///
    /// Used by the run/dispatch paths for outcomes decided without touching
    /// the executor: empty graphs, zero-iteration batches, and graphs whose
    /// cached sanitizer verdict is fatal.
    pub fn ready(value: T) -> SharedFuture<T> {
        SharedFuture {
            shared: Arc::new(Shared {
                value: Mutex::new(Some(value)),
                cv: Condvar::new(),
            }),
        }
    }

    /// Blocks until the value is available, discarding it.
    pub fn wait(&self) {
        let mut guard = self.shared.value.lock();
        while guard.is_none() {
            self.shared.cv.wait(&mut guard);
        }
    }

    /// `true` once the promise has been fulfilled.
    pub fn is_ready(&self) -> bool {
        self.shared.value.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_then_get() {
        let (p, f) = promise_pair();
        assert!(!f.is_ready());
        p.set(123);
        assert!(f.is_ready());
        assert_eq!(f.get(), 123);
        assert_eq!(f.try_get(), Some(123));
    }

    #[test]
    fn blocking_get_across_threads() {
        let (p, f) = promise_pair::<String>();
        let f2 = f.clone();
        let waiter = thread::spawn(move || f2.get());
        thread::sleep(Duration::from_millis(20));
        p.set("done".to_string());
        assert_eq!(waiter.join().unwrap(), "done");
        assert_eq!(f.get(), "done");
    }

    #[test]
    fn many_clones_observe_same_value() {
        let (p, f) = promise_pair::<u64>();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let f = f.clone();
                thread::spawn(move || f.get())
            })
            .collect();
        p.set(7);
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
    }

    #[test]
    fn ready_future_is_immediately_resolved() {
        let f = SharedFuture::ready(42u32);
        assert!(f.is_ready());
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn try_get_before_set_is_none() {
        let (_p, f) = promise_pair::<u32>();
        assert_eq!(f.try_get(), None);
    }

    #[test]
    fn get_timeout_times_out() {
        let (_p, f) = promise_pair::<u32>();
        assert_eq!(f.get_timeout(Duration::from_millis(10)), None);
    }

    #[test]
    fn get_timeout_returns_value() {
        let (p, f) = promise_pair::<u32>();
        p.set(5);
        assert_eq!(f.get_timeout(Duration::from_millis(10)), Some(5));
    }

    #[test]
    #[should_panic(expected = "promise fulfilled twice")]
    fn double_set_panics() {
        let shared = Arc::new(Shared {
            value: Mutex::new(Some(1)),
            cv: Condvar::new(),
        });
        let p = Promise { shared };
        p.set(2);
    }
}
