//! Unbounded work-stealing deque (Chase–Lev), the per-worker task queue of
//! the executor (Algorithm 1 of the paper, `worker.queue`).
//!
//! This is the memory-ordering-annotated variant from Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP'13), which is also what Cpp-Taskflow's own `TaskQueue`
//! and crossbeam-deque implement. The owner pushes and pops at the bottom;
//! thieves steal from the top one item at a time.
//!
//! Two implementation choices keep the unsafe surface minimal:
//!
//! * Items are plain `usize` values (the executor stores tagged node
//!   pointers). Ring slots are therefore `AtomicUsize`, so the racy
//!   slot-read in `steal` — which the Chase–Lev protocol resolves with the
//!   subsequent CAS on `top` — is an ordinary relaxed atomic load rather
//!   than a data race on non-atomic memory.
//! * When the ring grows, the old buffer is retired to a garbage list owned
//!   by the deque instead of being freed, so a thief that raced with the
//!   resize still reads from valid memory (the live region was copied, the
//!   old copy is immutable from then on). Buffers are reclaimed when the
//!   deque is dropped. This is exactly Cpp-Taskflow's retirement scheme.
//!
//! The deque is split into an [`Owner`] half (single thread: push/pop) and
//! cloneable [`Stealer`] halves. A differential stress test against
//! `crossbeam_deque` lives in `tests/` of this crate.

use crate::sync::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Mutex};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Initial ring capacity (must be a power of two).
pub const INITIAL_CAPACITY: usize = 64;

/// ORDERING: Release on the buffer-pointer publication in `grow` makes
/// the copied slot contents visible to any thief whose Acquire load in
/// `steal` observes the new pointer. The `rustflow_weaken` cfg
/// deliberately breaks it so the model checker can demonstrate the
/// resulting lost/garbled steal (see crates/check).
const GROW_SWAP: Ordering = if cfg!(rustflow_weaken = "wsq_grow_swap") {
    Ordering::Relaxed
} else {
    Ordering::Release
};

/// ORDERING: the Dekker fence in `pop`, pairing with the SeqCst fence
/// in `steal`: it forces the owner's subsequent `top` read to observe any
/// steal whose fence already executed. The weakened AcqRel variant keeps
/// every happens-before edge but loses the single-total-order property,
/// so the owner can read a stale `top`, conclude the deque still holds
/// two items, and take the bottom slot without a CAS while a thief takes
/// the same slot — the classic weak-memory double-pop the model checker
/// demonstrates (see crates/check/tests/models.rs).
const POP_FENCE: Ordering = if cfg!(rustflow_weaken = "wsq_pop_fence") {
    Ordering::AcqRel
} else {
    Ordering::SeqCst
};

struct RingBuffer {
    mask: usize,
    slots: Box<[AtomicUsize]>,
}

impl RingBuffer {
    fn new(capacity: usize) -> Box<RingBuffer> {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity).map(|_| AtomicUsize::new(0)).collect();
        Box::new(RingBuffer {
            mask: capacity - 1,
            slots,
        })
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn read(&self, index: isize, order: Ordering) -> usize {
        self.slots[index as usize & self.mask].load(order)
    }

    #[inline]
    fn write(&self, index: isize, value: usize, order: Ordering) {
        self.slots[index as usize & self.mask].store(value, order);
    }
}

struct Inner {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<RingBuffer>,
    /// Retired buffers kept alive until the deque is dropped; only the
    /// owner pushes here (during `grow`), so contention is nil. Boxed
    /// because concurrent stealers may still hold raw pointers into a
    /// retired buffer — its address must never move.
    #[allow(clippy::vec_box)]
    garbage: Mutex<Vec<Box<RingBuffer>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // SAFETY: we have exclusive access; the pointer was produced by
        // Box::into_raw in `new`/`grow` and is non-null.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
        }
    }
}

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// Stole the contained item.
    Success(usize),
    /// The deque was observed empty.
    Empty,
    /// Lost a race; retrying may succeed.
    Retry,
}

/// Owner half: `push`/`pop` from a single thread.
pub struct Owner {
    inner: Arc<Inner>,
}

/// Thief half: `steal` from any thread; cloneable.
#[derive(Clone)]
pub struct Stealer {
    inner: Arc<Inner>,
}

/// Creates a new work-stealing deque, returning its two halves.
pub fn deque() -> (Owner, Stealer) {
    deque_with_capacity(INITIAL_CAPACITY)
}

/// Creates a deque with a specific initial ring capacity (power of two).
///
/// The executor always starts at [`INITIAL_CAPACITY`]; small capacities
/// exist so tests — the model checker in particular — can force `grow`
/// with a handful of items instead of 65.
pub fn deque_with_capacity(capacity: usize) -> (Owner, Stealer) {
    assert!(
        capacity.is_power_of_two(),
        "deque capacity must be a power of two"
    );
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(Box::into_raw(RingBuffer::new(capacity))),
        garbage: Mutex::new(Vec::new()),
    });
    (
        Owner {
            inner: Arc::clone(&inner),
        },
        Stealer { inner },
    )
}

impl Owner {
    /// Pushes an item at the bottom. Grows the ring when full.
    pub fn push(&self, item: usize) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        // ORDERING: Acquire on `top` synchronizes with thieves' CAS
        // releases, so the capacity check below never under-counts free
        // slots that completed steals already vacated.
        let t = inner.top.load(Ordering::Acquire);
        // SAFETY: only the owner swaps the buffer pointer, and it is always
        // a valid RingBuffer allocated by this deque.
        let mut buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };

        if b - t >= buf.capacity() as isize {
            self.grow(t, b);
            // SAFETY: as above; `grow` just installed a fresh valid buffer.
            buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        }

        buf.write(b, item, Ordering::Relaxed);
        // ORDERING: Release fence before the `bottom` bump publishes the
        // slot write; a thief's Acquire `bottom` load that sees b+1 also
        // sees the item (the classic Chase–Lev publish edge).
        fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops an item from the bottom (LIFO with respect to `push`).
    pub fn pop(&self) -> Option<usize> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: see push.
        let buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        inner.bottom.store(b, Ordering::Relaxed);
        fence(POP_FENCE);
        let t = inner.top.load(Ordering::Relaxed);

        if t <= b {
            let item = buf.read(b, Ordering::Relaxed);
            if t == b {
                // Last element: race against thieves for it.
                // ORDERING: SeqCst keeps this CAS in the single total
                // order with `steal`'s CAS — exactly one side can advance
                // `top` from t, so the last item is taken once.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(item)
                } else {
                    None
                }
            } else {
                Some(item)
            }
        } else {
            // Already empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Number of items currently in the deque (owner-accurate).
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// `true` when the deque holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Doubles the ring, copying the live region `[t, b)`.
    #[cold]
    fn grow(&self, t: isize, b: isize) {
        let inner = &*self.inner;
        // SAFETY: owner-exclusive buffer access, see push.
        let old = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        let new = RingBuffer::new(old.capacity() * 2);
        for i in t..b {
            new.write(i, old.read(i, Ordering::Relaxed), Ordering::Relaxed);
        }
        let new_ptr = Box::into_raw(new);
        let old_ptr = inner.buffer.swap(new_ptr, GROW_SWAP);
        // Retire the old buffer: thieves may still be reading it.
        // SAFETY: old_ptr came from Box::into_raw and is no longer published.
        inner.garbage.lock().push(unsafe { Box::from_raw(old_ptr) });
    }
}

impl Stealer {
    /// Attempts to steal the oldest item (FIFO with respect to `push`).
    pub fn steal(&self) -> Steal {
        let inner = &*self.inner;
        // ORDERING: Acquire on `top` synchronizes with competing thieves'
        // CAS releases so the slot read below sees post-steal state.
        let t = inner.top.load(Ordering::Acquire);
        // ORDERING: the Dekker-style SeqCst fence pairing with `pop`'s
        // [`POP_FENCE`]: in the single total order, either this thief sees
        // the owner's decremented `bottom`, or the owner sees the advanced
        // `top` — never both stale.
        fence(Ordering::SeqCst);
        // ORDERING: Acquire on `bottom` pairs with the Release fence in
        // `push`, making the pushed item visible before it is read.
        let b = inner.bottom.load(Ordering::Acquire);

        if t < b {
            // ORDERING: Acquire on the buffer pointer pairs with
            // [`GROW_SWAP`]'s Release in `grow`, so the copied slots are
            // visible when a freshly-installed buffer is observed.
            // SAFETY: the buffer pointer always refers to a live RingBuffer:
            // retired buffers stay allocated in the garbage list.
            let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
            let item = buf.read(t, Ordering::Relaxed);
            // ORDERING: SeqCst CAS in the same total order as `pop`'s
            // last-element CAS — at most one contender claims slot t.
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(item)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }

    /// `true` when the deque appears empty (racy, advisory).
    pub fn is_empty(&self) -> bool {
        let inner = &*self.inner;
        // ORDERING: Acquire pairs keep this racy snapshot no staler than
        // the callers' own synchronization; the result is advisory only.
        let t = inner.top.load(Ordering::Acquire);
        let b = inner.bottom.load(Ordering::Acquire);
        b <= t
    }

    /// Approximate number of items (racy, advisory).
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        // ORDERING: see `is_empty` — advisory snapshot, Acquire-bounded.
        let t = inner.top.load(Ordering::Acquire);
        let b = inner.bottom.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn push_pop_lifo() {
        let (owner, _stealer) = deque();
        for i in 1..=100 {
            owner.push(i);
        }
        assert_eq!(owner.len(), 100);
        for i in (1..=100).rev() {
            assert_eq!(owner.pop(), Some(i));
        }
        assert_eq!(owner.pop(), None);
        assert!(owner.is_empty());
    }

    #[test]
    fn steal_fifo() {
        let (owner, stealer) = deque();
        for i in 1..=10 {
            owner.push(i);
        }
        for i in 1..=10 {
            assert_eq!(stealer.steal(), Steal::Success(i));
        }
        assert_eq!(stealer.steal(), Steal::Empty);
    }

    #[test]
    fn grow_preserves_items() {
        let (owner, stealer) = deque();
        let n = INITIAL_CAPACITY * 8;
        for i in 1..=n {
            owner.push(i);
        }
        assert_eq!(owner.len(), n);
        // Steal half, pop half; every item must appear exactly once.
        let mut seen = HashSet::new();
        for _ in 0..n / 2 {
            if let Steal::Success(v) = stealer.steal() {
                assert!(seen.insert(v));
            }
        }
        while let Some(v) = owner.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn empty_stealer_reports_empty() {
        let (owner, stealer) = deque();
        assert!(stealer.is_empty());
        owner.push(1);
        assert!(!stealer.is_empty());
        assert_eq!(stealer.len(), 1);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spin-heavy stress; too slow under miri")]
    fn concurrent_steal_no_loss_no_dup() {
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 4;
        let (owner, stealer) = deque();
        let stolen: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = stealer.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                if v == usize::MAX {
                                    break;
                                }
                                got.push(v);
                            }
                            Steal::Empty => thread::yield_now(),
                            Steal::Retry => {}
                        }
                    }
                    got
                })
            })
            .collect();

        let mut popped = Vec::new();
        for i in 1..=ITEMS {
            owner.push(i);
            if i % 3 == 0 {
                if let Some(v) = owner.pop() {
                    popped.push(v);
                }
            }
        }
        // Poison pills to stop the thieves.
        for _ in 0..THIEVES {
            owner.push(usize::MAX);
        }
        // Drain leftovers (pills are stolen FIFO after real items; keep
        // popping until empty, discarding pills we pop ourselves).
        let mut all: HashSet<usize> = HashSet::new();
        for v in popped {
            assert!(all.insert(v), "duplicate {v}");
        }
        for h in stolen {
            for v in h.join().unwrap() {
                assert!(all.insert(v), "duplicate {v}");
            }
        }
        // Any pills the thieves didn't eat may still sit in the deque along
        // with unstolen items; pop the rest.
        while let Some(v) = owner.pop() {
            if v != usize::MAX {
                assert!(all.insert(v), "duplicate {v}");
            }
        }
        assert_eq!(all.len(), ITEMS, "lost items");
    }
}
