//! Causal profiling: reconstructing the executed schedule from the event
//! rings and computing work / span / critical-path analysis.
//!
//! The telemetry of PR 1 counts *how often* scheduler events happen; this
//! module answers *why a run took as long as it did*. Task begin/end
//! events (schema v2, [`crate::observer::SCHED_EVENT_SCHEMA_VERSION`])
//! carry the executed node's identity, so the per-worker rings can be
//! stitched back into the DAG schedule that actually ran. From it we
//! compute, per iteration:
//!
//! * **work** `T₁` — the sum of all span durations (what one worker would
//!   need);
//! * **span** `T∞` — the longest dependency-weighted path through the
//!   executed nodes, including dynamically spawned subflow children;
//! * **parallelism** `T₁ / T∞` — the maximum useful worker count;
//! * achieved speedup `T₁ / wall` versus **Brent's bound**
//!   `min(P, T₁/T∞)` — the work-stealing literature's limit on what any
//!   scheduler could have achieved on `P` workers.
//!
//! Plus cross-iteration per-node aggregates, Fig. 10-style binned
//! per-worker utilization timelines, and task-duration / steal-latency
//! histograms. [`ProfileReport::to_json`] emits a schema-stable JSON
//! report, [`ProfileReport::prometheus_text`] the histogram/summary
//! families, and [`crate::Taskflow::dump_profiled`] a DOT dump with the
//! critical path bold and nodes heat-colored by total time.

use crate::graph::{Graph, Node};
use crate::observer::{escape_json, SchedEvent, SchedEventKind};
use crate::stats::{escape_label_value, Histogram};
use std::collections::{HashMap, HashSet};

/// Version of the [`ProfileReport`] JSON schema.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// One node of a frozen graph, as seen by the profiler.
#[derive(Debug, Clone)]
pub struct SnapshotNode {
    /// Stable node id (matches [`crate::TaskSpanInfo::node`]).
    pub id: u64,
    /// The node's label ("" when unnamed).
    pub label: String,
    /// Ids of the node's successors.
    pub successors: Vec<u64>,
    /// Index among the topology's top-level nodes; `None` for subflow
    /// children (whose storage is rebuilt every iteration).
    pub static_index: Option<usize>,
}

/// The frozen structure of a topology's graph: what task spans are joined
/// against to recover dependency edges.
///
/// Taken from a *settled* topology via
/// [`crate::Taskflow::profile_snapshot`]. Static nodes keep the same id
/// across every `run_n` iteration (the structure/state split re-arms the
/// same storage); subflow children listed here are the residue of the most
/// recent iteration only.
#[derive(Debug, Clone, Default)]
pub struct GraphSnapshot {
    /// Every node reachable from the topology's top level, subflow
    /// children included.
    pub nodes: Vec<SnapshotNode>,
}

impl GraphSnapshot {
    /// Builds a snapshot of `graph` (recursively including spawned
    /// subflow subgraphs).
    ///
    /// # Safety
    /// The graph must be quiescent: its owning topology settled, or never
    /// dispatched.
    pub(crate) unsafe fn from_graph(graph: &Graph) -> GraphSnapshot {
        let mut snapshot = GraphSnapshot::default();
        // SAFETY: forwarded quiescence contract.
        unsafe { collect_nodes(graph, true, &mut snapshot.nodes) };
        snapshot
    }

    /// Number of snapshotted nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Recursive walk collecting every node; top-level nodes get their static
/// index, subflow children get `None`.
///
/// # Safety
/// Quiescent graph per [`GraphSnapshot::from_graph`].
unsafe fn collect_nodes(graph: &Graph, top_level: bool, out: &mut Vec<SnapshotNode>) {
    for (i, node) in graph.nodes.iter().enumerate() {
        let n: &Node = node;
        // SAFETY: quiescent phase per the caller's contract.
        let label = unsafe { n.label() }.to_string();
        // SAFETY: successors are frozen after the build/spawn phase.
        let successors = unsafe { n.structure.successors.get() }
            .iter()
            .map(|&s| s as u64)
            .collect();
        out.push(SnapshotNode {
            id: n as *const Node as u64,
            label,
            successors,
            static_index: top_level.then_some(i),
        });
        // SAFETY: quiescent phase per the caller's contract.
        let sub = unsafe { n.state.subgraph.get() };
        if !sub.is_empty() {
            // SAFETY: forwarded quiescence contract.
            unsafe { collect_nodes(sub, false, out) };
        }
    }
}

/// One reconstructed task execution.
#[derive(Debug, Clone)]
pub struct TaskSpan {
    /// Id of the executed node.
    pub node: u64,
    /// Id of the spawning parent (0 for top-level / detached nodes).
    pub parent: u64,
    /// Run id of the iteration the span belongs to.
    pub run: u64,
    /// Worker that executed the task.
    pub worker: usize,
    /// Task label ("" when unnamed).
    pub label: String,
    /// Begin timestamp, µs since the process-wide monotonic clock origin ([`crate::Executor::now_us`]'s domain, shared with ring events and `/trace`).
    pub begin_us: u64,
    /// End timestamp, µs since the process-wide monotonic clock origin ([`crate::Executor::now_us`]'s domain, shared with ring events and `/trace`).
    pub end_us: u64,
}

impl TaskSpan {
    fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.begin_us)
    }
}

/// Work/span analysis of one topology iteration.
#[derive(Debug, Clone)]
pub struct IterationProfile {
    /// Run id of the iteration (fresh per re-arm).
    pub run: u64,
    /// Stable topology id (0 when the dispatch event was not captured).
    pub topology: u64,
    /// 0-based iteration index within the topology.
    pub iteration: u64,
    /// Executed spans attributed to this iteration.
    pub tasks: usize,
    /// Work `T₁`: sum of span durations, µs.
    pub work_us: u64,
    /// Span `T∞`: longest dependency-weighted path, µs.
    pub span_us: u64,
    /// Wall clock of the iteration (last end − first begin), µs.
    pub wall_us: u64,
    /// Parallelism `T₁ / T∞`.
    pub parallelism: f64,
    /// Achieved speedup `T₁ / wall`.
    pub achieved_speedup: f64,
    /// Brent's bound on speedup: `min(P, T₁/T∞)` for `P` workers.
    pub brent_speedup: f64,
    /// Human-readable identities along the critical path, in order.
    pub critical_path: Vec<String>,
    /// Node ids along the critical path, in order.
    pub critical_nodes: Vec<u64>,
}

/// Cross-iteration aggregate for one task (or one aggregation bucket; see
/// [`ProfileReport::build`] for the keying rules).
#[derive(Debug, Clone)]
pub struct NodeProfile {
    /// Human-readable identity (label, `task<i>` for unnamed static
    /// nodes, `(subflow)` for unnamed dynamic children).
    pub identity: String,
    /// Stable node id for static nodes; `None` for label/dynamic buckets.
    pub id: Option<u64>,
    /// Number of executions.
    pub count: u64,
    /// Total execution time, µs.
    pub total_us: u64,
    /// Mean execution time, µs.
    pub mean_us: f64,
    /// Longest single execution, µs.
    pub max_us: u64,
    /// Iterations in which this task lay on the critical path.
    pub critical_appearances: u64,
}

/// Fig. 10-style utilization timeline of one worker: the busy fraction of
/// each time bin.
#[derive(Debug, Clone)]
pub struct WorkerTimeline {
    /// Worker id.
    pub worker: usize,
    /// Busy fraction (0..=1) per bin of [`ProfileReport::bin_us`] µs.
    pub busy: Vec<f64>,
}

/// The causal profiler's full output: per-iteration work/span analysis,
/// per-node aggregates, utilization timelines, and latency histograms.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// JSON schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Worker count the capture ran with (the `P` of Brent's bound).
    pub num_workers: usize,
    /// First span begin, µs since the process-wide monotonic clock origin ([`crate::Executor::now_us`]'s domain, shared with ring events and `/trace`).
    pub begin_us: u64,
    /// Last span end, µs since the process-wide monotonic clock origin ([`crate::Executor::now_us`]'s domain, shared with ring events and `/trace`).
    pub end_us: u64,
    /// Width of one utilization bin, µs.
    pub bin_us: u64,
    /// Per-iteration analysis, ordered by run id.
    pub iterations: Vec<IterationProfile>,
    /// Cross-iteration per-task aggregates, heaviest first.
    pub nodes: Vec<NodeProfile>,
    /// Per-worker binned busy fractions.
    pub utilization: Vec<WorkerTimeline>,
    /// Distribution of task durations, µs.
    pub task_duration: Histogram,
    /// Distribution of steal latencies, µs: the gap between a successful
    /// steal and the thief's previous recorded event — an upper bound on
    /// how long the thief hunted for that task.
    pub steal_latency: Histogram,
    /// Total work across all iterations, µs.
    pub total_work_us: u64,
    /// Mean per-iteration span, µs.
    pub mean_span_us: f64,
    /// Mean per-iteration parallelism.
    pub mean_parallelism: f64,
    /// Whole-capture wall clock (`end_us - begin_us`), µs.
    pub wall_us: u64,
    /// Ring events dropped during capture (0 ⇒ the schedule is complete).
    pub dropped_events: u64,
    /// Critical-path edges `(from, to)` of the most recent iteration, for
    /// DOT annotation ([`crate::Taskflow::dump_profiled`]).
    pub critical_edges: Vec<(u64, u64)>,
}

impl ProfileReport {
    /// Reconstructs the executed schedule from `events` and joins it to
    /// `snapshot`.
    ///
    /// Span pairing is per worker (a worker's executions never nest).
    /// Spans are grouped into iterations by run id; dependency edges come
    /// from three sources: the frozen structure (for ids present in the
    /// snapshot), spawn edges (`parent → child` for subflow children), and
    /// join edges (`child → parent's successors`, since a joined parent's
    /// successors cannot start before its children finish). Subflow
    /// children of earlier iterations whose storage was rebuilt since only
    /// contribute spawn/join edges — the snapshot holds the residue of the
    /// most recent iteration.
    ///
    /// Aggregation keying: static nodes aggregate by id (stable across
    /// iterations); dynamic children aggregate by label, or into one
    /// `(subflow)` bucket when unnamed.
    ///
    /// `dropped` is the tracer's drop counter; it is carried into
    /// [`ProfileReport::dropped_events`] so a reader can tell a complete
    /// schedule from a truncated one.
    pub fn build(
        snapshot: &GraphSnapshot,
        events: &[SchedEvent],
        num_workers: usize,
        dropped: u64,
    ) -> ProfileReport {
        let by_id: HashMap<u64, &SnapshotNode> = snapshot.nodes.iter().map(|n| (n.id, n)).collect();
        // Structural predecessor lists (snapshot ids only).
        let mut preds: HashMap<u64, Vec<u64>> = HashMap::new();
        for n in &snapshot.nodes {
            for &s in &n.successors {
                preds.entry(s).or_default().push(n.id);
            }
        }

        // --- Pair begin/end events into spans; collect histograms. -------
        let mut open: HashMap<usize, Vec<SchedEvent>> = HashMap::new();
        let mut spans: Vec<TaskSpan> = Vec::new();
        let mut task_duration = Histogram::new_us();
        let mut steal_latency = Histogram::new_us();
        let mut last_on_lane: HashMap<usize, u64> = HashMap::new();
        let mut dispatch: HashMap<u64, (u64, u64)> = HashMap::new();
        for e in events {
            match &e.kind {
                SchedEventKind::TaskBegin { .. } => {
                    open.entry(e.worker).or_default().push(e.clone());
                }
                SchedEventKind::TaskEnd { span } => {
                    let begin = open.get_mut(&e.worker).and_then(|v| v.pop());
                    let (begin_us, label) = match begin {
                        Some(b) => (b.ts_us, b.label),
                        // Begin lost to ring pressure: degrade to a
                        // zero-length span at the end timestamp.
                        None => (e.ts_us, e.label.clone()),
                    };
                    let s = TaskSpan {
                        node: span.node,
                        parent: span.parent,
                        run: span.run,
                        worker: e.worker,
                        label: label.to_string(),
                        begin_us,
                        end_us: e.ts_us,
                    };
                    task_duration.observe(s.duration_us());
                    spans.push(s);
                }
                SchedEventKind::Steal { .. } => {
                    if let Some(&prev) = last_on_lane.get(&e.worker) {
                        steal_latency.observe(e.ts_us.saturating_sub(prev));
                    }
                }
                SchedEventKind::TopologyDispatch { info, .. } => {
                    dispatch.insert(info.run, (info.topology, info.iteration));
                }
                _ => {}
            }
            last_on_lane.insert(e.worker, e.ts_us);
        }

        // --- Group spans into iterations by run id. ----------------------
        let mut runs: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, s) in spans.iter().enumerate() {
            runs.entry(s.run).or_default().push(i);
        }
        let mut run_ids: Vec<u64> = runs.keys().copied().collect();
        run_ids.sort_unstable();

        let mut iterations = Vec::with_capacity(run_ids.len());
        let mut critical_edges = Vec::new();
        let mut critical_count: HashMap<u64, u64> = HashMap::new();
        for run in run_ids {
            let members = &runs[&run];
            let analysis = analyze_iteration(&spans, members, &by_id, &preds, num_workers);
            for &id in &analysis.critical_nodes {
                *critical_count.entry(id).or_insert(0) += 1;
            }
            critical_edges = analysis
                .critical_nodes
                .windows(2)
                .map(|w| (w[0], w[1]))
                .collect();
            let (topology, iteration) = dispatch.get(&run).copied().unwrap_or((0, 0));
            iterations.push(IterationProfile {
                run,
                topology,
                iteration,
                ..analysis
            });
        }

        // --- Cross-iteration per-node aggregates. ------------------------
        #[derive(Default)]
        struct Agg {
            identity: String,
            id: Option<u64>,
            count: u64,
            total_us: u64,
            max_us: u64,
            critical: u64,
        }
        let mut aggs: HashMap<String, Agg> = HashMap::new();
        for s in &spans {
            let is_static = by_id.get(&s.node).is_some_and(|n| n.static_index.is_some());
            let (key, identity, id) = if is_static {
                let n = by_id[&s.node];
                let identity = if n.label.is_empty() {
                    format!("task{}", n.static_index.unwrap_or(0))
                } else {
                    n.label.clone()
                };
                (format!("s{}", s.node), identity, Some(s.node))
            } else if !s.label.is_empty() {
                (format!("l{}", s.label), s.label.clone(), None)
            } else {
                ("d".to_string(), "(subflow)".to_string(), None)
            };
            let agg = aggs.entry(key).or_default();
            agg.identity = identity;
            agg.id = id;
            agg.count += 1;
            agg.total_us += s.duration_us();
            agg.max_us = agg.max_us.max(s.duration_us());
        }
        for (id, n) in critical_count {
            if let Some(agg) = aggs.get_mut(&format!("s{id}")) {
                agg.critical += n;
            }
        }
        let mut nodes: Vec<NodeProfile> = aggs
            .into_values()
            .map(|a| NodeProfile {
                identity: a.identity,
                id: a.id,
                count: a.count,
                total_us: a.total_us,
                mean_us: if a.count == 0 {
                    0.0
                } else {
                    a.total_us as f64 / a.count as f64
                },
                max_us: a.max_us,
                critical_appearances: a.critical,
            })
            .collect();
        nodes.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| a.identity.cmp(&b.identity))
        });

        // --- Whole-capture extent + utilization timelines. ---------------
        let begin_us = spans.iter().map(|s| s.begin_us).min().unwrap_or(0);
        let end_us = spans.iter().map(|s| s.end_us).max().unwrap_or(0);
        let wall_us = end_us.saturating_sub(begin_us);
        const BINS: usize = 64;
        let bin_us = (wall_us / BINS as u64).max(1);
        let nbins = (wall_us as usize).div_ceil(bin_us as usize).max(1);
        let mut busy = vec![vec![0u64; nbins]; num_workers];
        for s in &spans {
            if s.worker >= num_workers {
                continue;
            }
            // Spread the span's duration across the bins it overlaps.
            let mut t = s.begin_us;
            while t < s.end_us {
                let bin = ((t - begin_us) / bin_us) as usize;
                let bin_end = begin_us + (bin as u64 + 1) * bin_us;
                let until = s.end_us.min(bin_end);
                if let Some(b) = busy[s.worker].get_mut(bin.min(nbins - 1)) {
                    *b += until - t;
                }
                t = until;
            }
        }
        let utilization = busy
            .into_iter()
            .enumerate()
            .map(|(worker, bins)| WorkerTimeline {
                worker,
                busy: bins
                    .into_iter()
                    .map(|us| (us as f64 / bin_us as f64).min(1.0))
                    .collect(),
            })
            .collect();

        let total_work_us = iterations.iter().map(|i| i.work_us).sum();
        let n = iterations.len().max(1) as f64;
        let mean_span_us = iterations.iter().map(|i| i.span_us).sum::<u64>() as f64 / n;
        let mean_parallelism = iterations.iter().map(|i| i.parallelism).sum::<f64>() / n;

        ProfileReport {
            schema_version: PROFILE_SCHEMA_VERSION,
            num_workers,
            begin_us,
            end_us,
            bin_us,
            iterations,
            nodes,
            utilization,
            task_duration,
            steal_latency,
            total_work_us,
            mean_span_us,
            mean_parallelism,
            wall_us,
            dropped_events: dropped,
            critical_edges,
        }
    }

    /// Renders the report as schema-stable JSON (see
    /// [`PROFILE_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\n  \"schema_version\": {},\n  \"num_workers\": {},\n  \"wall_us\": {},\n  \"total_work_us\": {},\n  \"mean_span_us\": {:.3},\n  \"mean_parallelism\": {:.3},\n  \"dropped_events\": {},\n",
            self.schema_version,
            self.num_workers,
            self.wall_us,
            self.total_work_us,
            self.mean_span_us,
            self.mean_parallelism,
            self.dropped_events
        ));
        out.push_str("  \"iterations\": [\n");
        for (i, it) in self.iterations.iter().enumerate() {
            let path = it
                .critical_path
                .iter()
                .map(|p| format!("\"{}\"", escape_json(p)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"run\": {}, \"topology\": {}, \"iteration\": {}, \"tasks\": {}, \"work_us\": {}, \"span_us\": {}, \"wall_us\": {}, \"parallelism\": {:.3}, \"achieved_speedup\": {:.3}, \"brent_speedup\": {:.3}, \"critical_path\": [{}]}}{}\n",
                it.run,
                it.topology,
                it.iteration,
                it.tasks,
                it.work_us,
                it.span_us,
                it.wall_us,
                it.parallelism,
                it.achieved_speedup,
                it.brent_speedup,
                path,
                if i + 1 < self.iterations.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"identity\": \"{}\", \"count\": {}, \"total_us\": {}, \"mean_us\": {:.3}, \"max_us\": {}, \"critical_appearances\": {}}}{}\n",
                escape_json(&n.identity),
                n.count,
                n.total_us,
                n.mean_us,
                n.max_us,
                n.critical_appearances,
                if i + 1 < self.nodes.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"utilization\": {{\"begin_us\": {}, \"bin_us\": {}, \"workers\": [\n",
            self.begin_us, self.bin_us
        ));
        for (i, t) in self.utilization.iter().enumerate() {
            let bins = t
                .busy
                .iter()
                .map(|b| format!("{b:.3}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    [{}]{}\n",
                bins,
                if i + 1 < self.utilization.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]},\n  \"histograms\": {\n");
        out.push_str(&format!(
            "    \"task_duration_us\": {},\n    \"steal_latency_us\": {}\n  }}\n}}\n",
            histogram_json(&self.task_duration),
            histogram_json(&self.steal_latency)
        ));
        out
    }

    /// Renders the profiler's Prometheus families: task-duration and
    /// steal-latency histograms (`_bucket`/`_sum`/`_count`), per-task
    /// summary gauges (label values escaped per the exposition format),
    /// and per-iteration work/span/parallelism gauges.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.task_duration.render_into(
            &mut out,
            "rustflow_task_duration_us",
            "Distribution of task execution durations in microseconds.",
        );
        self.steal_latency.render_into(
            &mut out,
            "rustflow_steal_latency_us",
            "Distribution of steal latencies in microseconds.",
        );
        out.push_str("# HELP rustflow_task_total_us Total execution time per task.\n");
        out.push_str("# TYPE rustflow_task_total_us gauge\n");
        for n in &self.nodes {
            out.push_str(&format!(
                "rustflow_task_total_us{{task=\"{}\"}} {}\n",
                escape_label_value(&n.identity),
                n.total_us
            ));
        }
        out.push_str("# HELP rustflow_task_executions_total Executions per task.\n");
        out.push_str("# TYPE rustflow_task_executions_total counter\n");
        for n in &self.nodes {
            out.push_str(&format!(
                "rustflow_task_executions_total{{task=\"{}\"}} {}\n",
                escape_label_value(&n.identity),
                n.count
            ));
        }
        for (name, help, get) in [
            (
                "rustflow_iteration_work_us",
                "Work (sum of span durations) per iteration.",
                (|it: &IterationProfile| it.work_us as f64) as fn(&IterationProfile) -> f64,
            ),
            (
                "rustflow_iteration_span_us",
                "Critical-path length per iteration.",
                |it: &IterationProfile| it.span_us as f64,
            ),
            (
                "rustflow_iteration_parallelism",
                "Work/span parallelism per iteration.",
                |it: &IterationProfile| it.parallelism,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for it in &self.iterations {
                out.push_str(&format!(
                    "{name}{{topology=\"{}\",iteration=\"{}\"}} {:.3}\n",
                    it.topology,
                    it.iteration,
                    get(it)
                ));
            }
        }
        out
    }
}

fn histogram_json(h: &Histogram) -> String {
    let bounds = h
        .bounds()
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let counts = h
        .bucket_counts()
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"bounds_us\": [{}], \"counts\": [{}], \"sum_us\": {}, \"count\": {}}}",
        bounds,
        counts,
        h.sum(),
        h.count()
    )
}

/// Work/span analysis of one iteration's spans (`members` indexes into
/// `spans`). Returns an [`IterationProfile`] with `run`/`topology`/
/// `iteration` left zeroed (the caller fills them in).
fn analyze_iteration(
    spans: &[TaskSpan],
    members: &[usize],
    by_id: &HashMap<u64, &SnapshotNode>,
    preds: &HashMap<u64, Vec<u64>>,
    num_workers: usize,
) -> IterationProfile {
    // Topological order for the DP: sort by begin time. In any valid
    // schedule a dependency's source ended (hence began) before its target
    // began, so restricting edges to earlier-beginning spans keeps the
    // graph acyclic even under timestamp ties or clock anomalies.
    let mut order: Vec<usize> = members.to_vec();
    order.sort_by_key(|&i| (spans[i].begin_us, spans[i].end_us, spans[i].node));
    let pos: HashMap<u64, usize> = order
        .iter()
        .enumerate()
        .map(|(k, &i)| (spans[i].node, k))
        .collect();

    let executed: HashSet<u64> = order.iter().map(|&i| spans[i].node).collect();
    // Dependency edges of span k (indexes into `order`), from:
    //   1. frozen structure: snapshot predecessors that executed;
    //   2. spawn edges: parent → child for subflow children;
    //   3. join edges: child → each executed successor of its parent
    //      (a joined parent's completion — and so its successors — waits
    //      for every child).
    let pred_positions = |k: usize| -> Vec<usize> {
        let s = &spans[order[k]];
        let mut out = Vec::new();
        let mut push = |id: u64| {
            if let Some(&p) = pos.get(&id) {
                if p < k {
                    out.push(p);
                }
            }
        };
        if let Some(ps) = preds.get(&s.node) {
            for &p in ps {
                if executed.contains(&p) {
                    push(p);
                }
            }
        }
        if s.parent != 0 {
            push(s.parent);
        }
        // Join edges land on the *successor*: for span s with parent q,
        // successors of q executed in this run depend on s. Handled from
        // the successor's side: nothing to do here — see below.
        out
    };
    // Join edges are easier gathered per successor: for each span v whose
    // structural predecessors include a parent-with-children q, every
    // child of q also precedes v. Build the children index first.
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    for &i in &order {
        let s = &spans[i];
        if s.parent != 0 {
            children.entry(s.parent).or_default().push(pos[&s.node]);
        }
    }

    let n = order.len();
    let mut cp = vec![0u64; n];
    let mut from: Vec<Option<usize>> = vec![None; n];
    for k in 0..n {
        let mut best: Option<(u64, usize)> = None;
        let mut consider = |p: usize| {
            if p < k {
                match best {
                    Some((w, _)) if w >= cp[p] => {}
                    _ => best = Some((cp[p], p)),
                }
            }
        };
        for p in pred_positions(k) {
            consider(p);
        }
        // Join edges: if a structural predecessor spawned joined children,
        // they all precede this span too.
        if let Some(ps) = preds.get(&spans[order[k]].node) {
            for &q in ps {
                if let Some(kids) = children.get(&q) {
                    for &p in kids {
                        consider(p);
                    }
                }
            }
        }
        let dur = spans[order[k]].duration_us();
        match best {
            Some((w, p)) => {
                cp[k] = w + dur;
                from[k] = Some(p);
            }
            None => cp[k] = dur,
        }
    }

    let work_us: u64 = order.iter().map(|&i| spans[i].duration_us()).sum();
    let begin = order.iter().map(|&i| spans[i].begin_us).min().unwrap_or(0);
    let end = order.iter().map(|&i| spans[i].end_us).max().unwrap_or(0);
    let wall_us = end.saturating_sub(begin);
    let (span_us, tail) = cp
        .iter()
        .copied()
        .zip(0..)
        .max_by_key(|&(w, _)| w)
        .unwrap_or((0, 0));

    // Backtrack the critical path.
    let mut critical_nodes = Vec::new();
    let mut cur = (n > 0).then_some(tail);
    while let Some(k) = cur {
        critical_nodes.push(spans[order[k]].node);
        cur = from[k];
    }
    critical_nodes.reverse();
    let critical_path = critical_nodes
        .iter()
        .map(|id| {
            let k = pos[id];
            let s = &spans[order[k]];
            if !s.label.is_empty() {
                s.label.clone()
            } else if let Some(n) = by_id.get(id) {
                match n.static_index {
                    Some(i) => format!("task{i}"),
                    None => "(subflow)".to_string(),
                }
            } else {
                "(subflow)".to_string()
            }
        })
        .collect();

    let parallelism = if span_us == 0 {
        0.0
    } else {
        work_us as f64 / span_us as f64
    };
    let achieved_speedup = if wall_us == 0 {
        0.0
    } else {
        work_us as f64 / wall_us as f64
    };
    IterationProfile {
        run: 0,
        topology: 0,
        iteration: 0,
        tasks: n,
        work_us,
        span_us,
        wall_us,
        parallelism,
        achieved_speedup,
        brent_speedup: parallelism.min(num_workers as f64),
        critical_path,
        critical_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TaskLabel;
    use crate::observer::TaskSpanInfo;

    fn begin(worker: usize, ts: u64, node: u64, parent: u64, run: u64, label: &str) -> SchedEvent {
        SchedEvent {
            worker,
            ts_us: ts,
            label: TaskLabel::new(label),
            kind: SchedEventKind::TaskBegin {
                span: TaskSpanInfo { node, parent, run },
            },
        }
    }

    fn end(worker: usize, ts: u64, node: u64, parent: u64, run: u64, label: &str) -> SchedEvent {
        SchedEvent {
            worker,
            ts_us: ts,
            label: TaskLabel::new(label),
            kind: SchedEventKind::TaskEnd {
                span: TaskSpanInfo { node, parent, run },
            },
        }
    }

    fn snapshot(edges: &[(u64, u64)], nodes: &[(u64, &str)]) -> GraphSnapshot {
        GraphSnapshot {
            nodes: nodes
                .iter()
                .enumerate()
                .map(|(i, &(id, label))| SnapshotNode {
                    id,
                    label: label.to_string(),
                    successors: edges
                        .iter()
                        .filter(|&&(f, _)| f == id)
                        .map(|&(_, t)| t)
                        .collect(),
                    static_index: Some(i),
                })
                .collect(),
        }
    }

    #[test]
    fn empty_events_give_empty_report() {
        let r = ProfileReport::build(&GraphSnapshot::default(), &[], 4, 0);
        assert!(r.iterations.is_empty());
        assert!(r.nodes.is_empty());
        assert_eq!(r.total_work_us, 0);
        let json = r.to_json();
        assert!(json.contains("\"schema_version\": 1"));
    }

    #[test]
    fn single_chain_span_equals_work() {
        // a(10) -> b(20): work 30, span 30, parallelism 1.
        let snap = snapshot(&[(1, 2)], &[(1, "a"), (2, "b")]);
        let events = vec![
            begin(0, 0, 1, 0, 7, "a"),
            end(0, 10, 1, 0, 7, "a"),
            begin(0, 10, 2, 0, 7, "b"),
            end(0, 30, 2, 0, 7, "b"),
        ];
        let r = ProfileReport::build(&snap, &events, 2, 0);
        assert_eq!(r.iterations.len(), 1);
        let it = &r.iterations[0];
        assert_eq!(it.work_us, 30);
        assert_eq!(it.span_us, 30);
        assert_eq!(it.critical_path, vec!["a", "b"]);
        assert!((it.parallelism - 1.0).abs() < 1e-9);
    }
}
