//! A dispatched, **reusable** task dependency graph (§III-C of the paper,
//! extended with the run-based execution model of Taskflow v2).
//!
//! Dispatching moves the taskflow's present graph into a [`Topology`]. The
//! paper's model is one-shot; here a topology survives its first execution
//! and can be *re-armed* and executed again — this is what backs
//! `Taskflow::run` / `run_n` / `run_until`. The split works like this:
//!
//! * The graph **structure** (nodes, edges, callables, static in-degrees)
//!   is frozen when the topology is created and validated exactly once;
//!   the sanitizer's verdict is cached in [`Topology::fatal`].
//! * The per-run **state** (join counters, subflow subgraphs, the `alive`
//!   countdown) is reset by [`Topology::begin_iteration`] before every
//!   iteration.
//!
//! Execution requests arrive as [`PendingRun`] *batches* (run once, run
//! `n` times, run until a predicate holds), queued FIFO. At most one batch
//! is active at a time; the state machine in [`Topology::advance`] is
//! driven by whoever holds the *driver* role — the thread that claimed the
//! idle topology on submission, or the worker whose final `alive`
//! decrement finished an iteration. The owning
//! [`Taskflow`](crate::Taskflow) keeps every topology it created in a list
//! (so task handles and the executor's raw node pointers stay valid), and
//! the executor additionally holds a keep-alive `Arc` while batches run.

use crate::error::{panic_message, FailurePolicy, RunError, RunResult, TaskPanic};
use crate::future::Promise;
use crate::graph::Graph;
use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Mutex};
use crate::sync_cell::SyncCell;
use crate::validate;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

/// Process-wide iteration id source; a fresh id is drawn for every
/// iteration so observer hooks and traces can tell runs of the same
/// topology apart.
static NEXT_TOPOLOGY_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Process-wide *stable* topology id source: one id per frozen graph,
/// shared by every iteration — what observers roll per-topology counters
/// up by ([`crate::observer::IterationInfo::topology`]).
static NEXT_TOPOLOGY_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// No batch executing; the graph is quiescent and the next submission
/// claims the driver role.
const IDLE: usize = 0;
/// A batch is executing (or between iterations under its driver).
const RUNNING: usize = 1;

/// How long a submitted batch keeps re-running the topology.
pub(crate) enum RunCondition {
    /// Run exactly this many more iterations.
    Count(u64),
    /// Run until the predicate returns `true`. Checked before every
    /// iteration, so a predicate that is already `true` runs nothing —
    /// `Count(n)` and a decrementing predicate agree on semantics.
    Until(Box<dyn FnMut() -> bool + Send + 'static>),
}

/// One queued execution request: a stop condition plus the promise that
/// resolves when the batch finishes (or fails).
pub(crate) struct PendingRun {
    pub(crate) cond: RunCondition,
    pub(crate) promise: Promise<RunResult>,
}

/// What the driver must do after [`Topology::advance`] returns.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Advance {
    /// Re-arm and publish the sources ([`Topology::begin_iteration`]).
    RunIteration,
    /// No work left; the topology went idle — drop the keep-alive.
    Idle,
}

/// Lifecycle timestamps of the tenant stint currently driving a topology,
/// in [`crate::clock::origin`]-domain microseconds (always nonzero once
/// stamped; `0` means "not stamped"). Written by the claiming dispatch
/// before the first iteration publishes (driver-exclusive at that point),
/// read by the driver at finalization and by observer hooks, so relaxed
/// atomics suffice — cross-thread visibility rides the injector's Release
/// publish and the iteration's `alive` AcqRel chain.
pub(crate) struct RunStamps {
    /// When the submission entered the tenant queue.
    pub(crate) submit_us: AtomicU64,
    /// When the fair-queue pump popped it for dispatch.
    pub(crate) admitted_us: AtomicU64,
    /// When the claiming dispatch handed it to the executor.
    pub(crate) dispatched_us: AtomicU64,
    /// When the first task of the stint started executing. Sentinel
    /// protocol: `u64::MAX` = disarmed (no recording), `0` = armed and
    /// awaiting the first task (workers CAS it exactly once), anything
    /// else = stamped.
    pub(crate) first_start_us: AtomicU64,
}

impl RunStamps {
    fn new() -> RunStamps {
        RunStamps {
            submit_us: AtomicU64::new(0),
            admitted_us: AtomicU64::new(0),
            dispatched_us: AtomicU64::new(0),
            first_start_us: AtomicU64::new(u64::MAX),
        }
    }

    /// Marks the upcoming stint as unstamped (untenanted claims, or the
    /// latency pipeline disabled): recording and the first-task latch
    /// both become no-ops.
    pub(crate) fn clear(&self) {
        self.submit_us.store(0, Ordering::Relaxed);
        self.first_start_us.store(u64::MAX, Ordering::Relaxed);
    }

    /// Stamps the queue-side lifecycle and arms the first-task latch.
    /// Must only be called by the dispatch that claimed the driver role,
    /// before the first iteration publishes.
    pub(crate) fn arm(&self, submit_us: u64, admitted_us: u64, dispatched_us: u64) {
        self.submit_us.store(submit_us, Ordering::Relaxed);
        self.admitted_us.store(admitted_us, Ordering::Relaxed);
        self.dispatched_us.store(dispatched_us, Ordering::Relaxed);
        self.first_start_us.store(0, Ordering::Relaxed);
    }

    /// First-task latch: one relaxed load per task in steady state (the
    /// stint is armed only between a tenant dispatch and its first task),
    /// a single CAS for the task that wins the race.
    #[inline]
    pub(crate) fn note_first_start(&self) {
        if self.first_start_us.load(Ordering::Relaxed) == 0 {
            let now = crate::clock::now_us().max(1);
            let _ =
                self.first_start_us
                    .compare_exchange(0, now, Ordering::Relaxed, Ordering::Relaxed);
        }
    }

    /// A plain copy of the four stamps (relaxed loads).
    pub(crate) fn snapshot(&self) -> StampSnapshot {
        StampSnapshot {
            submit: self.submit_us.load(Ordering::Relaxed),
            admitted: self.admitted_us.load(Ordering::Relaxed),
            dispatched: self.dispatched_us.load(Ordering::Relaxed),
            first_start: self.first_start_us.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`RunStamps`], taken by the finalizing driver
/// *before* `advance` can transition the topology to idle (after which a
/// concurrent resubmission may claim it and overwrite the stamps).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StampSnapshot {
    pub(crate) submit: u64,
    pub(crate) admitted: u64,
    pub(crate) dispatched: u64,
    pub(crate) first_start: u64,
}

pub(crate) struct Topology {
    /// Stable id of this topology, shared by every iteration.
    uid: u64,
    /// Id of the currently (or most recently) executing iteration; fresh
    /// per iteration, exposed through observer hooks.
    run_id: AtomicU64,
    /// Total iterations completed across all batches.
    iterations: AtomicU64,
    /// The graph being executed. Workers navigate it through raw pointers;
    /// the box-per-node layout keeps addresses stable.
    pub(crate) graph: SyncCell<Graph>,
    /// Source nodes (static in-degree zero), cached once at construction —
    /// the structure never changes, so neither do the sources.
    sources: Vec<usize>,
    /// Number of nodes that have not yet completed in the current
    /// iteration, including nodes spawned dynamically into subflows. The
    /// zero-crossing ends the iteration.
    pub(crate) alive: AtomicUsize,
    /// [`IDLE`] or [`RUNNING`]; transitions are serialized by the
    /// `pending` mutex.
    state: AtomicUsize,
    /// The batch currently driving iterations; driver-exclusive.
    current: SyncCell<Option<PendingRun>>,
    /// Batches waiting their turn, FIFO.
    pending: Mutex<VecDeque<PendingRun>>,
    /// First error observed while running an iteration (kept, later ones
    /// dropped); taken by the driver when the iteration ends.
    pub(crate) error: Mutex<Option<RunError>>,
    /// Cooperative cancellation flag. Once set, workers *skip* every node
    /// they would otherwise start (completion bookkeeping still runs, so
    /// the iteration drains promptly) and in-flight tasks can poll it via
    /// [`crate::this_task::is_cancelled`]. Cleared by the driver when the
    /// topology transitions to idle.
    cancelled: AtomicBool,
    /// How a task panic affects the rest of the graph; frozen when the
    /// graph is frozen.
    policy: FailurePolicy,
    /// Cached pre-dispatch sanitizer verdict: `Some` iff the structure can
    /// never complete (cycle / self-edge). Computed once at construction —
    /// submissions fail fast without re-walking the graph.
    fatal: Option<RunError>,
    /// Id of the tenant whose dispatch currently drives this topology
    /// (`0` = untenanted). Written by the dispatch that claims the driver
    /// role; read by observer hooks for tenant-labelled traces.
    tenant: AtomicU64,
    /// Lifecycle timestamps of the current tenant stint, feeding the
    /// per-tenant latency histograms and the schema-v5 `submit_us` field
    /// of [`crate::observer::IterationInfo`].
    pub(crate) stamps: RunStamps,
}

// SAFETY: interior fields follow the sync_cell phase discipline (the
// `current` cell is driver-exclusive); atomics and mutexes are inherently
// thread-safe; Graph is Send + Sync under the same discipline.
unsafe impl Send for Topology {}
unsafe impl Sync for Topology {}

impl Topology {
    /// Freezes `graph` into a reusable topology: runs the sanitizer once,
    /// caches its verdict, and caches the source set. The failure policy
    /// is frozen alongside the structure.
    pub(crate) fn new(mut graph: Graph, policy: FailurePolicy) -> std::sync::Arc<Topology> {
        // SAFETY: the graph was just moved here; no other thread sees it.
        let diagnostics = unsafe { validate::validate_graph(&graph) };
        let mut fatal = diagnostics
            .iter()
            .any(crate::GraphDiagnostic::is_fatal)
            .then(|| RunError::InvalidGraph(diagnostics.clone()));
        let mut sources = Vec::new();
        for node in graph.nodes.iter_mut() {
            // SAFETY: exclusive access (see above); in-degree is frozen.
            if unsafe { *node.structure.in_degree.get() } == 0 {
                let p: *mut crate::graph::Node = &mut **node;
                sources.push(p as usize);
            }
        }
        if sources.is_empty() && !graph.is_empty() && fatal.is_none() {
            // Every node has a predecessor, so the graph is cyclic and
            // could never make progress. The cycle detector above flags
            // this, but stay defensive: publishing no sources while
            // arming `alive` would wedge every waiter forever.
            fatal = Some(RunError::InvalidGraph(diagnostics));
        }
        std::sync::Arc::new(Topology {
            uid: NEXT_TOPOLOGY_UID.fetch_add(1, Ordering::Relaxed),
            run_id: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            graph: SyncCell::new(graph),
            sources,
            alive: AtomicUsize::new(0),
            state: AtomicUsize::new(IDLE),
            current: SyncCell::new(None),
            pending: Mutex::new(VecDeque::new()),
            error: Mutex::new(None),
            cancelled: AtomicBool::new(false),
            policy,
            fatal,
            tenant: AtomicU64::new(0),
            stamps: RunStamps::new(),
        })
    }

    /// The failure policy frozen into this topology.
    pub(crate) fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Requests cooperative cancellation of everything this topology has
    /// in flight or queued. Returns `true` if a run was actually
    /// cancelled, `false` if the topology was already idle (cancel after
    /// finalize is a no-op).
    ///
    /// The pending-queue mutex serializes the decision against the
    /// driver's idle transition in [`Topology::advance`]: either the
    /// driver has already gone idle (we return `false`) or it is still
    /// running and must pass through the drain point below, where it will
    /// observe the flag.
    ///
    /// Ordering matters: the `Cancelled` error is recorded **before** the
    /// flag is published. A worker that observes the flag and skips a node
    /// therefore knows the error is already recorded, so the driver that
    /// finalizes after the skip can never resolve the batch `Ok(())`. The
    /// `cancel_publish` weaken point inverts the two writes so the
    /// interleaving model can demonstrate exactly that lost-cancel
    /// outcome (a skipped run reported as success).
    pub(crate) fn cancel(&self) -> bool {
        // Seeded lockdep bug: holding `error` while taking `pending`
        // inverts the crate-wide order (`record_error` below and the
        // drain in `advance_inner` both take `error` under `pending`),
        // closing an error → pending → error cycle in the lock graph.
        // Dropped before `record_error` re-locks it — the cycle is an
        // *order* violation long before any schedule actually deadlocks.
        #[cfg(rustflow_weaken = "seed_lock_cycle")]
        let cycle_probe = self.error.lock();
        let _q = self.pending.lock();
        #[cfg(rustflow_weaken = "seed_lock_cycle")]
        drop(cycle_probe);
        // ORDERING: Acquire pairs with the Release IDLE stores in
        // `advance_inner`, so a cancel that sees a live run also sees
        // that run's queue state under the lock.
        if self.state.load(Ordering::Acquire) == IDLE {
            return false;
        }
        // ORDERING: Release on `cancelled` *after* `record_error` — a
        // worker that Acquire-loads the flag must find the Cancelled
        // error already recorded, or a skipped batch could resolve Ok.
        // The `cancel_publish` weaken inverts the two writes to seed
        // exactly that bug for the sanitizer.
        #[cfg(rustflow_weaken = "cancel_publish")]
        self.cancelled.store(true, Ordering::Release);
        self.record_error(RunError::Cancelled);
        #[cfg(not(rustflow_weaken = "cancel_publish"))]
        // ORDERING: Release, record-then-publish — see above.
        self.cancelled.store(true, Ordering::Release);
        true
    }

    /// Cancels the rest of the graph from *inside* a run — the
    /// [`FailurePolicy::FailFast`] reaction to a panic. The panic was
    /// already recorded (first error wins), so only the flag needs
    /// publishing; the failed batch still resolves with the panic while
    /// queued batches drain as [`RunError::Cancelled`].
    pub(crate) fn cancel_internal(&self) {
        // ORDERING: Release — the recorded panic (under the error lock)
        // happens-before any worker that sees the flag and skips.
        self.cancelled.store(true, Ordering::Release);
    }

    /// `true` once cancellation has been requested for the current run.
    pub(crate) fn is_cancelled(&self) -> bool {
        // ORDERING: Acquire pairs with the Release stores in `cancel` /
        // `cancel_internal`: a worker that observes the flag also
        // observes the error recorded before it.
        self.cancelled.load(Ordering::Acquire)
    }

    /// The cached sanitizer verdict; `Some` means the topology must never
    /// reach the executor.
    pub(crate) fn fatal(&self) -> Option<&RunError> {
        self.fatal.as_ref()
    }

    /// Id of the current iteration (as shown in observer hooks).
    pub(crate) fn run_id(&self) -> u64 {
        self.run_id.load(Ordering::Relaxed)
    }

    /// Identity of the in-flight (or most recent) iteration, as reported
    /// to observers. `iteration` is the count of *completed* iterations,
    /// which equals the 0-based index of the one in flight: the counter is
    /// incremented only after the iteration's `on_topology_stop` fired.
    pub(crate) fn iteration_info(&self) -> crate::observer::IterationInfo {
        crate::observer::IterationInfo {
            run: self.run_id(),
            topology: self.uid,
            iteration: self.iterations(),
            tenant: self.tenant.load(Ordering::Relaxed),
            submit_us: self.stamps.submit_us.load(Ordering::Relaxed),
        }
    }

    /// Tags this topology with the tenant driving its current stint
    /// (`0` = untenanted). Called by the dispatch that claimed the driver
    /// role, before the first iteration publishes.
    pub(crate) fn set_tenant(&self, tenant: u64) {
        self.tenant.store(tenant, Ordering::Relaxed);
    }

    /// Tenant driving the current stint (`0` = untenanted); see
    /// [`Topology::set_tenant`].
    pub(crate) fn tenant_id(&self) -> u64 {
        self.tenant.load(Ordering::Relaxed)
    }

    /// Total iterations completed so far.
    pub(crate) fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Stable id of this topology (matches
    /// [`IterationInfo::topology`](crate::observer::IterationInfo)).
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Nodes of the current iteration that have not completed yet
    /// (advisory; racy against workers counting down).
    pub(crate) fn alive_count(&self) -> usize {
        self.alive.load(Ordering::Relaxed)
    }

    /// Batches queued behind the currently executing one (advisory).
    pub(crate) fn pending_batches(&self) -> usize {
        self.pending.lock().len()
    }

    /// `true` while an error (panic, cancellation, invalid subflow) is
    /// recorded for the in-flight iteration and not yet taken by the
    /// driver (advisory).
    pub(crate) fn has_error(&self) -> bool {
        self.error.lock().is_some()
    }

    /// `true` while the recorded error is a genuine task failure (panic)
    /// rather than a cancellation — the circuit breaker's signal. Read by
    /// the driver before `advance` consumes the error.
    pub(crate) fn has_panic(&self) -> bool {
        matches!(&*self.error.lock(), Some(RunError::Panic(_)))
    }

    /// `true` when no batch is executing or queued: the graph is quiescent
    /// and may be inspected (DOT dumps) or reclaimed (`gc`).
    pub(crate) fn is_settled(&self) -> bool {
        // ORDERING: Acquire pairs with the driver's Release IDLE store,
        // so a settled topology's final graph state is visible.
        self.state.load(Ordering::Acquire) == IDLE
    }

    /// Queues `batch` FIFO. Returns `true` when the caller claimed the
    /// idle topology and is now its driver: it must call
    /// [`Topology::advance`]`(false)` and act on the outcome.
    ///
    /// The queue mutex serializes this claim against the driver's
    /// own idle transition in `advance`, so a batch is never lost between
    /// "driver saw an empty queue" and "driver went idle".
    pub(crate) fn enqueue(&self, batch: PendingRun) -> bool {
        let mut q = self.pending.lock();
        q.push_back(batch);
        // ORDERING: AcqRel — the Acquire half sees the outgoing driver's
        // final writes behind its Release IDLE store; the Release half
        // publishes this batch to whoever later claims the topology.
        self.state
            .compare_exchange(IDLE, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Drives the batch state machine. Called with
    /// `iteration_finished == false` right after claiming the topology in
    /// [`Topology::enqueue`], and with `true` from the executor's finalize
    /// path when an iteration's `alive` count hit zero.
    ///
    /// Resolves the promises of batches that end here (last iteration
    /// done, iteration error, zero-count, predicate already true), pops
    /// the next pending batch FIFO, and either asks the driver to run an
    /// iteration or transitions the topology to idle.
    ///
    /// # Safety
    /// Caller must hold the driver role: it claimed the topology via
    /// `enqueue`, or it performed the final `alive` decrement of an
    /// iteration. At most one driver exists at a time.
    pub(crate) unsafe fn advance(&self, iteration_finished: bool) -> Advance {
        // Promises resolve only *after* the next state is decided: a
        // waiter that observes a resolved future may immediately check
        // `is_settled` (gc, dumps) or resubmit, so the idle transition
        // must never lag behind the resolution it caused.
        let mut resolved: Vec<(PendingRun, RunResult)> = Vec::new();
        // SAFETY: forwarded driver-role contract.
        let action = unsafe { self.advance_inner(iteration_finished, &mut resolved) };
        for (batch, result) in resolved {
            batch.promise.set(result);
        }
        action
    }

    /// The state machine body of [`Topology::advance`]; ended batches are
    /// pushed onto `resolved` instead of being resolved in place.
    ///
    /// # Safety
    /// Same contract as [`Topology::advance`].
    unsafe fn advance_inner(
        &self,
        iteration_finished: bool,
        resolved: &mut Vec<(PendingRun, RunResult)>,
    ) -> Advance {
        if iteration_finished {
            self.iterations.fetch_add(1, Ordering::Relaxed);
            let err = self.error.lock().take();
            // SAFETY: driver-exclusive cell per this function's contract.
            let cur = unsafe { self.current.get_mut() };
            let batch = cur.as_mut().expect("iteration finished without a batch");
            let outcome: Option<RunResult> = if let Some(e) = err {
                // An error in iteration k resolves the whole batch with
                // that iteration's error; remaining iterations are
                // abandoned (reference `run_n` semantics).
                Some(Err(e))
            } else {
                match &mut batch.cond {
                    RunCondition::Count(n) => {
                        *n -= 1;
                        (*n == 0).then_some(Ok(()))
                    }
                    RunCondition::Until(pred) => match catch_unwind(AssertUnwindSafe(pred)) {
                        Ok(true) => Some(Ok(())),
                        Ok(false) => None,
                        Err(payload) => {
                            if crate::sync::is_model_abort(payload.as_ref()) {
                                // Engine-internal unwind: never a
                                // predicate failure; rethrow.
                                std::panic::resume_unwind(payload);
                            }
                            Some(Err(predicate_panic(&*payload, self.iterations())))
                        }
                    },
                }
            };
            match outcome {
                None => return Advance::RunIteration,
                Some(result) => {
                    let batch = cur.take().expect("checked above");
                    resolved.push((batch, result));
                }
            }
        }
        // The current batch (if any) just ended: pop the next one FIFO.
        // Batches that need no iteration resolve immediately and the loop
        // keeps popping.
        loop {
            let mut next = {
                let mut q = self.pending.lock();
                // ORDERING: Acquire pairs with `cancel`'s Release store,
                // making the recorded Cancelled error visible to the
                // drain below.
                if self.cancelled.load(Ordering::Acquire) {
                    // Cancellation drains the whole queue: every batch that
                    // never got to run resolves `Cancelled`, the flag is
                    // reset so a later submission starts clean, and the
                    // topology goes idle. Holding the queue lock keeps
                    // this atomic with respect to `cancel` (which checks
                    // IDLE under the same lock) and `enqueue`.
                    while let Some(b) = q.pop_front() {
                        resolved.push((b, Err(RunError::Cancelled)));
                    }
                    // A cancel that raced in *after* this call's error take
                    // (its batch already resolved) left `Cancelled` behind;
                    // clear it so the next submission starts clean. Lock
                    // order pending → error matches `cancel`.
                    let _ = self.error.lock().take();
                    // ORDERING: Release pair — the drained queue and the
                    // cleared error are published before the flag reset
                    // and the IDLE store that lets a new run claim us.
                    self.cancelled.store(false, Ordering::Release);
                    self.state.store(IDLE, Ordering::Release);
                    return Advance::Idle;
                }
                match q.pop_front() {
                    Some(b) => b,
                    None => {
                        // Going idle must happen under the queue lock so a
                        // concurrent `enqueue` either hands us its batch
                        // (pushed before our pop) or claims the driver
                        // role itself (CAS after our store).
                        // ORDERING: Release publishes the finished run's
                        // graph state to `enqueue`'s AcqRel CAS and to
                        // `is_settled`'s Acquire load.
                        self.state.store(IDLE, Ordering::Release);
                        return Advance::Idle;
                    }
                }
            };
            let outcome: Option<RunResult> = match &mut next.cond {
                RunCondition::Count(0) => Some(Ok(())),
                RunCondition::Count(_) => None,
                RunCondition::Until(pred) => match catch_unwind(AssertUnwindSafe(pred)) {
                    Ok(true) => Some(Ok(())),
                    Ok(false) => None,
                    Err(payload) => {
                        if crate::sync::is_model_abort(payload.as_ref()) {
                            // See the matching arm in the finished branch.
                            std::panic::resume_unwind(payload);
                        }
                        Some(Err(predicate_panic(&*payload, self.iterations())))
                    }
                },
            };
            match outcome {
                Some(result) => resolved.push((next, result)),
                None => {
                    // SAFETY: driver-exclusive cell.
                    unsafe { *self.current.get_mut() = Some(next) };
                    return Advance::RunIteration;
                }
            }
        }
    }

    /// Re-arms every node for the next iteration, then hands the cached
    /// source set to `publish` (which makes the sources visible to workers
    /// and wakes them).
    ///
    /// The re-arm **must complete before any source is published**: a
    /// woken thief may execute a source immediately and count down a
    /// successor's join counter and the `alive` total — observing
    /// last-iteration values would lose the successor or underflow
    /// `alive`, wedging the run. The `rearm_publish` weaken point inverts
    /// the order so the interleaving model can demonstrate exactly that
    /// failure.
    ///
    /// # Safety
    /// Caller must hold the driver role and the topology must be
    /// quiescent (no iteration in flight).
    pub(crate) unsafe fn begin_iteration(&self, publish: impl FnOnce(&[usize])) {
        #[cfg(rustflow_weaken = "rearm_publish")]
        publish(&self.sources);
        self.run_id.store(
            NEXT_TOPOLOGY_ID.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        let tp: *const Topology = self;
        // SAFETY: quiescent per the caller's contract — the driver has
        // exclusive access to every node until the sources are published.
        unsafe {
            let g = self.graph.get_mut();
            self.alive.store(g.len(), Ordering::Relaxed);
            for node in g.nodes.iter_mut() {
                node.rearm(tp, std::ptr::null_mut());
            }
        }
        #[cfg(not(rustflow_weaken = "rearm_publish"))]
        publish(&self.sources);
    }

    /// Records the first panic; later errors are ignored.
    pub(crate) fn record_panic(&self, panic: TaskPanic) {
        self.record_error(RunError::Panic(panic));
    }

    /// Records the first error; later ones are ignored.
    pub(crate) fn record_error(&self, error: RunError) {
        let mut guard = self.error.lock();
        if guard.is_none() {
            *guard = Some(error);
        }
    }

    /// Number of top-level nodes (excludes dynamically spawned subflows);
    /// reported to observers when an iteration starts.
    pub(crate) fn num_static_nodes(&self) -> usize {
        // SAFETY: the node Vec's length is frozen at construction.
        unsafe { self.graph.get().len() }
    }
}

fn predicate_panic(payload: &(dyn std::any::Any + Send), iteration: u64) -> RunError {
    RunError::Panic(
        TaskPanic::new("run_until predicate", panic_message(payload)).with_iteration(iteration),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::promise_pair;
    use crate::graph::Work;

    fn batch(cond: RunCondition) -> (PendingRun, crate::future::SharedFuture<RunResult>) {
        let (promise, future) = promise_pair();
        (PendingRun { cond, promise }, future)
    }

    fn topo_of(graph: Graph) -> std::sync::Arc<Topology> {
        Topology::new(graph, FailurePolicy::ContinueAll)
    }

    #[test]
    fn record_panic_keeps_first() {
        let topo = topo_of(Graph::new());
        topo.record_panic(TaskPanic::new("a", "first"));
        topo.record_panic(TaskPanic::new("b", "second"));
        assert_eq!(
            topo.error
                .lock()
                .as_ref()
                .unwrap()
                .as_panic()
                .unwrap()
                .message,
            "first"
        );
    }

    #[test]
    fn sanitize_verdict_cached_at_construction() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        unsafe {
            (*a).structure.successors.get_mut().push(b);
            *(*b).structure.in_degree.get_mut() += 1;
            (*b).structure.successors.get_mut().push(a);
            *(*a).structure.in_degree.get_mut() += 1;
        }
        let topo = topo_of(g);
        assert!(matches!(topo.fatal(), Some(RunError::InvalidGraph(_))));
    }

    #[test]
    fn count_batch_runs_and_settles() {
        let mut g = Graph::new();
        g.emplace(Work::Empty);
        let topo = topo_of(g);
        assert!(topo.fatal().is_none());
        let (b, future) = batch(RunCondition::Count(2));
        assert!(topo.enqueue(b));
        assert!(!topo.is_settled());
        unsafe {
            assert_eq!(topo.advance(false), Advance::RunIteration);
            let mut published = 0;
            topo.begin_iteration(|s| published = s.len());
            assert_eq!(published, 1);
            // First iteration "completes".
            assert_eq!(topo.advance(true), Advance::RunIteration);
            assert!(!future.is_ready());
            topo.begin_iteration(|_| {});
            // Second (last) iteration completes: batch resolves, idle.
            assert_eq!(topo.advance(true), Advance::Idle);
        }
        assert!(future.get().is_ok());
        assert_eq!(topo.iterations(), 2);
        assert!(topo.is_settled());
    }

    #[test]
    fn zero_count_batch_resolves_without_running() {
        let mut g = Graph::new();
        g.emplace(Work::Empty);
        let topo = topo_of(g);
        let (b, future) = batch(RunCondition::Count(0));
        assert!(topo.enqueue(b));
        unsafe {
            assert_eq!(topo.advance(false), Advance::Idle);
        }
        assert!(future.get().is_ok());
        assert_eq!(topo.iterations(), 0);
    }

    #[test]
    fn until_predicate_already_true_runs_nothing() {
        let mut g = Graph::new();
        g.emplace(Work::Empty);
        let topo = topo_of(g);
        let (b, future) = batch(RunCondition::Until(Box::new(|| true)));
        assert!(topo.enqueue(b));
        unsafe {
            assert_eq!(topo.advance(false), Advance::Idle);
        }
        assert!(future.get().is_ok());
        assert_eq!(topo.iterations(), 0);
    }

    #[test]
    fn iteration_error_stops_batch_with_that_error() {
        let mut g = Graph::new();
        g.emplace(Work::Empty);
        let topo = topo_of(g);
        let (b, future) = batch(RunCondition::Count(10));
        assert!(topo.enqueue(b));
        unsafe {
            assert_eq!(topo.advance(false), Advance::RunIteration);
            topo.begin_iteration(|_| {});
            topo.record_panic(TaskPanic::new("t", "boom"));
            assert_eq!(topo.advance(true), Advance::Idle);
        }
        let err = future.get().expect_err("batch must fail");
        assert_eq!(err.as_panic().unwrap().message, "boom");
        assert_eq!(topo.iterations(), 1);
    }

    #[test]
    fn batches_queue_fifo() {
        let mut g = Graph::new();
        g.emplace(Work::Empty);
        let topo = topo_of(g);
        let (b1, f1) = batch(RunCondition::Count(1));
        let (b2, f2) = batch(RunCondition::Count(1));
        assert!(topo.enqueue(b1));
        assert!(!topo.enqueue(b2)); // already running: queued, not claimed
        unsafe {
            assert_eq!(topo.advance(false), Advance::RunIteration);
            topo.begin_iteration(|_| {});
            // Batch 1 ends; batch 2 starts without going idle.
            assert_eq!(topo.advance(true), Advance::RunIteration);
            assert!(f1.is_ready());
            assert!(!f2.is_ready());
            topo.begin_iteration(|_| {});
            assert_eq!(topo.advance(true), Advance::Idle);
        }
        assert!(f2.get().is_ok());
    }

    #[test]
    fn run_ids_are_fresh_per_iteration() {
        let mut g = Graph::new();
        g.emplace(Work::Empty);
        let topo = topo_of(g);
        let (b, _f) = batch(RunCondition::Count(2));
        topo.enqueue(b);
        unsafe {
            topo.advance(false);
            topo.begin_iteration(|_| {});
            let first = topo.run_id();
            topo.advance(true);
            topo.begin_iteration(|_| {});
            assert_ne!(topo.run_id(), first);
            topo.advance(true);
        }
    }
}
