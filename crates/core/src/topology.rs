//! A dispatched task dependency graph (§III-C of the paper).
//!
//! Dispatching moves the taskflow's present graph into a [`Topology`],
//! which pairs the graph with the runtime metadata the executor needs: an
//! atomic count of not-yet-finished nodes and a promise/shared-future pair
//! for completion signalling. The owning [`Taskflow`](crate::Taskflow)
//! keeps every topology it dispatched in a list (so task handles and the
//! executor's raw node pointers stay valid), and the executor additionally
//! holds a keep-alive `Arc` while the topology runs.

use crate::error::{RunError, RunResult, TaskPanic};
use crate::future::{Promise, SharedFuture};
use crate::graph::Graph;
use crate::sync_cell::SyncCell;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-wide topology id source; ids appear in observer hooks and
/// traces so runs of the same taskflow can be told apart.
static NEXT_TOPOLOGY_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) struct Topology {
    /// Unique (process-wide) id, exposed through observer hooks.
    pub(crate) id: u64,
    /// The graph being executed. Workers navigate it through raw pointers;
    /// the box-per-node layout keeps addresses stable.
    pub(crate) graph: SyncCell<Graph>,
    /// Number of nodes that have not yet completed, including nodes spawned
    /// dynamically into subflows. The zero-crossing finalizes the topology.
    pub(crate) alive: AtomicUsize,
    /// Fulfilled exactly once by the finalizing worker.
    pub(crate) promise: SyncCell<Option<Promise<RunResult>>>,
    /// Cloneable completion handle returned to users.
    pub(crate) future: SharedFuture<RunResult>,
    /// First error observed while running (kept, later ones dropped).
    pub(crate) error: Mutex<Option<RunError>>,
}

// SAFETY: interior fields follow the sync_cell phase discipline; atomics
// and the mutex are inherently thread-safe; Graph is Send + Sync under the
// same discipline.
unsafe impl Send for Topology {}
unsafe impl Sync for Topology {}

impl Topology {
    pub(crate) fn new(graph: Graph) -> (std::sync::Arc<Topology>, SharedFuture<RunResult>) {
        let (promise, future) = crate::future::promise_pair();
        let topo = std::sync::Arc::new(Topology {
            id: NEXT_TOPOLOGY_ID.fetch_add(1, Ordering::Relaxed),
            graph: SyncCell::new(graph),
            alive: AtomicUsize::new(0),
            promise: SyncCell::new(Some(promise)),
            future: future.clone(),
            error: Mutex::new(None),
        });
        (topo, future)
    }

    /// Records the first panic; later errors are ignored.
    pub(crate) fn record_panic(&self, panic: TaskPanic) {
        self.record_error(RunError::Panic(panic));
    }

    /// Records the first error; later ones are ignored.
    pub(crate) fn record_error(&self, error: RunError) {
        let mut guard = self.error.lock();
        if guard.is_none() {
            *guard = Some(error);
        }
    }

    /// Resolves the topology's future with `error` without running it.
    ///
    /// Used by the dispatch path when the pre-dispatch sanitizer rejects
    /// the graph: the topology is retained (task handles stay valid) but
    /// never reaches the executor, and waiting on the future returns the
    /// typed error instead of deadlocking.
    ///
    /// # Safety
    /// The caller must have exclusive access to the topology — i.e. it was
    /// never handed to the executor.
    pub(crate) unsafe fn reject(&self, error: RunError) {
        // SAFETY: exclusive access per the caller's contract.
        let promise = unsafe { self.promise.replace(None) }.expect("topology rejected twice");
        promise.set(Err(error));
    }

    /// Number of top-level nodes (excludes dynamically spawned subflows).
    #[allow(dead_code)]
    pub(crate) fn num_static_nodes(&self) -> usize {
        // SAFETY: called in quiescent phases only (tests/inspection).
        unsafe { self.graph.get().len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_panic_keeps_first() {
        let (topo, _future) = Topology::new(Graph::new());
        topo.record_panic(TaskPanic {
            task: "a".into(),
            message: "first".into(),
        });
        topo.record_panic(TaskPanic {
            task: "b".into(),
            message: "second".into(),
        });
        assert_eq!(
            topo.error
                .lock()
                .as_ref()
                .unwrap()
                .as_panic()
                .unwrap()
                .message,
            "first"
        );
    }

    #[test]
    fn new_topology_future_not_ready() {
        let (_topo, future) = Topology::new(Graph::new());
        assert!(!future.is_ready());
    }
}
