//! DOT (GraphViz) export of task dependency graphs (§III-G).
//!
//! "One of the biggest advantages of Cpp-Taskflow is the built-in support
//! for dumping a task dependency graph to a standard DOT format" — we
//! render top-level graphs as a `digraph` and runtime-spawned subflows as
//! nested `subgraph cluster_*` blocks, reproducing Figure 5 of the paper.
//!
//! [`graph_to_dot_annotated`] additionally paints nodes flagged by the
//! pre-dispatch sanitizer ([`crate::validate`]): members of a cycle red,
//! orphans orange, so `dump_with_diagnostics` output can be pasted straight
//! into GraphViz to *see* why a dispatch was rejected.

use crate::graph::{Graph, Node, RawNode};
use crate::validate::GraphDiagnostic;
use std::collections::HashMap;

/// Renders `graph` (recursively including spawned subflows) to DOT.
///
/// # Safety
/// Must be called in a quiescent phase: before dispatch, or after the
/// owning topology completed.
pub(crate) unsafe fn graph_to_dot(graph: &Graph, name: &str) -> String {
    // SAFETY: forwarding the caller's quiescence guarantee.
    unsafe { graph_to_dot_annotated(graph, name, &[]) }
}

/// Renders `graph` to DOT with sanitizer findings highlighted: nodes on a
/// cycle are filled red, orphans orange, and self-edges drawn bold red.
///
/// # Safety
/// Same contract as [`graph_to_dot`].
pub(crate) unsafe fn graph_to_dot_annotated(
    graph: &Graph,
    name: &str,
    diagnostics: &[GraphDiagnostic],
) -> String {
    let mut hl: HashMap<RawNode, &'static str> = HashMap::new();
    for d in diagnostics {
        match d {
            GraphDiagnostic::Cycle { nodes, .. } => {
                for &i in nodes {
                    if let Some(n) = graph.nodes.get(i) {
                        hl.insert(&**n as *const Node as RawNode, "red");
                    }
                }
            }
            GraphDiagnostic::SelfEdge { node, .. } => {
                if let Some(n) = graph.nodes.get(*node) {
                    hl.insert(&**n as *const Node as RawNode, "red");
                }
            }
            GraphDiagnostic::Orphan { node, .. } => {
                if let Some(n) = graph.nodes.get(*node) {
                    // A cycle finding wins over an orphan finding.
                    hl.entry(&**n as *const Node as RawNode).or_insert("orange");
                }
            }
            GraphDiagnostic::DuplicateEdge { .. } => {}
        }
    }
    let mut out = String::with_capacity(256 + graph.len() * 32);
    out.push_str(&format!("digraph {} {{\n", sanitize(name)));
    // SAFETY: forwarding the caller's quiescence guarantee.
    unsafe { emit_graph(graph, &mut out, 1, &mut 0, &hl) };
    out.push_str("}\n");
    out
}

/// Renders `graph` to DOT annotated with a profile: nodes heat-colored by
/// their share of total execution time (white → red) and labeled with
/// their aggregate timing, critical-path edges of the most recent
/// iteration drawn bold red. Critical-path hops that are not structural
/// edges (subflow spawn/join hops) are added as dashed red edges.
///
/// # Safety
/// Same contract as [`graph_to_dot`].
pub(crate) unsafe fn graph_to_dot_profiled(
    graph: &Graph,
    name: &str,
    report: &crate::profile::ProfileReport,
) -> String {
    // Per-node totals for the heat scale (static nodes only carry ids).
    let mut totals: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut max_total = 1u64;
    for n in &report.nodes {
        if let Some(id) = n.id {
            totals.insert(id, (n.total_us, n.count));
            max_total = max_total.max(n.total_us);
        }
    }
    let critical: std::collections::HashSet<(u64, u64)> =
        report.critical_edges.iter().copied().collect();
    let mut out = String::with_capacity(256 + graph.len() * 64);
    out.push_str(&format!("digraph {} {{\n", sanitize(name)));
    out.push_str("  node [style=filled];\n");
    let mut emitted: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    // SAFETY: forwarding the caller's quiescence guarantee.
    unsafe {
        emit_graph_profiled(
            graph,
            &mut out,
            1,
            &mut 0,
            &totals,
            max_total,
            &critical,
            &mut emitted,
        )
    };
    // Critical hops with no structural edge (spawn/join through a subflow).
    for &(from, to) in &critical {
        if !emitted.contains(&(from, to)) {
            out.push_str(&format!(
                "  n{from:x} -> n{to:x} [color=red, penwidth=2, style=dashed, constraint=false];\n"
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[allow(clippy::too_many_arguments)]
unsafe fn emit_graph_profiled(
    graph: &Graph,
    out: &mut String,
    depth: usize,
    cluster: &mut usize,
    totals: &HashMap<u64, (u64, u64)>,
    max_total: u64,
    critical: &std::collections::HashSet<(u64, u64)>,
    emitted: &mut std::collections::HashSet<(u64, u64)>,
) {
    let pad = "  ".repeat(depth);
    for node in &graph.nodes {
        let n: &Node = node;
        let key = n as *const Node as RawNode;
        let id = key as u64;
        // SAFETY: quiescent phase per the caller's contract.
        let label = unsafe { node_label(n) };
        let (heat, timing) = match totals.get(&id) {
            Some(&(total, count)) => (
                total as f64 / max_total as f64,
                format!("\\n{total}us / {count}x"),
            ),
            None => (0.0, String::new()),
        };
        // White → red on the GraphViz HSV wheel: hue 0, saturation = heat.
        out.push_str(&format!(
            "{pad}{} [label=\"{label}{timing}\", fillcolor=\"0.0 {heat:.3} 1.0\"];\n",
            node_id(n)
        ));
        // SAFETY: quiescent phase; successor pointers target live boxed nodes.
        for &succ in unsafe { n.structure.successors.get() }.iter() {
            let edge = (id, succ as u64);
            emitted.insert(edge);
            let attrs = if critical.contains(&edge) {
                " [color=red, penwidth=2]"
            } else {
                ""
            };
            // SAFETY: `succ` is a stable boxed-node address (see Graph).
            let succ_id = node_id(unsafe { &*succ });
            out.push_str(&format!("{pad}{} -> {succ_id}{attrs};\n", node_id(n)));
        }
        // SAFETY: quiescent phase per the caller's contract.
        let sub = unsafe { n.state.subgraph.get() };
        if !sub.is_empty() {
            *cluster += 1;
            out.push_str(&format!("{pad}subgraph cluster_{} {{\n", *cluster));
            out.push_str(&format!(
                "{pad}  label=\"Subflow_{label}\";\n{pad}  style=dashed;\n"
            ));
            // SAFETY: forwarding the caller's quiescence guarantee.
            unsafe {
                emit_graph_profiled(
                    sub,
                    out,
                    depth + 1,
                    cluster,
                    totals,
                    max_total,
                    critical,
                    emitted,
                )
            };
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

unsafe fn emit_graph(
    graph: &Graph,
    out: &mut String,
    depth: usize,
    cluster: &mut usize,
    hl: &HashMap<RawNode, &'static str>,
) {
    let pad = "  ".repeat(depth);
    for node in &graph.nodes {
        let n: &Node = node;
        let key = n as *const Node as RawNode;
        // SAFETY: quiescent phase per the caller's contract.
        let label = unsafe { node_label(n) };
        match hl.get(&key) {
            Some(color) => out.push_str(&format!(
                "{pad}{} [label=\"{label}\", style=filled, fillcolor={color}];\n",
                node_id(n)
            )),
            None => out.push_str(&format!("{pad}{} [label=\"{label}\"];\n", node_id(n))),
        }
        // SAFETY: quiescent phase; successor pointers target live boxed nodes.
        for &succ in unsafe { n.structure.successors.get() }.iter() {
            if succ == key {
                out.push_str(&format!(
                    "{pad}{} -> {} [color=red, penwidth=2];\n",
                    node_id(n),
                    node_id(n)
                ));
            } else {
                // SAFETY: `succ` is a stable boxed-node address (see Graph).
                let succ_id = node_id(unsafe { &*succ });
                out.push_str(&format!("{pad}{} -> {succ_id};\n", node_id(n)));
            }
        }
        // SAFETY: quiescent phase per the caller's contract.
        let sub = unsafe { n.state.subgraph.get() };
        if !sub.is_empty() {
            *cluster += 1;
            out.push_str(&format!("{pad}subgraph cluster_{} {{\n", *cluster));
            out.push_str(&format!(
                "{pad}  label=\"Subflow_{label}\";\n{pad}  style=dashed;\n"
            ));
            // Anchor edge from the parent into its subflow for readability.
            if let Some(first) = sub.nodes.first() {
                out.push_str(&format!(
                    "{pad}  {} -> {} [style=dotted];\n",
                    node_id(n),
                    node_id(first)
                ));
            }
            // SAFETY: forwarding the caller's quiescence guarantee.
            unsafe { emit_graph(sub, out, depth + 1, cluster, hl) };
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

unsafe fn node_label(n: &Node) -> String {
    // SAFETY: forwarding the caller's quiescence guarantee.
    let label = unsafe { n.label() };
    if label.is_empty() {
        format!("{:p}", n as *const Node)
    } else {
        escape(label)
    }
}

fn node_id(n: &Node) -> String {
    format!("n{:x}", n as *const Node as usize)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn sanitize(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "taskflow".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Work;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        unsafe {
            *(*a).structure.name.get_mut() = crate::TaskLabel::new("A");
            (*a).structure.successors.get_mut().push(b);
            *(*b).structure.in_degree.get_mut() += 1;
            let dot = graph_to_dot(&g, "demo");
            assert!(dot.starts_with("digraph demo {"));
            assert!(dot.contains("label=\"A\""));
            assert!(dot.contains(" -> "));
            assert!(dot.ends_with("}\n"));
        }
    }

    #[test]
    fn dot_renders_subflow_clusters() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        unsafe {
            *(*a).structure.name.get_mut() = crate::TaskLabel::new("A");
            (*a).state.subgraph.get_mut().emplace(Work::Empty);
            let dot = graph_to_dot(&g, "demo");
            assert!(dot.contains("subgraph cluster_1"));
            assert!(dot.contains("Subflow_A"));
        }
    }

    #[test]
    fn annotated_dot_highlights_findings() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        g.emplace(Work::Empty); // orphan
        unsafe {
            *(*a).structure.name.get_mut() = crate::TaskLabel::new("A");
            *(*b).structure.name.get_mut() = crate::TaskLabel::new("B");
            (*a).structure.successors.get_mut().push(b);
            *(*b).structure.in_degree.get_mut() += 1;
            (*b).structure.successors.get_mut().push(a);
            *(*a).structure.in_degree.get_mut() += 1;
            let diags = vec![
                GraphDiagnostic::Cycle {
                    path: vec!["A".into(), "B".into(), "A".into()],
                    nodes: vec![0, 1],
                },
                GraphDiagnostic::Orphan {
                    label: String::new(),
                    node: 2,
                },
            ];
            let dot = graph_to_dot_annotated(&g, "demo", &diags);
            assert_eq!(dot.matches("fillcolor=red").count(), 2);
            assert_eq!(dot.matches("fillcolor=orange").count(), 1);
        }
    }

    #[test]
    fn self_edge_rendered_bold_red() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        unsafe {
            (*a).structure.successors.get_mut().push(a);
            *(*a).structure.in_degree.get_mut() += 1;
            let dot = graph_to_dot(&g, "demo");
            assert!(dot.contains("color=red, penwidth=2"));
        }
    }

    #[test]
    fn names_are_escaped_and_sanitized() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(sanitize("my flow!"), "my_flow_");
        assert_eq!(sanitize(""), "taskflow");
    }
}
