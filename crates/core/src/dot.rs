//! DOT (GraphViz) export of task dependency graphs (§III-G).
//!
//! "One of the biggest advantages of Cpp-Taskflow is the built-in support
//! for dumping a task dependency graph to a standard DOT format" — we
//! render top-level graphs as a `digraph` and runtime-spawned subflows as
//! nested `subgraph cluster_*` blocks, reproducing Figure 5 of the paper.

use crate::graph::{Graph, Node};

/// Renders `graph` (recursively including spawned subflows) to DOT.
///
/// # Safety
/// Must be called in a quiescent phase: before dispatch, or after the
/// owning topology completed.
pub(crate) unsafe fn graph_to_dot(graph: &Graph, name: &str) -> String {
    let mut out = String::with_capacity(256 + graph.len() * 32);
    out.push_str(&format!("digraph {} {{\n", sanitize(name)));
    emit_graph(graph, &mut out, 1, &mut 0);
    out.push_str("}\n");
    out
}

unsafe fn emit_graph(graph: &Graph, out: &mut String, depth: usize, cluster: &mut usize) {
    let pad = "  ".repeat(depth);
    for node in &graph.nodes {
        let n: &Node = node;
        out.push_str(&format!(
            "{pad}{} [label=\"{}\"];\n",
            node_id(n),
            node_label(n)
        ));
        for &succ in n.successors.get().iter() {
            out.push_str(&format!("{pad}{} -> {};\n", node_id(n), node_id(&*succ)));
        }
        let sub = n.subgraph.get();
        if !sub.is_empty() {
            *cluster += 1;
            out.push_str(&format!("{pad}subgraph cluster_{} {{\n", *cluster));
            out.push_str(&format!(
                "{pad}  label=\"Subflow_{}\";\n{pad}  style=dashed;\n",
                node_label(n)
            ));
            // Anchor edge from the parent into its subflow for readability.
            if let Some(first) = sub.nodes.first() {
                out.push_str(&format!(
                    "{pad}  {} -> {} [style=dotted];\n",
                    node_id(n),
                    node_id(first)
                ));
            }
            emit_graph(sub, out, depth + 1, cluster);
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

unsafe fn node_label(n: &Node) -> String {
    let label = n.label();
    if label.is_empty() {
        format!("{:p}", n as *const Node)
    } else {
        escape(label)
    }
}

fn node_id(n: &Node) -> String {
    format!("n{:x}", n as *const Node as usize)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn sanitize(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "taskflow".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Work;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        unsafe {
            *(*a).name.get_mut() = crate::TaskLabel::new("A");
            (*a).successors.get_mut().push(b);
            *(*b).in_degree.get_mut() += 1;
            let dot = graph_to_dot(&g, "demo");
            assert!(dot.starts_with("digraph demo {"));
            assert!(dot.contains("label=\"A\""));
            assert!(dot.contains(" -> "));
            assert!(dot.ends_with("}\n"));
        }
    }

    #[test]
    fn dot_renders_subflow_clusters() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        unsafe {
            *(*a).name.get_mut() = crate::TaskLabel::new("A");
            (*a).subgraph.get_mut().emplace(Work::Empty);
            let dot = graph_to_dot(&g, "demo");
            assert!(dot.contains("subgraph cluster_1"));
            assert!(dot.contains("Subflow_A"));
        }
    }

    #[test]
    fn names_are_escaped_and_sanitized() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(sanitize("my flow!"), "my_flow_");
        assert_eq!(sanitize(""), "taskflow");
    }
}
