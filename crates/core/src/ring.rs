//! Fixed-capacity event rings for scheduler telemetry.
//!
//! Each worker gets its own [`EventRing`]; recording an event is a write
//! into that worker's ring only, so workers never contend on a shared lock
//! (the seed's tracer funnelled every worker through one global
//! `Mutex<Vec>`, perturbing the very schedule it measured). Rings are
//! drained off-path by whoever exports the trace.
//!
//! The slot protocol is Vyukov's bounded MPMC queue: producers claim a slot
//! with a CAS on `head` and publish it by storing `seq = pos + 1`. In the
//! intended single-producer-per-ring use the CAS is uncontended and costs
//! one atomic RMW, but the structure stays safe even if a user calls the
//! public observer hooks from arbitrary threads — misuse degrades
//! throughput, never soundness.
//!
//! When a ring is full the event is counted in `dropped` and discarded;
//! recording never blocks and never reallocates.

use crate::observer::SchedEvent;
use crate::sync::{AtomicU64, AtomicUsize, CheckedCell};
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

/// ORDERING: Release on the slot-publish `seq` store orders the payload
/// write before the sequence number a consumer Acquire-loads, so
/// `assume_init_read` never races the producer's write. The
/// `rustflow_weaken` cfg deliberately breaks it so the model checker can
/// demonstrate the payload data race it causes (see crates/check).
const SEQ_PUBLISH: Ordering = if cfg!(rustflow_weaken = "ring_publish") {
    Ordering::Relaxed
} else {
    Ordering::Release
};

struct Slot {
    /// Vyukov sequence number: `pos` when free, `pos + 1` when occupied.
    seq: AtomicUsize,
    value: CheckedCell<MaybeUninit<SchedEvent>>,
}

/// A bounded lock-free ring of [`SchedEvent`]s.
pub struct EventRing {
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
    mask: usize,
    slots: Box<[Slot]>,
}

// SAFETY: slot access is mediated by the Vyukov sequence protocol; a slot's
// value is only touched by the thread that owns it per `seq`.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(2).next_power_of_two();
        EventRing {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            mask: cap - 1,
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: CheckedCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Approximate number of events currently queued (head minus tail,
    /// clamped to the capacity). Advisory: producers and consumers race
    /// this read, so it is a fill-level gauge, not an exact count.
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        head.wrapping_sub(tail).min(self.slots.len())
    }

    /// `true` when [`EventRing::len`] observes an empty ring (advisory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records `event`; returns `false` (and counts the drop) when full.
    ///
    /// The tracer records through [`EventRing::try_push`] +
    /// [`EventRing::note_drop`] so it can drain and retry in between; this
    /// single-call form serves the model-checker harness and tests.
    #[cfg_attr(not(feature = "rustflow_check"), allow(dead_code))]
    pub fn push(&self, event: SchedEvent) -> bool {
        match self.try_push(event) {
            Ok(()) => true,
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Records `event`; on a full ring returns it to the caller without
    /// counting a drop, so the caller can drain and retry (the tracer's
    /// overflow-flush path) before deciding the event is truly lost
    /// ([`EventRing::note_drop`]).
    pub fn try_push(&self, event: SchedEvent) -> Result<(), SchedEvent> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // ORDERING: Acquire pairs with the consumer's Release `seq`
            // store in `pop`, so a slot seen free is fully drained.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Slot free at our position: claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gives this thread exclusive
                        // ownership of the slot until the seq store below.
                        unsafe { slot.value.with_mut(|p| (*p).write(event)) };
                        slot.seq.store(pos.wrapping_add(1), SEQ_PUBLISH);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                // Lapped: the ring is full.
                return Err(event);
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Counts one discarded event (used after a failed retry of
    /// [`EventRing::try_push`]).
    pub fn note_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops the oldest event, if any.
    pub fn pop(&self) -> Option<SchedEvent> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            // ORDERING: Acquire pairs with [`SEQ_PUBLISH`] in `try_push`,
            // so an occupied slot's payload is visible before it is read.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gives this thread exclusive
                        // ownership of the occupied slot.
                        let value = unsafe { slot.value.with_mut(|p| (*p).assume_init_read()) };
                        // ORDERING: Release orders the read-out above
                        // before the slot is recycled; the producer's
                        // Acquire `seq` load won't overwrite a payload
                        // still being moved out.
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains every currently queued event into `out`.
    pub fn drain_into(&self, out: &mut Vec<SchedEvent>) {
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
    }
}

impl Drop for EventRing {
    fn drop(&mut self) {
        // Release any still-queued labels.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TaskLabel;
    use crate::observer::SchedEventKind;

    fn ev(ts: u64) -> SchedEvent {
        SchedEvent {
            worker: 0,
            ts_us: ts,
            label: TaskLabel::new("e"),
            kind: SchedEventKind::TaskBegin {
                span: Default::default(),
            },
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let r = EventRing::new(8);
        assert_eq!(r.capacity(), 8);
        for i in 0..8 {
            assert!(r.push(ev(i)));
        }
        assert!(!r.push(ev(99)), "ninth push must be dropped");
        assert_eq!(r.dropped(), 1);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 8);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_us, i as u64);
        }
        // Space is reusable after draining.
        assert!(r.push(ev(100)));
        assert_eq!(r.pop().unwrap().ts_us, 100);
        assert!(r.pop().is_none());
    }

    #[test]
    fn len_tracks_fill_level() {
        let r = EventRing::new(8);
        assert!(r.is_empty());
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        r.pop();
        assert_eq!(r.len(), 4);
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert!(r.is_empty());
    }

    #[test]
    fn wraps_many_times() {
        let r = EventRing::new(8);
        for round in 0..100u64 {
            for i in 0..5 {
                assert!(r.push(ev(round * 10 + i)));
            }
            let mut out = Vec::new();
            r.drain_into(&mut out);
            assert_eq!(out.len(), 5);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "hundreds of thousands of spins; too slow under miri")]
    fn concurrent_producers_never_lose_accounting() {
        use std::sync::Arc;
        let r = Arc::new(EventRing::new(64));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..10_000 {
                        r.push(ev(i));
                    }
                })
            })
            .collect();
        let reader = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                for _ in 0..200_000 {
                    if r.pop().is_some() {
                        seen += 1;
                    }
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        let mut seen = reader.join().unwrap();
        while r.pop().is_some() {
            seen += 1;
        }
        assert_eq!(
            seen + r.dropped(),
            40_000,
            "every event recorded or counted"
        );
    }
}
