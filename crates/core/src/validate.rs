//! Pre-dispatch graph sanitizer.
//!
//! Cpp-Taskflow documents that "a cyclic dependency graph results in
//! undefined behavior" — in practice a cycle dispatched to the executor
//! deadlocks, because no node on the cycle ever reaches join-counter zero.
//! rustflow instead *analyzes* the graph before handing it to the
//! executor: [`crate::Taskflow::validate`] returns structured
//! [`GraphDiagnostic`]s, and dispatching a graph with a fatal diagnostic
//! resolves the returned future with
//! [`RunError::InvalidGraph`](crate::RunError::InvalidGraph) instead of
//! wedging the worker pool.
//!
//! The analysis is a single O(V + E) pass: an iterative three-color DFS
//! with an explicit path stack (so a discovered cycle is reported as the
//! actual label path, e.g. `A -> B -> C -> A`), plus per-node scans for
//! self-edges, duplicate `precede` edges, and orphan tasks.

use crate::graph::{Graph, Node, RawNode};
use std::collections::HashMap;
use std::fmt;

/// One finding of the pre-dispatch graph sanitizer.
///
/// `node` fields are indices into the taskflow's present graph in
/// emplacement order — the same order [`crate::Taskflow::dump`] emits
/// nodes — so tools can correlate findings with the DOT output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphDiagnostic {
    /// A dependency cycle. Dispatching it would deadlock; fatal.
    Cycle {
        /// The cycle as task labels, closed (first label repeated at the
        /// end): `["A", "B", "A"]`. Unnamed tasks render as `task@<index>`.
        path: Vec<String>,
        /// Indices of the distinct nodes on the cycle, in path order.
        nodes: Vec<usize>,
    },
    /// A task that precedes itself — a one-node cycle; fatal.
    SelfEdge {
        /// The task's label (`task@<index>` when unnamed).
        label: String,
        /// The node's index.
        node: usize,
    },
    /// The same `precede` edge was added more than once. Harmless to
    /// correctness (the join counter is armed from the accumulated
    /// in-degree), but almost always a bug in graph-building code.
    DuplicateEdge {
        /// Label of the edge's source task.
        from: String,
        /// Label of the edge's target task.
        to: String,
        /// Index of the source node.
        from_node: usize,
        /// Index of the target node.
        to_node: usize,
        /// How many copies of the edge exist (≥ 2).
        count: usize,
    },
    /// A task with no predecessors and no successors in a graph that has
    /// other tasks. It still runs — but it is disconnected from the
    /// dependency structure, which usually signals a forgotten `precede`.
    Orphan {
        /// The task's label (`task@<index>` when unnamed).
        label: String,
        /// The node's index.
        node: usize,
    },
}

impl GraphDiagnostic {
    /// `true` when dispatching a graph with this finding cannot make
    /// progress (cycles and self-edges); such graphs are rejected at
    /// dispatch. Warnings (duplicate edges, orphans) do not block.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            GraphDiagnostic::Cycle { .. } | GraphDiagnostic::SelfEdge { .. }
        )
    }
}

impl fmt::Display for GraphDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphDiagnostic::Cycle { path, .. } => {
                write!(f, "dependency cycle: {}", path.join(" -> "))
            }
            GraphDiagnostic::SelfEdge { label, .. } => {
                write!(f, "task '{label}' precedes itself")
            }
            GraphDiagnostic::DuplicateEdge {
                from, to, count, ..
            } => write!(f, "duplicate edge '{from}' -> '{to}' ({count} copies)"),
            GraphDiagnostic::Orphan { label, .. } => {
                write!(f, "orphan task '{label}' (no predecessors or successors)")
            }
        }
    }
}

/// Label for diagnostics: the task's name, or `task@<index>` when unnamed.
unsafe fn diag_label(n: &Node, index: usize) -> String {
    // SAFETY: forwarding the caller's quiescence guarantee.
    let label = unsafe { n.label() };
    if label.is_empty() {
        format!("task@{index}")
    } else {
        label.to_string()
    }
}

/// Analyzes `graph` and returns every finding (fatal ones first is *not*
/// guaranteed; callers filter with [`GraphDiagnostic::is_fatal`]).
///
/// # Safety
/// Must be called in a quiescent phase: the build thread before dispatch,
/// or on a graph no worker is mutating.
pub(crate) unsafe fn validate_graph(graph: &Graph) -> Vec<GraphDiagnostic> {
    let mut out = Vec::new();
    let n = graph.nodes.len();
    // Node address -> emplacement index, for successor lookups.
    let mut index_of: HashMap<RawNode, usize> = HashMap::with_capacity(n);
    for (i, node) in graph.nodes.iter().enumerate() {
        index_of.insert(&**node as *const Node as RawNode, i);
    }

    // Per-node scans: self-edges, duplicate edges, orphans.
    for (i, node) in graph.nodes.iter().enumerate() {
        let me = &**node as *const Node as RawNode;
        // SAFETY: quiescent phase per the caller's contract.
        let succs = unsafe { node.structure.successors.get() };
        let mut copies: HashMap<RawNode, usize> = HashMap::new();
        for &s in succs.iter() {
            *copies.entry(s).or_insert(0) += 1;
        }
        if copies.contains_key(&me) {
            out.push(GraphDiagnostic::SelfEdge {
                // SAFETY: quiescent phase.
                label: unsafe { diag_label(node, i) },
                node: i,
            });
        }
        for (&s, &count) in copies.iter() {
            if count > 1 && s != me {
                if let Some(&j) = index_of.get(&s) {
                    out.push(GraphDiagnostic::DuplicateEdge {
                        // SAFETY: quiescent phase; `s` targets a live node.
                        from: unsafe { diag_label(node, i) },
                        to: unsafe { diag_label(&*s, j) },
                        from_node: i,
                        to_node: j,
                        count,
                    });
                }
            }
        }
        // SAFETY: quiescent phase.
        let in_degree = unsafe { *node.structure.in_degree.get() };
        if n > 1 && in_degree == 0 && succs.is_empty() {
            out.push(GraphDiagnostic::Orphan {
                // SAFETY: quiescent phase.
                label: unsafe { diag_label(node, i) },
                node: i,
            });
        }
    }

    // Cycle search: iterative three-color DFS with an explicit path stack.
    // Self-edges are skipped here (reported above); the first multi-node
    // cycle found is reported with its full label path and the search
    // stops — one fatal finding is enough to reject the dispatch.
    // 0 = white, 1 = gray (on the current path), 2 = black.
    let mut color: Vec<u8> = vec![0; n];
    'roots: for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        // Stack of (node index, next successor position).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = 1;
        while let Some(&(at, pos)) = stack.last() {
            let node = &graph.nodes[at];
            // SAFETY: quiescent phase per the caller's contract.
            let succs = unsafe { node.structure.successors.get() };
            if pos < succs.len() {
                stack.last_mut().expect("nonempty").1 = pos + 1;
                let Some(&j) = index_of.get(&succs[pos]) else {
                    continue; // edge leaving this graph; don't follow
                };
                if j == at {
                    continue; // self-edge, reported separately
                }
                match color[j] {
                    0 => {
                        color[j] = 1;
                        stack.push((j, 0));
                    }
                    1 => {
                        // Found a back edge: the cycle is the path suffix
                        // starting at `j`.
                        let start = stack
                            .iter()
                            .position(|&(k, _)| k == j)
                            .expect("gray node is on the path");
                        let nodes: Vec<usize> = stack[start..].iter().map(|&(k, _)| k).collect();
                        let mut path: Vec<String> = nodes
                            .iter()
                            // SAFETY: quiescent phase.
                            .map(|&k| unsafe { diag_label(&graph.nodes[k], k) })
                            .collect();
                        path.push(path[0].clone());
                        out.push(GraphDiagnostic::Cycle { path, nodes });
                        break 'roots;
                    }
                    _ => {}
                }
            } else {
                color[at] = 2;
                stack.pop();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Work;

    fn connect(a: RawNode, b: RawNode) {
        // SAFETY: single-threaded build phase.
        unsafe {
            (*a).structure.successors.get_mut().push(b);
            *(*b).structure.in_degree.get_mut() += 1;
        }
    }

    fn name(n: RawNode, s: &str) {
        // SAFETY: single-threaded build phase.
        unsafe {
            *(*n).structure.name.get_mut() = crate::TaskLabel::new(s);
        }
    }

    #[test]
    fn clean_graph_has_no_findings() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        connect(a, b);
        assert!(unsafe { validate_graph(&g) }.is_empty());
    }

    #[test]
    fn cycle_reports_label_path() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        let c = g.emplace(Work::Empty);
        name(a, "A");
        name(b, "B");
        name(c, "C");
        connect(a, b);
        connect(b, c);
        connect(c, a);
        let diags = unsafe { validate_graph(&g) };
        assert_eq!(diags.len(), 1);
        match &diags[0] {
            GraphDiagnostic::Cycle { path, nodes } => {
                assert_eq!(path, &["A", "B", "C", "A"]);
                assert_eq!(nodes, &[0, 1, 2]);
            }
            other => panic!("expected Cycle, got {other:?}"),
        }
        assert!(diags[0].is_fatal());
        assert_eq!(diags[0].to_string(), "dependency cycle: A -> B -> C -> A");
    }

    #[test]
    fn unnamed_cycle_uses_index_labels() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        connect(a, b);
        connect(b, a);
        let diags = unsafe { validate_graph(&g) };
        match &diags[0] {
            GraphDiagnostic::Cycle { path, .. } => {
                assert_eq!(path, &["task@0", "task@1", "task@0"]);
            }
            other => panic!("expected Cycle, got {other:?}"),
        }
    }

    #[test]
    fn self_edge_is_fatal_and_not_double_reported() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        name(a, "loopy");
        connect(a, a);
        let diags = unsafe { validate_graph(&g) };
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0],
            GraphDiagnostic::SelfEdge {
                label: "loopy".into(),
                node: 0
            }
        );
        assert!(diags[0].is_fatal());
    }

    #[test]
    fn duplicate_edge_counts_copies() {
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        name(a, "A");
        name(b, "B");
        connect(a, b);
        connect(a, b);
        connect(a, b);
        let diags = unsafe { validate_graph(&g) };
        assert_eq!(diags.len(), 1);
        match &diags[0] {
            GraphDiagnostic::DuplicateEdge {
                from, to, count, ..
            } => {
                assert_eq!((from.as_str(), to.as_str(), *count), ("A", "B", 3));
            }
            other => panic!("expected DuplicateEdge, got {other:?}"),
        }
        assert!(!diags[0].is_fatal());
    }

    #[test]
    fn orphan_detected_only_in_multi_node_graphs() {
        let mut g = Graph::new();
        g.emplace(Work::Empty);
        assert!(
            unsafe { validate_graph(&g) }.is_empty(),
            "singleton is fine"
        );
        let mut g = Graph::new();
        let a = g.emplace(Work::Empty);
        let b = g.emplace(Work::Empty);
        g.emplace(Work::Empty); // orphan
        connect(a, b);
        let diags = unsafe { validate_graph(&g) };
        assert_eq!(
            diags,
            vec![GraphDiagnostic::Orphan {
                label: "task@2".into(),
                node: 2
            }]
        );
    }

    #[test]
    fn empty_graph_is_clean() {
        let g = Graph::new();
        assert!(unsafe { validate_graph(&g) }.is_empty());
    }
}
