//! The process-wide monotonic clock origin shared by every telemetry
//! domain.
//!
//! The seed's exporters each derived their own origin (`Instant::now()`
//! at `Tracer` construction, again at profile export), so a live `/trace`
//! window and a post-mortem `profile_report.json` span of the *same* task
//! carried unrelatable timestamps. Every timestamp rustflow emits — ring
//! events ([`crate::SchedEvent::ts_us`]), the flight recorder, `/trace`
//! output, and profile spans — is now microseconds since the single
//! origin returned by [`origin`], latched once per process and copied
//! onto each [`Executor`](crate::Executor) at construction.

use std::sync::OnceLock;
use std::time::Instant;

/// The shared monotonic origin: latched on first use, identical for every
/// executor, tracer, and exporter in the process.
pub(crate) fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Microseconds elapsed since [`origin`].
pub(crate) fn now_us() -> u64 {
    origin().elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_stable_and_monotonic() {
        let a = origin();
        let t0 = now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t1 = now_us();
        assert_eq!(a, origin(), "origin latches once");
        assert!(t1 > t0, "clock advances");
    }
}
