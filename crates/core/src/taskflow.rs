//! The `Taskflow` object: where task dependency graphs are created and
//! dispatched (§III-A through §III-C of the paper).
//!
//! A taskflow holds exactly one *present graph* at a time. Tasks emplaced
//! through it extend the present graph; [`Taskflow::dispatch`] (or
//! [`Taskflow::wait_for_all`]) moves the present graph into a
//! [`Topology`](crate::topology::Topology) and hands it to the executor,
//! leaving a fresh empty graph behind. The taskflow keeps every dispatched
//! topology in a list, both to expose execution status and to keep node
//! storage alive for outstanding [`Task`] handles.

use crate::dot;
use crate::error::{RunError, RunResult};
use crate::executor::Executor;
use crate::future::SharedFuture;
use crate::graph::{Graph, Work};
use crate::subflow::Subflow;
use crate::sync_cell::SyncCell;
use crate::task::Task;
use crate::topology::Topology;
use crate::validate::{self, GraphDiagnostic};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::Arc;

/// A task dependency graph builder and dispatcher.
///
/// ```
/// let tf = rustflow::Taskflow::new();
/// let (a, b, c, d) = rustflow::emplace!(tf,
///     || println!("Task A"),
///     || println!("Task B"),
///     || println!("Task C"),
///     || println!("Task D"),
/// );
/// a.precede([b, c]); // A runs before B and C
/// b.precede(d);      // B runs before D
/// c.precede(d);      // C runs before D
/// tf.wait_for_all(); // block until finish
/// ```
pub struct Taskflow {
    graph: SyncCell<Graph>,
    executor: Arc<Executor>,
    topologies: Mutex<Vec<Arc<Topology>>>,
    name: SyncCell<String>,
    /// Graph construction is single-threaded: `!Sync`, but `Send`.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

// SAFETY: Taskflow is !Sync (PhantomData<Cell>), so interior mutability of
// the present graph is confined to one thread at a time; all payloads are
// Send.
unsafe impl Send for Taskflow {}

impl Default for Taskflow {
    fn default() -> Self {
        Taskflow::new()
    }
}

impl Taskflow {
    /// Creates a taskflow bound to the process-wide default executor.
    pub fn new() -> Taskflow {
        Taskflow::with_executor(Executor::default_shared())
    }

    /// Creates a taskflow bound to a specific (shareable) executor —
    /// the paper's `std::shared_ptr`-managed pluggable executor (§III-E).
    pub fn with_executor(executor: Arc<Executor>) -> Taskflow {
        Taskflow {
            graph: SyncCell::new(Graph::new()),
            executor,
            topologies: Mutex::new(Vec::new()),
            name: SyncCell::new(String::new()),
            _not_sync: PhantomData,
        }
    }

    /// The executor this taskflow dispatches to.
    pub fn executor(&self) -> Arc<Executor> {
        Arc::clone(&self.executor)
    }

    /// Sets a diagnostic name (used in DOT dumps).
    pub fn set_name(&self, name: impl Into<String>) {
        // SAFETY: !Sync — single-threaded access.
        unsafe {
            *self.name.get_mut() = name.into();
        }
    }

    /// The diagnostic name.
    pub fn name(&self) -> String {
        // SAFETY: !Sync — single-threaded access.
        unsafe { self.name.get().clone() }
    }

    /// Creates a task in the present graph from a closure (§III-A).
    pub fn emplace<F>(&self, f: F) -> Task<'_>
    where
        F: FnMut() + Send + 'static,
    {
        self.emplace_work(Work::Static(Box::new(f)))
    }

    /// Creates a *dynamic* task: its closure receives a [`Subflow`] at
    /// runtime through which it spawns child tasks (§III-D).
    pub fn emplace_subflow<F>(&self, f: F) -> Task<'_>
    where
        F: FnMut(&mut Subflow<'_>) + Send + 'static,
    {
        self.emplace_work(Work::Dynamic(Box::new(f)))
    }

    /// Creates an empty task whose work can be assigned later through
    /// [`Task::work`] — the paper's placeholder idiom (§III-A).
    pub fn placeholder(&self) -> Task<'_> {
        self.emplace_work(Work::Empty)
    }

    fn emplace_work(&self, work: Work) -> Task<'_> {
        // SAFETY: !Sync — the build phase is single-threaded; node boxes
        // give stable addresses for the returned handle.
        let node = unsafe { self.graph.get_mut().emplace(work) };
        Task::new(node)
    }

    /// Number of tasks in the present (not yet dispatched) graph.
    pub fn num_nodes(&self) -> usize {
        // SAFETY: !Sync — single-threaded access.
        unsafe { self.graph.get().len() }
    }

    /// `true` when the present graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.num_nodes() == 0
    }

    /// Number of dispatched topologies retained by this taskflow.
    pub fn num_topologies(&self) -> usize {
        self.topologies.lock().len()
    }

    /// Dumps the present graph to GraphViz DOT (§III-G).
    pub fn dump(&self) -> String {
        // SAFETY: !Sync — present graph is quiescent.
        unsafe { dot::graph_to_dot(self.graph.get(), &self.name()) }
    }

    /// Dumps every *completed* dispatched topology to DOT, including the
    /// subflows its dynamic tasks spawned at runtime (Fig. 5 of the paper).
    /// Running topologies are skipped (their graphs are in motion).
    pub fn dump_topologies(&self) -> String {
        let mut out = String::new();
        for (i, topo) in self.topologies.lock().iter().enumerate() {
            if topo.future.is_ready() {
                // SAFETY: completed topology — quiescent graph.
                unsafe {
                    out.push_str(&dot::graph_to_dot(
                        topo.graph.get(),
                        &format!("{}_{}", self.name(), i),
                    ));
                }
            }
        }
        out
    }

    /// Runs the pre-dispatch sanitizer on the present graph and returns
    /// every finding: dependency cycles (with their label path),
    /// self-edges, duplicate `precede` edges, and orphan tasks.
    ///
    /// An empty result means [`Taskflow::dispatch`] will hand the graph to
    /// the executor; fatal findings ([`GraphDiagnostic::is_fatal`]) make
    /// dispatch resolve the future with [`RunError::InvalidGraph`] instead.
    pub fn validate(&self) -> Vec<GraphDiagnostic> {
        // SAFETY: !Sync — the present graph is quiescent.
        unsafe { validate::validate_graph(self.graph.get()) }
    }

    /// Dumps the present graph to DOT with sanitizer findings highlighted
    /// (cycle members red, orphans orange), and returns the findings.
    pub fn dump_with_diagnostics(&self) -> (String, Vec<GraphDiagnostic>) {
        let diagnostics = self.validate();
        // SAFETY: !Sync — the present graph is quiescent.
        let dot =
            unsafe { dot::graph_to_dot_annotated(self.graph.get(), &self.name(), &diagnostics) };
        (dot, diagnostics)
    }

    /// Dispatches the present graph for execution **without blocking**,
    /// returning a shared future to observe completion (§III-C). The
    /// taskflow is left with a fresh empty graph.
    ///
    /// The graph is sanitized first ([`Taskflow::validate`]); a graph that
    /// could never complete — a dependency cycle or a self-edge — is *not*
    /// handed to the executor: the returned future resolves immediately
    /// with [`RunError::InvalidGraph`] carrying the findings, instead of
    /// deadlocking the worker pool as in Cpp-Taskflow ("a cyclic graph
    /// results in undefined behavior").
    pub fn dispatch(&self) -> SharedFuture<RunResult> {
        let diagnostics = self.validate();
        // SAFETY: !Sync — single-threaded graph handoff.
        let graph = unsafe { self.graph.replace(Graph::new()) };
        let (topo, future) = Topology::new(graph);
        // Retained even when rejected: outstanding Task handles point into
        // the topology's node storage.
        self.topologies.lock().push(Arc::clone(&topo));
        if diagnostics.iter().any(GraphDiagnostic::is_fatal) {
            // SAFETY: the topology was never handed to the executor.
            unsafe { topo.reject(RunError::InvalidGraph(diagnostics)) };
        } else {
            self.executor.run_topology(topo);
        }
        future
    }

    /// Dispatches the present graph and ignores the execution status.
    pub fn silent_dispatch(&self) {
        let _ = self.dispatch();
    }

    /// Dispatches the present graph (if non-empty) and blocks until **all**
    /// dispatched topologies finish. Panics if any task panicked,
    /// propagating the first recorded panic message.
    pub fn wait_for_all(&self) {
        if let Err(e) = self.try_wait_for_all() {
            panic!("{e}");
        }
    }

    /// Like [`Taskflow::wait_for_all`] but reports a task panic as an error
    /// instead of panicking.
    pub fn try_wait_for_all(&self) -> RunResult {
        if !self.is_empty() {
            self.silent_dispatch();
        }
        let futures: Vec<SharedFuture<RunResult>> = self
            .topologies
            .lock()
            .iter()
            .map(|t| t.future.clone())
            .collect();
        let mut first_err = None;
        for f in futures {
            if let Err(e) = f.get() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drops completed topologies, releasing their graphs.
    ///
    /// Requires `&mut self`, which statically guarantees no outstanding
    /// [`Task`] handle can reach into the freed graphs.
    pub fn gc(&mut self) -> usize {
        let mut topologies = self.topologies.lock();
        let before = topologies.len();
        topologies.retain(|t| !t.future.is_ready());
        before - topologies.len()
    }
}

impl Drop for Taskflow {
    fn drop(&mut self) {
        // Present (undispatched) graphs are discarded, but running
        // topologies must finish before their node storage is freed.
        let futures: Vec<SharedFuture<RunResult>> = self
            .topologies
            .lock()
            .iter()
            .map(|t| t.future.clone())
            .collect();
        for f in futures {
            f.wait();
        }
    }
}

impl std::fmt::Debug for Taskflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Taskflow")
            .field("name", &self.name())
            .field("nodes", &self.num_nodes())
            .field("topologies", &self.num_topologies())
            .finish()
    }
}

/// Creates several tasks at once, returning a tuple of handles — the Rust
/// rendering of Cpp-Taskflow's multi-emplace
/// (`auto [A, B, C] = tf.emplace(...)`, §III-A).
///
/// ```
/// let tf = rustflow::Taskflow::new();
/// let (a, b) = rustflow::emplace!(tf, || {}, || {});
/// a.precede(b);
/// tf.wait_for_all();
/// ```
#[macro_export]
macro_rules! emplace {
    ($tf:expr, $($f:expr),+ $(,)?) => {
        ( $( $tf.emplace($f) ),+ )
    };
}
