//! The `Taskflow` object: where task dependency graphs are created,
//! dispatched, and — new to the run-based model — executed repeatedly
//! (§III-A through §III-C of the paper, plus the `run`/`run_n`/`run_until`
//! interface of Taskflow v2).
//!
//! A taskflow holds exactly one *present graph* at a time. Tasks emplaced
//! through it extend the present graph. Two execution styles coexist:
//!
//! * **Iterative** ([`Taskflow::run`], [`Taskflow::run_n`],
//!   [`Taskflow::run_until`]): the present graph is frozen into a
//!   *reusable* [`Topology`](crate::topology::Topology) the first time a
//!   run is requested; subsequent runs on an empty present graph re-arm
//!   and re-execute that same topology — no node allocation, no edge
//!   wiring, no re-validation. Batches submitted while a previous batch is
//!   executing queue FIFO.
//! * **One-shot** ([`Taskflow::dispatch`], [`Taskflow::wait_for_all`]):
//!   the paper's §III-C model. Each dispatch moves the present graph into
//!   its own topology, runs it exactly once, and leaves a fresh empty
//!   graph behind.
//!
//! The taskflow keeps every topology it created in a list, both to expose
//! execution status and to keep node storage alive for outstanding
//! [`Task`] handles; [`Taskflow::gc`] reclaims settled ones. Long-running
//! dispatch/run loops should call `gc()` periodically — see the method
//! docs for the idiom.

use crate::dot;
use crate::error::{AdmissionError, FailurePolicy, RunError, RunResult};
use crate::executor::{Block, Executor, Tenant};
use crate::future::SharedFuture;
use crate::graph::{Graph, Work};
use crate::handle::RunHandle;
use crate::subflow::Subflow;
use crate::sync::Mutex;
use crate::sync_cell::SyncCell;
use crate::task::Task;
use crate::topology::{RunCondition, Topology};
use crate::validate::{self, GraphDiagnostic};
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Completion futures of every submitted batch/dispatch, with a watermark
/// below which futures are known resolved — repeated
/// [`Taskflow::try_wait_for_all`] calls are O(new submissions), not
/// O(total history).
struct WaitSet {
    futures: Vec<SharedFuture<RunResult>>,
    /// `futures[..watermark]` have resolved and their errors are folded
    /// into `first_error`.
    watermark: usize,
    /// First error ever observed; sticky, so every later wait reports it
    /// (matching the paper's "first panic wins" semantics).
    first_error: Option<RunError>,
}

/// A task dependency graph builder and dispatcher.
///
/// ```
/// let tf = rustflow::Taskflow::new();
/// let (a, b, c, d) = rustflow::emplace!(tf,
///     || println!("Task A"),
///     || println!("Task B"),
///     || println!("Task C"),
///     || println!("Task D"),
/// );
/// a.precede([b, c]); // A runs before B and C
/// b.precede(d);      // B runs before D
/// c.precede(d);      // C runs before D
/// tf.wait_for_all(); // block until finish
/// ```
pub struct Taskflow {
    graph: SyncCell<Graph>,
    executor: Arc<Executor>,
    topologies: Mutex<Vec<Arc<Topology>>>,
    /// The reusable topology targeted by `run*` when the present graph is
    /// empty: the most recently frozen one.
    reusable: SyncCell<Option<Arc<Topology>>>,
    waits: Mutex<WaitSet>,
    name: SyncCell<String>,
    /// Failure policy stamped onto graphs frozen *after* it was set.
    policy: std::cell::Cell<FailurePolicy>,
    /// Graph construction is single-threaded: `!Sync`, but `Send`.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

// SAFETY: Taskflow is !Sync (PhantomData<Cell>), so interior mutability of
// the present graph is confined to one thread at a time; all payloads are
// Send.
unsafe impl Send for Taskflow {}

impl Default for Taskflow {
    fn default() -> Self {
        Taskflow::new()
    }
}

impl Taskflow {
    /// Creates a taskflow bound to the process-wide default executor.
    pub fn new() -> Taskflow {
        Taskflow::with_executor(Executor::default_shared())
    }

    /// Creates a taskflow bound to a specific (shareable) executor —
    /// the paper's `std::shared_ptr`-managed pluggable executor (§III-E).
    pub fn with_executor(executor: Arc<Executor>) -> Taskflow {
        Taskflow {
            graph: SyncCell::new(Graph::new()),
            executor,
            topologies: Mutex::new(Vec::new()),
            reusable: SyncCell::new(None),
            waits: Mutex::new(WaitSet {
                futures: Vec::new(),
                watermark: 0,
                first_error: None,
            }),
            name: SyncCell::new(String::new()),
            policy: std::cell::Cell::new(FailurePolicy::ContinueAll),
            _not_sync: PhantomData,
        }
    }

    /// Sets how a task panic affects the rest of the graph. The policy is
    /// frozen into a topology when the present graph is first dispatched
    /// or `run`; graphs frozen earlier keep the policy they were frozen
    /// with.
    pub fn set_failure_policy(&self, policy: FailurePolicy) {
        self.policy.set(policy);
    }

    /// The failure policy future freezes will use.
    pub fn failure_policy(&self) -> FailurePolicy {
        self.policy.get()
    }

    /// The executor this taskflow dispatches to.
    pub fn executor(&self) -> Arc<Executor> {
        Arc::clone(&self.executor)
    }

    /// Sets a diagnostic name (used in DOT dumps).
    pub fn set_name(&self, name: impl Into<String>) {
        // SAFETY: !Sync — single-threaded access.
        unsafe {
            *self.name.get_mut() = name.into();
        }
    }

    /// The diagnostic name.
    pub fn name(&self) -> String {
        // SAFETY: !Sync — single-threaded access.
        unsafe { self.name.get().clone() }
    }

    /// Creates a task in the present graph from a closure (§III-A).
    pub fn emplace<F>(&self, f: F) -> Task<'_>
    where
        F: FnMut() + Send + 'static,
    {
        self.emplace_work(Work::Static(Box::new(f)))
    }

    /// Creates a *dynamic* task: its closure receives a [`Subflow`] at
    /// runtime through which it spawns child tasks (§III-D).
    pub fn emplace_subflow<F>(&self, f: F) -> Task<'_>
    where
        F: FnMut(&mut Subflow<'_>) + Send + 'static,
    {
        self.emplace_work(Work::Dynamic(Box::new(f)))
    }

    /// Creates an empty task whose work can be assigned later through
    /// [`Task::work`] — the paper's placeholder idiom (§III-A).
    pub fn placeholder(&self) -> Task<'_> {
        self.emplace_work(Work::Empty)
    }

    fn emplace_work(&self, work: Work) -> Task<'_> {
        // SAFETY: !Sync — the build phase is single-threaded; node boxes
        // give stable addresses for the returned handle.
        let node = unsafe { self.graph.get_mut().emplace(work) };
        Task::new(node)
    }

    /// Number of tasks in the present (not yet dispatched) graph.
    pub fn num_nodes(&self) -> usize {
        // SAFETY: !Sync — single-threaded access.
        unsafe { self.graph.get().len() }
    }

    /// `true` when the present graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.num_nodes() == 0
    }

    /// Number of dispatched topologies retained by this taskflow.
    pub fn num_topologies(&self) -> usize {
        self.topologies.lock().len()
    }

    /// Total completed iterations of the current `run*` target topology
    /// (0 when nothing was ever frozen). Counts every iteration across
    /// every `run`/`run_n`/`run_until` batch.
    pub fn num_iterations(&self) -> u64 {
        // SAFETY: !Sync — single-threaded access.
        unsafe { self.reusable.get().as_ref().map_or(0, |t| t.iterations()) }
    }

    /// Total node count across every retained *settled* topology,
    /// including the subflow tasks their most recent iteration spawned at
    /// runtime — a diagnostic for the memory `gc()` would reclaim.
    pub fn num_retained_nodes(&self) -> usize {
        self.topologies
            .lock()
            .iter()
            .filter(|t| t.is_settled())
            // SAFETY: settled topology — quiescent graph.
            .map(|t| unsafe { t.graph.get().total_nodes() })
            .sum()
    }

    /// Dumps the present graph to GraphViz DOT (§III-G).
    pub fn dump(&self) -> String {
        // SAFETY: !Sync — present graph is quiescent.
        unsafe { dot::graph_to_dot(self.graph.get(), &self.name()) }
    }

    /// Dumps every *settled* (not currently executing) topology to DOT,
    /// including the subflows its dynamic tasks spawned at runtime during
    /// the most recent iteration (Fig. 5 of the paper). Running topologies
    /// are skipped (their graphs are in motion).
    pub fn dump_topologies(&self) -> String {
        let mut out = String::new();
        for (i, topo) in self.topologies.lock().iter().enumerate() {
            if topo.is_settled() {
                // SAFETY: settled topology — quiescent graph.
                unsafe {
                    out.push_str(&dot::graph_to_dot(
                        topo.graph.get(),
                        &format!("{}_{}", self.name(), i),
                    ));
                }
            }
        }
        out
    }

    /// Runs the pre-dispatch sanitizer on the present graph and returns
    /// every finding: dependency cycles (with their label path),
    /// self-edges, duplicate `precede` edges, and orphan tasks.
    ///
    /// An empty result means [`Taskflow::dispatch`] (and the first
    /// [`Taskflow::run`]) will hand the graph to the executor; fatal
    /// findings ([`GraphDiagnostic::is_fatal`]) make them resolve the
    /// future with [`RunError::InvalidGraph`] instead. Once a graph is
    /// frozen into a topology the verdict is cached — re-running a
    /// reusable topology never re-walks the graph.
    pub fn validate(&self) -> Vec<GraphDiagnostic> {
        // SAFETY: !Sync — the present graph is quiescent.
        unsafe { validate::validate_graph(self.graph.get()) }
    }

    /// Dumps the present graph to DOT with sanitizer findings highlighted
    /// (cycle members red, orphans orange), and returns the findings.
    pub fn dump_with_diagnostics(&self) -> (String, Vec<GraphDiagnostic>) {
        let diagnostics = self.validate();
        // SAFETY: !Sync — the present graph is quiescent.
        let dot =
            unsafe { dot::graph_to_dot_annotated(self.graph.get(), &self.name(), &diagnostics) };
        (dot, diagnostics)
    }

    /// Snapshots the frozen graph structure the causal profiler joins task
    /// spans against ([`crate::profile::ProfileReport::build`]).
    ///
    /// The snapshot covers the current `run*` target topology — including
    /// the subflow nodes its most recent iteration spawned — or, when no
    /// topology was frozen yet, the present (undispatched) graph. Call it
    /// after the runs being profiled have completed: a running topology's
    /// graph is in motion and yields an empty snapshot.
    pub fn profile_snapshot(&self) -> crate::profile::GraphSnapshot {
        // SAFETY: !Sync — single-threaded access.
        if let Some(topo) = unsafe { self.reusable.get() } {
            if !topo.is_settled() {
                return crate::profile::GraphSnapshot::default();
            }
            // SAFETY: settled topology — quiescent graph.
            return unsafe { crate::profile::GraphSnapshot::from_graph(topo.graph.get()) };
        }
        // SAFETY: !Sync — the present graph is quiescent.
        unsafe { crate::profile::GraphSnapshot::from_graph(self.graph.get()) }
    }

    /// Dumps the `run*` target topology (falling back to the present
    /// graph) to DOT annotated with a profile: nodes heat-colored by
    /// total execution time and labeled with their aggregate timing, the
    /// most recent iteration's critical path bold red
    /// ([`crate::profile::ProfileReport::critical_edges`]).
    pub fn dump_profiled(&self, report: &crate::profile::ProfileReport) -> String {
        // SAFETY: !Sync — single-threaded access.
        if let Some(topo) = unsafe { self.reusable.get() } {
            if !topo.is_settled() {
                return String::new();
            }
            // SAFETY: settled topology — quiescent graph.
            return unsafe { dot::graph_to_dot_profiled(topo.graph.get(), &self.name(), report) };
        }
        // SAFETY: !Sync — the present graph is quiescent.
        unsafe { dot::graph_to_dot_profiled(self.graph.get(), &self.name(), report) }
    }

    /// Freezes the present graph (if non-empty) into a new reusable
    /// topology and makes it the `run*` target. Returns the target
    /// topology, or `None` when nothing was ever built.
    fn materialize(&self) -> Option<Arc<Topology>> {
        if !self.is_empty() {
            // SAFETY: !Sync — single-threaded graph handoff.
            let graph = unsafe { self.graph.replace(Graph::new()) };
            let topo = Topology::new(graph, self.policy.get());
            self.topologies.lock().push(Arc::clone(&topo));
            // SAFETY: !Sync — single-threaded access.
            unsafe { *self.reusable.get_mut() = Some(topo) };
        }
        // SAFETY: !Sync — single-threaded access.
        unsafe { self.reusable.get().clone() }
    }

    fn submit(&self, cond: RunCondition) -> RunHandle {
        let Some(topo) = self.materialize() else {
            // Nothing was ever built: an empty run completes immediately.
            return RunHandle::ready(Ok(()));
        };
        let future = self.executor.run_topology(&topo, cond);
        self.waits.lock().futures.push(future.clone());
        RunHandle::new(future, Arc::downgrade(&topo))
    }

    fn submit_on(
        &self,
        tenant: &Tenant,
        cond: RunCondition,
        block: Block,
        deadline: Option<Duration>,
    ) -> Result<RunHandle, AdmissionError> {
        let Some(topo) = self.materialize() else {
            return Ok(RunHandle::ready(Ok(())));
        };
        let future = self
            .executor
            .run_topology_on(tenant, &topo, cond, block, deadline)?;
        self.waits.lock().futures.push(future.clone());
        Ok(RunHandle::new(future, Arc::downgrade(&topo)))
    }

    /// Executes the taskflow's graph once **through a tenant**: the
    /// submission passes the tenant's admission control and weighted fair
    /// queueing before it is dispatched ([`Executor::tenant`]). Blocks
    /// while the tenant's submission queue is full; returns
    /// `Err(ShuttingDown)` if the executor stopped admitting work.
    ///
    /// ```
    /// let ex = rustflow::Executor::new(2);
    /// let tenant = ex.tenant("analytics");
    /// let tf = rustflow::Taskflow::with_executor(ex.clone());
    /// tf.emplace(|| {});
    /// tf.run_on(&tenant).unwrap().get().unwrap();
    /// ```
    pub fn run_on(&self, tenant: &Tenant) -> Result<RunHandle, AdmissionError> {
        self.run_n_on(tenant, 1)
    }

    /// [`Taskflow::run_on`] for `n` iterations (one admission, `n`
    /// executions — the batch occupies a single in-flight slot).
    pub fn run_n_on(&self, tenant: &Tenant, n: u64) -> Result<RunHandle, AdmissionError> {
        self.submit_on(tenant, RunCondition::Count(n), Block::Forever, None)
    }

    /// Non-blocking [`Taskflow::run_on`]: a full tenant queue returns
    /// [`AdmissionError::Saturated`] immediately instead of waiting —
    /// the backpressure signal for clients that can shed or retry.
    pub fn try_run_on(&self, tenant: &Tenant) -> Result<RunHandle, AdmissionError> {
        self.try_run_n_on(tenant, 1)
    }

    /// Non-blocking [`Taskflow::run_n_on`].
    pub fn try_run_n_on(&self, tenant: &Tenant, n: u64) -> Result<RunHandle, AdmissionError> {
        self.submit_on(tenant, RunCondition::Count(n), Block::Never, None)
    }

    /// Bounded-blocking [`Taskflow::run_on`]: waits up to `timeout` for
    /// tenant queue space, then gives up with
    /// [`AdmissionError::Saturated`]. The middle ground between `run_on`
    /// (waits forever — a convoy under overload) and `try_run_on`
    /// (rejects instantly — busy-polls under overload); callers own the
    /// backpressure policy.
    ///
    /// ```
    /// use std::time::Duration;
    /// let ex = rustflow::Executor::new(2);
    /// let tenant = ex.tenant("frontend");
    /// let tf = rustflow::Taskflow::with_executor(ex.clone());
    /// tf.emplace(|| {});
    /// tf.run_on_timeout(&tenant, Duration::from_millis(100))
    ///     .unwrap()
    ///     .get()
    ///     .unwrap();
    /// ```
    pub fn run_on_timeout(
        &self,
        tenant: &Tenant,
        timeout: Duration,
    ) -> Result<RunHandle, AdmissionError> {
        let until = Instant::now() + timeout;
        self.submit_on(tenant, RunCondition::Count(1), Block::Until(until), None)
    }

    /// [`Taskflow::run_on`] with a per-run deadline overriding the
    /// tenant's [`TenantQos::deadline`](crate::TenantQos). Admission
    /// rejects the run outright
    /// ([`AdmissionError::DeadlineInfeasible`]) when the tenant's live
    /// queue-wait estimate already exceeds `deadline`, and the
    /// dispatcher sheds it ([`RunError::Shed`](crate::RunError)) if it
    /// is still queued when the deadline expires.
    pub fn run_on_deadline(
        &self,
        tenant: &Tenant,
        deadline: Duration,
    ) -> Result<RunHandle, AdmissionError> {
        self.submit_on(
            tenant,
            RunCondition::Count(1),
            Block::Forever,
            Some(deadline),
        )
    }

    /// Non-blocking [`Taskflow::run_on_deadline`]: a full tenant queue
    /// returns [`AdmissionError::Saturated`] immediately instead of
    /// waiting. The natural submit call for an open-loop client that
    /// paces itself and sheds on rejection.
    pub fn try_run_on_deadline(
        &self,
        tenant: &Tenant,
        deadline: Duration,
    ) -> Result<RunHandle, AdmissionError> {
        self.submit_on(tenant, RunCondition::Count(1), Block::Never, Some(deadline))
    }

    /// Executes the taskflow's graph once **without rebuilding it** and
    /// returns a future observing that run.
    ///
    /// On the first call (or whenever tasks were emplaced since the last
    /// freeze) the present graph is validated and frozen into a reusable
    /// topology; later calls with an empty present graph *re-arm* the same
    /// topology — join counters reset from the static in-degrees, subflow
    /// subgraphs cleared — and execute it again. Runs submitted while the
    /// topology is busy queue FIFO.
    ///
    /// ```
    /// let tf = rustflow::Taskflow::new();
    /// tf.emplace(|| println!("iterate"));
    /// tf.run().get().unwrap(); // freeze + first run
    /// tf.run().get().unwrap(); // re-arm + second run, zero rebuild cost
    /// ```
    ///
    /// The returned [`RunHandle`] observes the run like a future and can
    /// also [`cancel`](RunHandle::cancel) it or bound it by a deadline
    /// ([`RunHandle::wait_timeout`]).
    pub fn run(&self) -> RunHandle {
        self.run_n(1)
    }

    /// Executes the taskflow's graph once with a deadline: blocks until
    /// the run finishes or `timeout` elapses, whichever comes first. On
    /// expiry the run degrades to cooperative cancellation
    /// ([`RunHandle::wait_timeout`]) and this returns
    /// [`RunError::Cancelled`]; natural completion that beats the
    /// deadline returns its own outcome.
    pub fn run_timeout(&self, timeout: std::time::Duration) -> RunResult {
        self.run().wait_timeout(timeout)
    }

    /// Executes the taskflow's graph `n` times (see [`Taskflow::run`]);
    /// the future resolves when the last iteration finishes. An error in
    /// iteration *k* resolves the future with that iteration's error and
    /// abandons the remaining iterations. `run_n(0)` completes
    /// immediately.
    ///
    /// Iterating many times? Call [`Taskflow::gc`] between batches to keep
    /// the retained-topology list from growing:
    ///
    /// ```
    /// let mut tf = rustflow::Taskflow::new();
    /// for epoch in 0..3 {
    ///     tf.emplace(move || { let _ = epoch; });
    ///     tf.run_n(4).get().unwrap();
    ///     tf.gc(); // settled topologies from prior epochs are reclaimed
    /// }
    /// ```
    pub fn run_n(&self, n: u64) -> RunHandle {
        self.submit(RunCondition::Count(n))
    }

    /// Repeatedly executes the taskflow's graph until `pred` returns
    /// `true`. The predicate is evaluated before every iteration (so a
    /// predicate that starts `true` runs nothing) from the driver thread —
    /// the submitter or a worker finishing an iteration. A panic inside
    /// `pred`, like a task panic, resolves the future with that error and
    /// stops.
    pub fn run_until<P>(&self, pred: P) -> RunHandle
    where
        P: FnMut() -> bool + Send + 'static,
    {
        self.submit(RunCondition::Until(Box::new(pred)))
    }

    /// Dispatches the present graph for execution **without blocking**,
    /// returning a shared future to observe completion (§III-C). The
    /// taskflow is left with a fresh empty graph; the dispatched topology
    /// runs exactly once (the paper's one-shot model — use
    /// [`Taskflow::run`] to execute a graph repeatedly).
    ///
    /// The graph is sanitized first ([`Taskflow::validate`]); a graph that
    /// could never complete — a dependency cycle or a self-edge — is *not*
    /// handed to the executor: the returned future resolves immediately
    /// with [`RunError::InvalidGraph`] carrying the findings, instead of
    /// deadlocking the worker pool as in Cpp-Taskflow ("a cyclic graph
    /// results in undefined behavior"). Dispatching an empty graph
    /// completes immediately.
    ///
    /// In dispatch loops, call [`Taskflow::gc`] periodically — every
    /// dispatched topology is retained until collected.
    pub fn dispatch(&self) -> RunHandle {
        if self.is_empty() {
            return RunHandle::ready(Ok(()));
        }
        // SAFETY: !Sync — single-threaded graph handoff.
        let graph = unsafe { self.graph.replace(Graph::new()) };
        // Retained even when rejected: outstanding Task handles point into
        // the topology's node storage. One-shot topologies do not become
        // the `run*` target.
        let topo = Topology::new(graph, self.policy.get());
        self.topologies.lock().push(Arc::clone(&topo));
        let future = self.executor.run_topology(&topo, RunCondition::Count(1));
        self.waits.lock().futures.push(future.clone());
        RunHandle::new(future, Arc::downgrade(&topo))
    }

    /// Dispatches the present graph and ignores the execution status.
    pub fn silent_dispatch(&self) {
        let _ = self.dispatch();
    }

    /// Dispatches the present graph (if non-empty) and blocks until **all**
    /// submitted work — dispatches and runs alike — finishes. Panics if
    /// any task panicked, propagating the first recorded panic message.
    pub fn wait_for_all(&self) {
        if let Err(e) = self.try_wait_for_all() {
            panic!("{e}");
        }
    }

    /// Like [`Taskflow::wait_for_all`] but reports a task panic as an error
    /// instead of panicking.
    ///
    /// Completed waits are remembered: repeated calls only wait on work
    /// submitted since the last call, so waiting in a loop costs O(new
    /// submissions). The first error ever observed stays sticky and is
    /// re-reported by every later call.
    pub fn try_wait_for_all(&self) -> RunResult {
        if !self.is_empty() {
            self.silent_dispatch();
        }
        loop {
            // Clone the future out so the lock is not held while blocking;
            // `&self` is !Sync, so no one else advances the watermark.
            let next = {
                let w = self.waits.lock();
                w.futures.get(w.watermark).cloned()
            };
            let Some(future) = next else { break };
            let result = future.get();
            let mut w = self.waits.lock();
            w.watermark += 1;
            if let Err(e) = result {
                w.first_error.get_or_insert(e);
            }
        }
        match &self.waits.lock().first_error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Drops settled topologies (releasing their graphs) and compacts the
    /// resolved prefix of the wait set. Returns the number of topologies
    /// reclaimed.
    ///
    /// Requires `&mut self`, which statically guarantees no outstanding
    /// [`Task`] handle can reach into the freed graphs. The `run*` target
    /// is kept alive even when settled — reclaiming it would discard the
    /// graph the next `run` re-arms.
    pub fn gc(&mut self) -> usize {
        {
            let w = self.waits.get_mut();
            while w.watermark < w.futures.len() && w.futures[w.watermark].is_ready() {
                if let Some(Err(e)) = w.futures[w.watermark].try_get() {
                    w.first_error.get_or_insert(e);
                }
                w.watermark += 1;
            }
            w.futures.drain(..w.watermark);
            w.watermark = 0;
        }
        // SAFETY: !Sync — single-threaded access.
        let target = unsafe { self.reusable.get().as_ref().map(Arc::as_ptr) };
        let mut topologies = self.topologies.lock();
        let before = topologies.len();
        topologies.retain(|t| !t.is_settled() || Some(Arc::as_ptr(t)) == target);
        before - topologies.len()
    }
}

impl Drop for Taskflow {
    fn drop(&mut self) {
        // Present (undispatched) graphs are discarded, but running
        // topologies must finish before their node storage is freed. The
        // resolved prefix below the watermark needs no re-wait.
        let w = self.waits.get_mut();
        for f in &w.futures[w.watermark..] {
            f.wait();
        }
    }
}

impl std::fmt::Debug for Taskflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Taskflow")
            .field("name", &self.name())
            .field("nodes", &self.num_nodes())
            .field("topologies", &self.num_topologies())
            .finish()
    }
}

/// Creates several tasks at once, returning a tuple of handles — the Rust
/// rendering of Cpp-Taskflow's multi-emplace
/// (`auto [A, B, C] = tf.emplace(...)`, §III-A).
///
/// ```
/// let tf = rustflow::Taskflow::new();
/// let (a, b) = rustflow::emplace!(tf, || {}, || {});
/// a.precede(b);
/// tf.wait_for_all();
/// ```
#[macro_export]
macro_rules! emplace {
    ($tf:expr, $($f:expr),+ $(,)?) => {
        ( $( $tf.emplace($f) ),+ )
    };
}
