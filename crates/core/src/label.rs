//! Interned task labels.
//!
//! A [`TaskLabel`] stores a task's human-readable name as an `Arc<str>`
//! created **once**, when the user names the task. Every consumer — the
//! scheduler's observer hooks, the event-ring tracer, DOT dumps — clones
//! the label, which is a reference-count bump, not a heap allocation. This
//! is what keeps the telemetry record path allocation-free: the old tracer
//! copied the name `String` on every task entry.

use std::sync::Arc;

/// An interned, cheaply cloneable task name.
///
/// Cloning bumps a reference count; no text is copied. Unnamed tasks carry
/// the empty label, which allocates nothing at all.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct TaskLabel(Option<Arc<str>>);

impl TaskLabel {
    /// The empty label (no allocation).
    pub const fn empty() -> TaskLabel {
        TaskLabel(None)
    }

    /// Interns `name`; the only point where label text is allocated.
    pub fn new(name: impl AsRef<str>) -> TaskLabel {
        let s = name.as_ref();
        if s.is_empty() {
            TaskLabel(None)
        } else {
            TaskLabel(Some(Arc::from(s)))
        }
    }

    /// The label text; empty string for unnamed tasks.
    pub fn as_str(&self) -> &str {
        self.0.as_deref().unwrap_or("")
    }

    /// `true` for the unnamed-task label.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

impl std::ops::Deref for TaskLabel {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl std::fmt::Display for TaskLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for TaskLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for TaskLabel {
    fn from(s: &str) -> TaskLabel {
        TaskLabel::new(s)
    }
}

impl From<String> for TaskLabel {
    fn from(s: String) -> TaskLabel {
        if s.is_empty() {
            TaskLabel(None)
        } else {
            TaskLabel(Some(Arc::from(s)))
        }
    }
}

impl PartialEq<str> for TaskLabel {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for TaskLabel {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_label_allocates_nothing() {
        let l = TaskLabel::empty();
        assert!(l.is_empty());
        assert_eq!(l.as_str(), "");
        assert!(TaskLabel::new("").is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let a = TaskLabel::new("matmul");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b, "matmul");
        // Same allocation, not a copy.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn conversions() {
        assert_eq!(TaskLabel::from("x").as_str(), "x");
        assert_eq!(TaskLabel::from(String::from("y")).as_str(), "y");
        assert_eq!(format!("{}", TaskLabel::new("t1")), "t1");
        assert_eq!(format!("{:?}", TaskLabel::new("t1")), "\"t1\"");
    }
}
