//! Scheduler telemetry: lifecycle observers, event records, and trace
//! export (§III-G of the paper, extended to the full Algorithm-1
//! lifecycle).
//!
//! Cpp-Taskflow exposes an `ExecutorObserverInterface` so tools can watch
//! the scheduler without touching it. This module widens that idea from
//! task entry/exit to every scheduling decision Algorithm 1 makes — cache
//! hits, steals, parks, wake-ups, topology dispatch — and records them
//! without any lock shared between workers: the [`Tracer`] gives each
//! worker its own fixed-capacity [`EventRing`](crate::ring) and drains
//! them off the hot path.

use crate::label::TaskLabel;
use crate::ring::EventRing;
use crate::sync::{AtomicUsize, Mutex};
use std::sync::atomic::Ordering;

/// Pseudo worker id used for events recorded off the worker threads
/// (topology dispatch runs on the caller's thread).
pub const DISPATCH_LANE: usize = usize::MAX;

/// Version of the ring event schema ([`SchedEventKind`] and its payloads).
///
/// * **v1** — task entry/exit events carried only the worker id and label.
/// * **v2** — task begin/end events carry the node id, spawning parent,
///   and per-iteration run id ([`TaskSpanInfo`]); topology dispatch and
///   finalize events carry the stable topology uid and iteration index
///   ([`IterationInfo`]). This is what lets [`crate::profile`] stitch the
///   per-worker rings back into the executed DAG schedule.
/// * **v3** — adds the fault-tolerance lifecycle:
///   [`SchedEventKind::TaskSkipped`] (a node handed to a worker after its
///   topology was cancelled; its work never ran) and
///   [`SchedEventKind::TaskRetried`] (a panicked attempt re-armed and
///   re-executed under [`crate::Task::retry`], with the 1-based attempt
///   index).
/// * **v4** — dispatch/finalize events carry the tenant id of the
///   multi-tenant front door ([`IterationInfo::tenant`]; `0` =
///   untenanted), giving traces per-tenant lanes.
/// * **v5** — dispatch/finalize events carry the submit timestamp of the
///   tenant stint driving the topology ([`IterationInfo::submit_us`];
///   `0` = untenanted or latency pipeline disabled), anchoring each
///   stint's lifecycle decomposition in the trace's time domain.
pub const SCHED_EVENT_SCHEMA_VERSION: u32 = 5;

/// Identity of one task execution, attached to task begin/end events.
///
/// `node` is the address of the executed graph node: stable across
/// iterations for static nodes (the structure/state split re-arms the same
/// boxed nodes), fresh per iteration for dynamically spawned subflow
/// children (their subgraph is rebuilt every iteration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskSpanInfo {
    /// Stable id of the executed node (its address).
    pub node: u64,
    /// Id of the spawning parent for *joined* subflow children; `0` for
    /// top-level and detached nodes.
    pub parent: u64,
    /// Run id of the iteration this execution belongs to (matches
    /// [`IterationInfo::run`]).
    pub run: u64,
}

/// Identity of one topology iteration, attached to dispatch/finalize
/// events and passed to the topology observer hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterationInfo {
    /// Globally unique id of this iteration (fresh per re-arm).
    pub run: u64,
    /// Stable id of the topology, shared by every iteration of every
    /// `run`/`run_n`/`run_until` batch on the same frozen graph.
    pub topology: u64,
    /// 0-based index of this iteration within the topology's life.
    pub iteration: u64,
    /// Id of the tenant whose dispatch drives this stint of the topology
    /// (`0` = untenanted / direct submission). Schema v4.
    pub tenant: u64,
    /// Microseconds since [`crate::clock::origin`] when the driving
    /// tenant stint was submitted; `0` when the stint is untenanted or
    /// the latency pipeline is disabled
    /// ([`ExecutorBuilder::latency_histograms`](crate::ExecutorBuilder::latency_histograms)).
    /// Schema v5.
    pub submit_us: u64,
}

/// What happened, for one [`SchedEvent`].
///
/// The variants mirror Algorithm 1 of the paper: task execution (lines
/// 16–25), the exclusive-cache fast path, work stealing (line 3), parking
/// on the idler list (lines 5–13), wake-ups (targeted on submission,
/// probabilistic after a drained chain, lines 26–28), and topology
/// dispatch/finalize (§III-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedEventKind {
    /// A worker is about to invoke a task's callable (schema v2: carries
    /// the node identity so spans can be joined to the graph structure).
    TaskBegin {
        /// Identity of the execution (node, parent, run).
        span: TaskSpanInfo,
    },
    /// The task's callable returned (or panicked; the end still fires).
    TaskEnd {
        /// Identity of the execution (matches its [`TaskBegin`] event).
        ///
        /// [`TaskBegin`]: SchedEventKind::TaskBegin
        span: TaskSpanInfo,
    },
    /// The worker was handed a node whose topology had been cancelled:
    /// the task's work was **not** executed (no begin/end span is
    /// emitted), only its completion bookkeeping ran so the graph could
    /// drain. Schema v3.
    TaskSkipped,
    /// A task attempt panicked and the node was re-armed for another
    /// attempt under its [`crate::Task::retry`] budget. Schema v3.
    TaskRetried {
        /// 1-based index of the retry about to start (1 = second
        /// attempt overall).
        attempt: u32,
    },
    /// The next task came from the worker's exclusive cache slot — a
    /// linear-chain step that touched no queue.
    CacheHit,
    /// The worker stole a task from `victim`'s deque.
    Steal {
        /// Worker whose deque was robbed.
        victim: usize,
    },
    /// A full steal round (every victim plus the injector) found nothing.
    StealFail,
    /// The worker took a task from the external injector queue.
    InjectorPop,
    /// The worker is about to park on the idler list.
    Park,
    /// This thread woke a parked worker.
    Wake {
        /// The worker that was woken.
        woken: usize,
        /// `true` for submission-driven wakes, `false` for the
        /// probabilistic load-balancing wake after a drained chain.
        targeted: bool,
    },
    /// A topology iteration was dispatched to the executor. A reusable
    /// topology driven by `run_n`/`run_until` emits one dispatch event per
    /// iteration, each with a fresh run id but the same stable topology id.
    TopologyDispatch {
        /// Identity of the iteration (dispatch events carry
        /// [`DISPATCH_LANE`] in [`SchedEvent::worker`]).
        info: IterationInfo,
        /// Number of top-level tasks in the dispatched graph.
        tasks: usize,
    },
    /// The last task of a topology iteration completed.
    TopologyFinalize {
        /// Identity of the iteration (matches its dispatch event).
        info: IterationInfo,
    },
}

/// One recorded scheduler event.
#[derive(Debug, Clone)]
pub struct SchedEvent {
    /// Worker that recorded the event, or [`DISPATCH_LANE`] for events
    /// from non-worker threads (dispatch, finalize observed off-worker).
    pub worker: usize,
    /// Microseconds since the process-wide monotonic clock origin
    /// ([`crate::clock`]); every tracer, flight recorder, and profile
    /// export shares this one time domain.
    pub ts_us: u64,
    /// Label of the task involved, when the event concerns a task
    /// (entry/exit/cache hit); empty otherwise. Cloning a label is a
    /// reference-count bump, never an allocation.
    pub label: TaskLabel,
    /// What happened.
    pub kind: SchedEventKind,
}

/// Hooks invoked by the executor around every scheduling decision.
///
/// All hooks have empty default bodies, so an implementation overrides
/// only what it cares about. They run on the hot path behind a single
/// `has_observers` check; implementations must be cheap and thread-safe.
pub trait ExecutorObserver: Send + Sync {
    /// Called once when the observer is installed.
    fn on_observe(&self, _num_workers: usize) {}
    /// Called by worker `worker` immediately before invoking a task.
    fn on_entry(&self, _worker: usize, _label: &TaskLabel) {}
    /// Called by worker `worker` immediately after a task returns (also
    /// fires when the task panicked).
    fn on_exit(&self, _worker: usize, _label: &TaskLabel) {}
    /// Called by worker `worker` immediately before invoking a task, with
    /// the execution's identity (node, spawning parent, run id). The
    /// default forwards to [`ExecutorObserver::on_entry`], so observers
    /// that do not care about identity keep implementing the plain hook.
    fn on_task_begin(&self, worker: usize, label: &TaskLabel, _span: TaskSpanInfo) {
        self.on_entry(worker, label);
    }
    /// Called by worker `worker` immediately after a task returns (also
    /// fires on panic), with the execution's identity. The default
    /// forwards to [`ExecutorObserver::on_exit`].
    fn on_task_end(&self, worker: usize, label: &TaskLabel, _span: TaskSpanInfo) {
        self.on_exit(worker, label);
    }
    /// Called when `worker` skips a task because its topology was
    /// cancelled before the task started: the work closure never ran
    /// (so no begin/end pair fires), only completion bookkeeping.
    fn on_task_skipped(&self, _worker: usize, _label: &TaskLabel) {}
    /// Called when a panicked attempt of a task is about to be re-executed
    /// under its [`crate::Task::retry`] budget; `attempt` is 1-based (1 =
    /// second attempt overall). The task's begin/end pair brackets *all*
    /// attempts.
    fn on_task_retry(&self, _worker: usize, _label: &TaskLabel, _attempt: u32) {}
    /// Called when `worker` pulls its next task from the exclusive cache
    /// slot (speculative linear-chain execution; no queue traffic).
    fn on_cache_hit(&self, _worker: usize, _label: &TaskLabel) {}
    /// Called when `thief` successfully steals a task from `victim`.
    fn on_steal(&self, _thief: usize, _victim: usize) {}
    /// Called when a full steal round of `worker` (all victims plus the
    /// injector) comes back empty.
    fn on_steal_fail(&self, _worker: usize) {}
    /// Called when `worker` pops a task from the external injector queue.
    fn on_injector_pop(&self, _worker: usize) {}
    /// Called when `worker` is about to park on the idler list.
    fn on_park(&self, _worker: usize) {}
    /// Called when `waker` wakes the parked worker `woken`. `targeted` is
    /// `true` for submission-driven wakes and `false` for the
    /// probabilistic load-balancing wake; `waker` is [`DISPATCH_LANE`]
    /// when the wake came from a dispatching (non-worker) thread.
    fn on_wake(&self, _waker: usize, _woken: usize, _targeted: bool) {}
    /// Called when an iteration of a topology with `num_tasks` top-level
    /// tasks is handed to the executor — on the submitting thread for the
    /// first iteration of a batch, on the re-arming worker for later
    /// iterations of a reused topology. `info.run` is a fresh id per
    /// iteration; `info.topology` is stable across every iteration of the
    /// same frozen graph, so roll-ups can survive re-arms.
    fn on_topology_start(&self, _info: IterationInfo, _num_tasks: usize) {}
    /// Called by the finalizing worker when an iteration's last task
    /// completed; `info` matches the iteration's `on_topology_start`.
    fn on_topology_stop(&self, _info: IterationInfo) {}
}

/// Counts workers that are currently executing a task; sampling it over
/// time yields a utilization profile (Fig. 10 right of the paper).
#[derive(Default)]
pub struct BusyCounter {
    busy: AtomicUsize,
    executed: AtomicUsize,
}

impl BusyCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of workers executing a task right now.
    pub fn busy(&self) -> usize {
        self.busy.load(Ordering::Relaxed)
    }

    /// Total number of tasks executed since installation.
    pub fn executed(&self) -> usize {
        self.executed.load(Ordering::Relaxed)
    }
}

impl ExecutorObserver for BusyCounter {
    fn on_entry(&self, _worker: usize, _label: &TaskLabel) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }
    fn on_exit(&self, _worker: usize, _label: &TaskLabel) {
        self.busy.fetch_sub(1, Ordering::Relaxed);
        self.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Aggregated activity of one topology across every iteration and batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopologyAgg {
    /// Stable topology id ([`IterationInfo::topology`]).
    pub topology: u64,
    /// Iterations dispatched (`on_topology_start` calls).
    pub dispatched: u64,
    /// Iterations completed (`on_topology_stop` calls).
    pub completed: u64,
    /// Sum of top-level task counts across every dispatched iteration.
    pub tasks_dispatched: u64,
    /// Run id of the first observed iteration.
    pub first_run: u64,
    /// Run id of the most recently observed iteration.
    pub last_run: u64,
}

/// Rolls per-iteration topology events up into per-*topology* aggregates
/// that survive re-arms.
///
/// Each `run_n` iteration carries a fresh run id, so a consumer keying on
/// that id sees `n` unrelated topologies for one reused graph. This
/// observer keys on the stable [`IterationInfo::topology`] instead: every
/// iteration of every batch on the same frozen graph folds into a single
/// [`TopologyAgg`].
#[derive(Default)]
pub struct TopologyRollup {
    inner: Mutex<std::collections::HashMap<u64, TopologyAgg>>,
}

impl TopologyRollup {
    /// Creates an empty roll-up.
    pub fn new() -> Self {
        Self::default()
    }

    /// The aggregate for topology `uid`, if any iteration was observed.
    pub fn get(&self, uid: u64) -> Option<TopologyAgg> {
        self.inner.lock().get(&uid).cloned()
    }

    /// Every observed topology's aggregate, ordered by topology id.
    pub fn topologies(&self) -> Vec<TopologyAgg> {
        let mut v: Vec<TopologyAgg> = self.inner.lock().values().cloned().collect();
        v.sort_by_key(|a| a.topology);
        v
    }
}

impl ExecutorObserver for TopologyRollup {
    fn on_topology_start(&self, info: IterationInfo, num_tasks: usize) {
        let mut map = self.inner.lock();
        let agg = map.entry(info.topology).or_insert_with(|| TopologyAgg {
            topology: info.topology,
            first_run: info.run,
            ..TopologyAgg::default()
        });
        agg.dispatched += 1;
        agg.tasks_dispatched += num_tasks as u64;
        agg.last_run = info.run;
    }
    fn on_topology_stop(&self, info: IterationInfo) {
        let mut map = self.inner.lock();
        let agg = map.entry(info.topology).or_insert_with(|| TopologyAgg {
            topology: info.topology,
            first_run: info.run,
            ..TopologyAgg::default()
        });
        agg.completed += 1;
        agg.last_run = info.run;
    }
}

/// One recorded task execution, paired from entry/exit events.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Worker that executed the task.
    pub worker: usize,
    /// Task name (empty if unnamed).
    pub name: String,
    /// Microseconds since the shared monotonic clock origin, at entry.
    pub begin_us: u64,
    /// Microseconds since the shared monotonic clock origin, at exit.
    pub end_us: u64,
}

/// Default ring capacity per lane (events).
const DEFAULT_LANE_CAPACITY: usize = 1 << 15;

/// Records the full scheduler lifecycle into per-worker event rings.
///
/// The record path touches only the recording worker's own ring — no lock
/// is shared between workers, so tracing perturbs the schedule far less
/// than a global mutex would (and never blocks). Rings have fixed
/// capacity; when one fills up, further events on that lane are counted
/// in [`Tracer::dropped`] and discarded until [`Tracer::collect`] (or any
/// exporter, which collects implicitly) drains them into the archive.
pub struct Tracer {
    /// One ring per worker plus a final lane for non-worker threads.
    lanes: Box<[EventRing]>,
    /// Drained events, ordered by timestamp after `collect`.
    archive: Mutex<Vec<SchedEvent>>,
    /// On ring overflow: drop-and-count (`true`) instead of the default
    /// collect-and-retry. See [`Tracer::lossy`].
    lossy: bool,
}

impl Tracer {
    /// Creates a tracer for up to `max_workers` workers with the default
    /// per-lane capacity (32768 events).
    pub fn new(max_workers: usize) -> Self {
        Tracer::with_capacity(max_workers, DEFAULT_LANE_CAPACITY)
    }

    /// Creates a tracer whose per-worker rings hold `lane_capacity`
    /// events (rounded up to a power of two).
    pub fn with_capacity(max_workers: usize, lane_capacity: usize) -> Self {
        Tracer {
            lanes: (0..=max_workers)
                .map(|_| EventRing::new(lane_capacity))
                .collect(),
            archive: Mutex::new(Vec::new()),
            lossy: false,
        }
    }

    /// Switches overflow handling from collect-and-retry to
    /// drop-and-count: when a lane's ring is full the event is discarded
    /// and charged to [`Tracer::dropped`] instead of draining every lane
    /// into the archive from the recording worker. Completeness-oriented
    /// exporters want the default; an always-on consumer with its own
    /// drain cadence (the live-introspection collector) wants this, so
    /// a saturated ring costs the worker nothing but a counter bump —
    /// the loss is then surfaced by the ring-saturation watchdog signal.
    pub fn lossy(mut self) -> Self {
        self.lossy = true;
        self
    }

    /// Timestamps are microseconds since the process-wide monotonic origin
    /// ([`crate::clock`]), so every tracer — and every executor's flight
    /// recorder and profile export — shares one time domain.
    fn now_us(&self) -> u64 {
        crate::clock::now_us()
    }

    /// Number of worker lanes (excluding the dispatch lane).
    pub fn num_lanes(&self) -> usize {
        self.lanes.len() - 1
    }

    /// Capacity of each lane's ring, in events.
    pub fn lane_capacity(&self) -> usize {
        self.lanes[0].capacity()
    }

    /// Events discarded because a lane's ring was full.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped()).sum()
    }

    /// Events discarded per lane: one entry per worker, then the dispatch
    /// lane. Backs the per-worker `rustflow_ring_dropped_events_total`
    /// counter — overflow is no longer visible only as a crate-wide sum.
    pub fn dropped_per_lane(&self) -> Vec<u64> {
        self.lanes.iter().map(|l| l.dropped()).collect()
    }

    /// Approximate fill level of each lane's ring, in events (same order
    /// as [`Tracer::dropped_per_lane`]). Advisory; used by the watchdog
    /// to flag rings saturating between collection passes.
    pub fn lane_fill(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.len()).collect()
    }

    /// Drains every lane **and** the archive, returning all events
    /// recorded since the previous drain, ordered by timestamp. This is
    /// the collector-thread feed for the flight recorder: unlike
    /// [`Tracer::sched_events`] it empties the archive, so the tracer's
    /// own memory stays bounded on long-lived executors.
    pub fn drain_events(&self) -> Vec<SchedEvent> {
        self.collect();
        std::mem::take(&mut *self.archive.lock())
    }

    #[inline]
    fn record(&self, worker: usize, label: TaskLabel, kind: SchedEventKind) {
        let lane = worker.min(self.lanes.len() - 1);
        let event = SchedEvent {
            worker,
            ts_us: self.now_us(),
            label,
            kind,
        };
        if let Err(event) = self.lanes[lane].try_push(event) {
            if self.lossy {
                // Off-hot-path consumers (the introspection collector)
                // drain on their own cadence; never stall the worker on
                // the archive lock for them.
                self.lanes[lane].note_drop();
                return;
            }
            // Full ring: drain everything into the archive and retry once,
            // so an overflowing lane degrades into a one-off collect (a
            // short stall for this worker) instead of silently losing the
            // event — final task-end events in particular must stay
            // visible to readers (`Tracer::collect` on finalize relies on
            // this too).
            self.collect();
            if let Err(_lost) = self.lanes[lane].try_push(event) {
                self.lanes[lane].note_drop();
            }
        }
    }

    /// Drains every lane into the internal archive and re-sorts it by
    /// timestamp. Call periodically during long runs to keep the
    /// fixed-capacity rings from overflowing; every exporter calls it
    /// implicitly.
    pub fn collect(&self) {
        let mut archive = self.archive.lock();
        let before = archive.len();
        for lane in self.lanes.iter() {
            if lane.is_empty() {
                continue;
            }
            lane.drain_into(&mut archive);
        }
        if archive.len() > before {
            archive.sort_by_key(|e| e.ts_us);
        }
    }

    /// All recorded scheduler events, ordered by timestamp (collects
    /// first; does not drain the archive).
    pub fn sched_events(&self) -> Vec<SchedEvent> {
        self.collect();
        self.archive.lock().clone()
    }

    /// Events already flushed to the archive, **without** draining the
    /// lane rings first. Topology finalize flushes implicitly, so after a
    /// run resolves this view already holds the iteration's final
    /// task-end — a reader never observes a truncated schedule even if
    /// the executor is dropped right after.
    pub fn archived_events(&self) -> Vec<SchedEvent> {
        self.archive.lock().clone()
    }

    /// Drains the recorded events, paired into one [`TraceEvent`] per
    /// task execution. Non-task events (steals, parks, wakes…) are
    /// dropped by this compatibility view; use [`Tracer::sched_events`]
    /// or [`Tracer::chrome_trace_json`] to see them.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.collect();
        let drained = std::mem::take(&mut *self.archive.lock());
        let mut open: std::collections::HashMap<usize, Vec<(TaskLabel, u64)>> =
            std::collections::HashMap::new();
        let mut out = Vec::new();
        for e in drained {
            match e.kind {
                SchedEventKind::TaskBegin { .. } => {
                    open.entry(e.worker).or_default().push((e.label, e.ts_us));
                }
                SchedEventKind::TaskEnd { .. } => {
                    let matched = open.get_mut(&e.worker).and_then(|v| v.pop());
                    let (label, begin) = matched.unwrap_or((e.label, e.ts_us));
                    out.push(TraceEvent {
                        worker: e.worker,
                        name: label.to_string(),
                        begin_us: begin,
                        end_us: e.ts_us,
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Renders every recorded event as a Chrome trace (`chrome://tracing`
    /// / Perfetto JSON array format): one lane (`tid`) per worker plus a
    /// dispatch lane. Task executions become complete (`"X"`) events;
    /// parks become complete events lasting until the lane's next event;
    /// cache hits, steals, wakes and topology milestones become instants
    /// (`"i"`). Collects first; does not drain, so it can be called
    /// repeatedly. All names are JSON-escaped.
    pub fn chrome_trace_json(&self) -> String {
        self.collect();
        let archive = self.archive.lock();
        chrome_trace_json_from(&archive, self.num_lanes())
    }
}

/// Renders a slice of scheduler events as a Chrome trace (same format as
/// [`Tracer::chrome_trace_json`]): task executions become complete
/// (`"X"`) events, parks last until the lane's next event, everything
/// else becomes an instant. `num_workers` assigns the dispatch lane its
/// `tid`. `events` must be ordered by timestamp (exporters sort before
/// calling). This is the shared back-end of the tracer export and the
/// flight recorder's live `/trace` window.
pub fn chrome_trace_json_from(events: &[SchedEvent], num_workers: usize) -> String {
    {
        let archive = events;
        let nworkers = num_workers;
        let tid = |w: usize| if w == DISPATCH_LANE { nworkers } else { w };

        // For park durations: index of the next event on the same lane.
        let mut next_on_lane: Vec<Option<u64>> = vec![None; archive.len()];
        {
            let mut last_seen: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for (i, e) in archive.iter().enumerate() {
                if let Some(prev) = last_seen.insert(e.worker, i) {
                    next_on_lane[prev] = Some(e.ts_us);
                }
            }
        }

        let mut open: std::collections::HashMap<usize, Vec<(usize, u64)>> =
            std::collections::HashMap::new();
        let mut out = String::with_capacity(64 + archive.len() * 96);
        out.push('[');
        let mut first = true;
        let mut emit = |s: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(s);
        };
        for (i, e) in archive.iter().enumerate() {
            let t = tid(e.worker);
            match &e.kind {
                SchedEventKind::TaskBegin { .. } => {
                    open.entry(e.worker).or_default().push((i, e.ts_us));
                }
                SchedEventKind::TaskEnd { .. } => {
                    let (bi, begin) = open
                        .get_mut(&e.worker)
                        .and_then(|v| v.pop())
                        .unwrap_or((i, e.ts_us));
                    let label = &archive[bi].label;
                    let name = if label.is_empty() {
                        String::from("(task)")
                    } else {
                        escape_json(label)
                    };
                    emit(&format!(
                        "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                        name,
                        begin,
                        e.ts_us.saturating_sub(begin).max(1),
                        t
                    ));
                }
                SchedEventKind::Park => {
                    let dur = next_on_lane[i]
                        .map(|n| n.saturating_sub(e.ts_us))
                        .unwrap_or(0)
                        .max(1);
                    emit(&format!(
                        "{{\"name\":\"park\",\"cat\":\"idle\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                        e.ts_us, dur, t
                    ));
                }
                SchedEventKind::CacheHit => {
                    emit(&format!(
                        "{{\"name\":\"cache-hit\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"task\":\"{}\"}}}}",
                        e.ts_us,
                        t,
                        escape_json(&e.label)
                    ));
                }
                SchedEventKind::TaskSkipped => {
                    emit(&format!(
                        "{{\"name\":\"task-skipped\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"task\":\"{}\"}}}}",
                        e.ts_us,
                        t,
                        escape_json(&e.label)
                    ));
                }
                SchedEventKind::TaskRetried { attempt } => {
                    emit(&format!(
                        "{{\"name\":\"task-retried\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"task\":\"{}\",\"attempt\":{}}}}}",
                        e.ts_us,
                        t,
                        escape_json(&e.label),
                        attempt
                    ));
                }
                SchedEventKind::Steal { victim } => {
                    emit(&format!(
                        "{{\"name\":\"steal\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"victim\":{}}}}}",
                        e.ts_us, t, victim
                    ));
                }
                SchedEventKind::StealFail => {
                    emit(&format!(
                        "{{\"name\":\"steal-fail\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                        e.ts_us, t
                    ));
                }
                SchedEventKind::InjectorPop => {
                    emit(&format!(
                        "{{\"name\":\"injector-pop\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{}}}",
                        e.ts_us, t
                    ));
                }
                SchedEventKind::Wake { woken, targeted } => {
                    emit(&format!(
                        "{{\"name\":\"wake\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"woken\":{},\"targeted\":{}}}}}",
                        e.ts_us, t, woken, targeted
                    ));
                }
                SchedEventKind::TopologyDispatch { info, tasks } => {
                    // Tenanted dispatches get their own lane past the
                    // dispatch lane (tid = nworkers + tenant id), so each
                    // tenant's submission stream reads as one track.
                    let t = if info.tenant != 0 {
                        nworkers + info.tenant as usize
                    } else {
                        t
                    };
                    emit(&format!(
                        "{{\"name\":\"topology-dispatch\",\"cat\":\"topology\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"topology\":{},\"run\":{},\"iteration\":{},\"tasks\":{},\"tenant\":{}}}}}",
                        e.ts_us, t, info.topology, info.run, info.iteration, tasks, info.tenant
                    ));
                }
                SchedEventKind::TopologyFinalize { info } => {
                    let t = if info.tenant != 0 {
                        nworkers + info.tenant as usize
                    } else {
                        t
                    };
                    emit(&format!(
                        "{{\"name\":\"topology-finalize\",\"cat\":\"topology\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"topology\":{},\"run\":{},\"iteration\":{},\"tenant\":{}}}}}",
                        e.ts_us, t, info.topology, info.run, info.iteration, info.tenant
                    ));
                }
            }
        }
        out.push(']');
        out
    }
}

impl ExecutorObserver for Tracer {
    fn on_entry(&self, worker: usize, label: &TaskLabel) {
        // Identity-less compatibility path (direct calls, custom drivers);
        // the executor always uses `on_task_begin`.
        self.on_task_begin(worker, label, TaskSpanInfo::default());
    }
    fn on_exit(&self, worker: usize, label: &TaskLabel) {
        self.on_task_end(worker, label, TaskSpanInfo::default());
    }
    fn on_task_begin(&self, worker: usize, label: &TaskLabel, span: TaskSpanInfo) {
        self.record(worker, label.clone(), SchedEventKind::TaskBegin { span });
    }
    fn on_task_end(&self, worker: usize, label: &TaskLabel, span: TaskSpanInfo) {
        self.record(worker, label.clone(), SchedEventKind::TaskEnd { span });
    }
    fn on_cache_hit(&self, worker: usize, label: &TaskLabel) {
        self.record(worker, label.clone(), SchedEventKind::CacheHit);
    }
    fn on_task_skipped(&self, worker: usize, label: &TaskLabel) {
        self.record(worker, label.clone(), SchedEventKind::TaskSkipped);
    }
    fn on_task_retry(&self, worker: usize, label: &TaskLabel, attempt: u32) {
        self.record(
            worker,
            label.clone(),
            SchedEventKind::TaskRetried { attempt },
        );
    }
    fn on_steal(&self, thief: usize, victim: usize) {
        self.record(thief, TaskLabel::empty(), SchedEventKind::Steal { victim });
    }
    fn on_steal_fail(&self, worker: usize) {
        self.record(worker, TaskLabel::empty(), SchedEventKind::StealFail);
    }
    fn on_injector_pop(&self, worker: usize) {
        self.record(worker, TaskLabel::empty(), SchedEventKind::InjectorPop);
    }
    fn on_park(&self, worker: usize) {
        self.record(worker, TaskLabel::empty(), SchedEventKind::Park);
    }
    fn on_wake(&self, waker: usize, woken: usize, targeted: bool) {
        self.record(
            waker,
            TaskLabel::empty(),
            SchedEventKind::Wake { woken, targeted },
        );
    }
    fn on_topology_start(&self, info: IterationInfo, num_tasks: usize) {
        self.record(
            DISPATCH_LANE,
            TaskLabel::empty(),
            SchedEventKind::TopologyDispatch {
                info,
                tasks: num_tasks,
            },
        );
    }
    fn on_topology_stop(&self, info: IterationInfo) {
        self.record(
            DISPATCH_LANE,
            TaskLabel::empty(),
            SchedEventKind::TopologyFinalize { info },
        );
        // Flush on finalize: a reader holding only the archive (e.g. an
        // exporter racing `Executor::drop`) must see every event of the
        // iteration that just ended, including its last task-end.
        self.collect();
    }
}

/// Escapes `s` for inclusion inside a JSON string literal: `"` and `\`
/// are backslash-escaped and control characters become `\n`/`\r`/`\t` or
/// `\u00XX` sequences.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(s: &str) -> TaskLabel {
        TaskLabel::new(s)
    }

    #[test]
    fn busy_counter_tracks_entries_and_exits() {
        let c = BusyCounter::new();
        c.on_entry(0, &label("a"));
        c.on_entry(1, &label("b"));
        assert_eq!(c.busy(), 2);
        c.on_exit(0, &label("a"));
        assert_eq!(c.busy(), 1);
        assert_eq!(c.executed(), 1);
        c.on_exit(1, &label("b"));
        assert_eq!(c.busy(), 0);
        assert_eq!(c.executed(), 2);
    }

    #[test]
    fn tracer_records_matched_events() {
        let t = Tracer::new(2);
        t.on_entry(0, &label("x"));
        t.on_exit(0, &label("x"));
        t.on_entry(1, &label("y"));
        t.on_exit(1, &label("y"));
        let events = t.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "x");
        assert!(events[0].end_us >= events[0].begin_us);
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn tracer_keeps_lifecycle_events() {
        let t = Tracer::new(2);
        t.on_steal(1, 0);
        t.on_steal_fail(1);
        t.on_injector_pop(0);
        t.on_park(1);
        t.on_wake(0, 1, true);
        t.on_cache_hit(0, &label("c"));
        let info = IterationInfo {
            run: 7,
            topology: 1,
            iteration: 0,
            tenant: 0,
            submit_us: 0,
        };
        t.on_topology_start(info, 3);
        t.on_topology_stop(info);
        let events = t.sched_events();
        assert_eq!(events.len(), 8);
        assert!(events
            .iter()
            .any(|e| e.kind == SchedEventKind::Steal { victim: 0 }));
        assert!(events
            .iter()
            .any(|e| e.kind == SchedEventKind::TopologyDispatch { info, tasks: 3 }));
        // The compat view keeps only task executions.
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let t = Tracer::new(2);
        t.on_entry(0, &label("alpha"));
        t.on_exit(0, &label("alpha"));
        t.on_entry(1, &label("beta"));
        t.on_exit(1, &label("beta"));
        t.on_steal(1, 0);
        t.on_park(1);
        t.on_wake(0, 1, false);
        let json = t.chrome_trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"name\":\"steal\""));
        assert!(json.contains("\"name\":\"park\""));
        assert!(json.contains("\"name\":\"wake\""));
        assert!(json.contains("\"tid\":1"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3); // 2 tasks + park
                                                             // take_events still returns the tasks (export is non-draining).
        assert_eq!(t.take_events().len(), 2);
    }

    #[test]
    fn tracer_tolerates_unmatched_exit() {
        let t = Tracer::new(1);
        t.on_exit(0, &label("ghost"));
        let events = t.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].begin_us, events[0].end_us);
        assert_eq!(events[0].name, "ghost");
    }

    #[test]
    fn json_escaping_handles_quotes_backslashes_and_controls() {
        // Satellite regression: the seed exporter stripped these chars.
        let nasty = "a\"b\n\t\\c";
        assert_eq!(escape_json(nasty), "a\\\"b\\n\\t\\\\c");
        assert_eq!(escape_json("\u{1}"), "\\u0001");

        let t = Tracer::new(1);
        t.on_entry(0, &label(nasty));
        t.on_exit(0, &label(nasty));
        let json = t.chrome_trace_json();
        assert!(json.contains("a\\\"b\\n\\t\\\\c"));
        // No raw (unescaped) quote inside the name.
        assert!(!json.contains("a\"b"));
    }

    #[test]
    fn overflow_flushes_to_archive_instead_of_dropping() {
        // Pre-PR4 behavior: events 9..20 were silently discarded. The
        // record path now drains the full lane into the archive and
        // retries, so a burst larger than the ring survives intact.
        let t = Tracer::with_capacity(1, 8);
        for _ in 0..20 {
            t.on_park(0);
        }
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.sched_events().len(), 20);
    }

    #[test]
    fn rollup_folds_iterations_of_one_topology() {
        let r = TopologyRollup::new();
        for iteration in 0..5 {
            // Fresh run id per iteration, stable topology uid — exactly
            // what the executor reports for `run_n(5)`.
            let info = IterationInfo {
                run: 100 + iteration,
                topology: 42,
                iteration,
                tenant: 0,
                submit_us: 0,
            };
            r.on_topology_start(info, 3);
            r.on_topology_stop(info);
        }
        let aggs = r.topologies();
        assert_eq!(aggs.len(), 1, "5 iterations roll up into 1 topology");
        let agg = &aggs[0];
        assert_eq!(agg.topology, 42);
        assert_eq!(agg.dispatched, 5);
        assert_eq!(agg.completed, 5);
        assert_eq!(agg.tasks_dispatched, 15);
        assert_eq!(agg.first_run, 100);
        assert_eq!(agg.last_run, 104);
        assert_eq!(r.get(42).unwrap(), aggs[0]);
        assert!(r.get(7).is_none());
    }

    #[test]
    fn collect_between_bursts_prevents_loss() {
        let t = Tracer::with_capacity(1, 8);
        for _ in 0..8 {
            t.on_park(0);
        }
        t.collect();
        for _ in 0..8 {
            t.on_park(0);
        }
        assert_eq!(t.sched_events().len(), 16);
        assert_eq!(t.dropped(), 0);
    }
}
