//! Executor observers: hooks around task execution.
//!
//! Cpp-Taskflow exposes an `ExecutorObserverInterface` so tools can watch
//! the scheduler without touching it; we use the same design to produce
//! the CPU-utilization profile of Figure 10 (right) and execution traces.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Hooks invoked by every worker around each task it executes.
///
/// Implementations must be cheap and thread-safe; they run on the hot path.
pub trait ExecutorObserver: Send + Sync {
    /// Called once when the observer is installed.
    fn on_observe(&self, _num_workers: usize) {}
    /// Called by worker `worker` immediately before invoking a task.
    fn on_entry(&self, _worker: usize, _task_name: &str) {}
    /// Called by worker `worker` immediately after a task returns.
    fn on_exit(&self, _worker: usize, _task_name: &str) {}
}

/// Counts workers that are currently executing a task; sampling it over
/// time yields a utilization profile (Fig. 10 right of the paper).
#[derive(Default)]
pub struct BusyCounter {
    busy: AtomicUsize,
    executed: AtomicUsize,
}

impl BusyCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of workers executing a task right now.
    pub fn busy(&self) -> usize {
        self.busy.load(Ordering::Relaxed)
    }

    /// Total number of tasks executed since installation.
    pub fn executed(&self) -> usize {
        self.executed.load(Ordering::Relaxed)
    }
}

impl ExecutorObserver for BusyCounter {
    fn on_entry(&self, _worker: usize, _task_name: &str) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }
    fn on_exit(&self, _worker: usize, _task_name: &str) {
        self.busy.fetch_sub(1, Ordering::Relaxed);
        self.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// One recorded task execution.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Worker that executed the task.
    pub worker: usize,
    /// Task name (empty if unnamed).
    pub name: String,
    /// Microseconds since the tracer was installed.
    pub begin_us: u64,
    /// Microseconds since the tracer was installed, at task exit.
    pub end_us: u64,
}

/// Records every task execution with timestamps; useful for debugging and
/// for offline schedule visualization. Heavier than [`BusyCounter`].
pub struct Tracer {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    // Per-worker open entry timestamps (worker executes one task at a time).
    open: Box<[Mutex<Option<(String, u64)>>]>,
}

impl Tracer {
    /// Creates a tracer able to track up to `max_workers` workers.
    pub fn new(max_workers: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            open: (0..max_workers).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Drains the recorded events.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Renders the recorded events as a Chrome trace (`chrome://tracing`
    /// / Perfetto JSON array format): one complete event per task, one
    /// lane per worker. Does not drain the events.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push('[');
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                e.name.replace('\\', "").replace('"', ""),
                e.begin_us,
                e.end_us.saturating_sub(e.begin_us).max(1),
                e.worker
            ));
        }
        out.push(']');
        out
    }
}

impl ExecutorObserver for Tracer {
    fn on_entry(&self, worker: usize, task_name: &str) {
        if let Some(slot) = self.open.get(worker) {
            *slot.lock() = Some((task_name.to_string(), self.now_us()));
        }
    }

    fn on_exit(&self, worker: usize, task_name: &str) {
        let end = self.now_us();
        if let Some(slot) = self.open.get(worker) {
            if let Some((name, begin)) = slot.lock().take() {
                self.events.lock().push(TraceEvent {
                    worker,
                    name,
                    begin_us: begin,
                    end_us: end,
                });
                return;
            }
        }
        // Unmatched exit (shouldn't happen); record zero-length event.
        self.events.lock().push(TraceEvent {
            worker,
            name: task_name.to_string(),
            begin_us: end,
            end_us: end,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_counter_tracks_entries_and_exits() {
        let c = BusyCounter::new();
        c.on_entry(0, "a");
        c.on_entry(1, "b");
        assert_eq!(c.busy(), 2);
        c.on_exit(0, "a");
        assert_eq!(c.busy(), 1);
        assert_eq!(c.executed(), 1);
        c.on_exit(1, "b");
        assert_eq!(c.busy(), 0);
        assert_eq!(c.executed(), 2);
    }

    #[test]
    fn tracer_records_matched_events() {
        let t = Tracer::new(2);
        t.on_entry(0, "x");
        t.on_exit(0, "x");
        t.on_entry(1, "y");
        t.on_exit(1, "y");
        let events = t.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "x");
        assert!(events[0].end_us >= events[0].begin_us);
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let t = Tracer::new(2);
        t.on_entry(0, "alpha");
        t.on_exit(0, "alpha");
        t.on_entry(1, "beta");
        t.on_exit(1, "beta");
        let json = t.chrome_trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"tid\":1"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // take_events still returns everything (export is non-draining).
        assert_eq!(t.take_events().len(), 2);
    }

    #[test]
    fn tracer_tolerates_unmatched_exit() {
        let t = Tracer::new(1);
        t.on_exit(0, "ghost");
        let events = t.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].begin_us, events[0].end_us);
    }
}
