//! Dependency-free embedded HTTP server for the introspection endpoints.
//!
//! A single acceptor thread on a blocking [`std::net::TcpListener`] (set
//! non-blocking so shutdown is prompt), answering one request per
//! connection:
//!
//! * `GET /metrics` — Prometheus text exposition
//! * `GET /status`  — JSON snapshot of workers and topologies
//! * `GET /trace?last_ms=N` — Chrome-trace JSON from the flight recorder
//!
//! This is deliberately not a web framework: HTTP/1.1, `GET` only,
//! `Connection: close`, bounded request size, one-second socket
//! timeouts. Scrapers (Prometheus, `curl`) need nothing more, and the
//! whole server stays inside the standard library.

use super::IntrospectState;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Largest request head we accept; scrape requests are a few hundred
/// bytes, so anything bigger is a client error.
const MAX_REQUEST: usize = 8 * 1024;

const SOCKET_TIMEOUT: Duration = Duration::from_secs(1);

/// Acceptor loop; runs on its own thread until the executor shuts the
/// introspection state down.
pub(crate) fn serve(listener: TcpListener, state: Arc<IntrospectState>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !state.stopped() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: responses are cheap snapshots and scrape
                // concurrency is low, so a thread-per-connection pool
                // would buy nothing but shutdown complexity.
                let _ = handle(stream, &state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle(mut stream: TcpStream, state: &Arc<IntrospectState>) -> std::io::Result<()> {
    // The accepted socket inherits the listener's non-blocking flag on
    // some platforms; force blocking with timeouts for simple I/O.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;

    let head = match read_head(&mut stream) {
        Ok(h) => h,
        Err(_) => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    let mut parts = head.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET is supported\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &state.metrics_text(),
        ),
        "/status" => respond(&mut stream, 200, "application/json", &state.status_json()),
        "/trace" => {
            // An absent `last_ms` means the full retention window; a
            // *present but unparsable* one is a client error — serving
            // the full window for `last_ms=5oo` would silently hand back
            // far more (or different) data than the scraper asked for.
            let last = match query_param(query, "last_ms") {
                None => Duration::MAX,
                Some(raw) => match raw.parse::<u64>() {
                    Ok(ms) => Duration::from_millis(ms),
                    Err(_) => {
                        let body = format!(
                            "{{\"error\":\"last_ms must be a non-negative integer, got \\\"{}\\\"\"}}\n",
                            crate::observer::escape_json(raw)
                        );
                        return respond(&mut stream, 400, "application/json", &body);
                    }
                },
            };
            respond(
                &mut stream,
                200,
                "application/json",
                &state.trace_json(last),
            )
        }
        _ => respond(
            &mut stream,
            404,
            "text/plain",
            "rustflow introspection: /metrics /status /trace?last_ms=N\n",
        ),
    }
}

/// Reads the request head (through the blank line); the routes take no
/// bodies, so anything after it is ignored.
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("").to_string();
    if line.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "empty request",
        ));
    }
    Ok(line)
}

fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
