//! Live introspection: an always-on collector, embedded HTTP endpoints,
//! a flight recorder, and a stall watchdog.
//!
//! Everything here is **off until asked for**. Calling
//! [`Executor::serve_introspection`](crate::Executor::serve_introspection)
//! (or [`start_introspection`](crate::Executor::start_introspection) for
//! the in-process API without a socket) installs a dedicated
//! [`Tracer`] as an observer, flips one executor-wide flag, and spawns:
//!
//! * a **collector thread** that every [`IntrospectConfig::collect_period`]
//!   drains the per-worker event rings into a bounded, time-windowed
//!   [flight recorder](recorder) and runs the [watchdog] sweep;
//! * optionally an **HTTP acceptor** ([server]) exposing `GET /metrics`
//!   (Prometheus text), `GET /status` (JSON scheduler snapshot), and
//!   `GET /trace?last_ms=N` (Chrome-trace JSON of the recent window).
//!
//! The only hot-path costs while enabled are the ring pushes the tracer
//! already paid for under any observer, plus one relaxed flag load and a
//! per-task `Mutex<Option<CurrentTask>>` store publishing what each
//! worker is running (uncontended except when a scrape reads it). With
//! introspection off, the flag load is all that remains.
//!
//! All timestamps across `/status`, `/trace`, ring events, and profiler
//! spans share one process-wide monotonic origin ([`crate::clock`]), so
//! readings from different endpoints can be correlated directly.

mod recorder;
mod server;
mod watchdog;

pub use watchdog::{WatchdogCounts, WatchdogDiagnostic};

use crate::executor::{Executor, Inner};
use crate::label::TaskLabel;
use crate::observer::{chrome_trace_json_from, escape_json, ExecutorObserver, Tracer};
use crate::stats::ExecutorStats;
use parking_lot::Mutex;
use recorder::FlightRecorder;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use watchdog::{Watchdog, WatchdogPass};

/// What a worker is running *right now*; published into
/// `WorkerShared.current` at task entry and cleared at exit, read by
/// `/status` and the worker-stall watchdog.
#[derive(Debug, Clone)]
pub(crate) struct CurrentTask {
    /// The task's label (cloning is a refcount bump).
    pub(crate) label: TaskLabel,
    /// Opaque node id (stable for the topology's lifetime).
    pub(crate) node: u64,
    /// Uid of the topology the task belongs to.
    pub(crate) topology: u64,
    /// Task entry time, µs since the process clock origin.
    pub(crate) since_us: u64,
}

/// Tuning knobs for the introspection service.
///
/// The defaults keep a ten-second flight-recorder window under a fixed
/// ~9 MiB budget and detect stalls within about a second; see
/// `DESIGN.md` for the budget math.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct IntrospectConfig {
    /// How often the collector drains the event rings and runs the
    /// watchdog sweep.
    pub collect_period: Duration,
    /// Flight-recorder retention window: `/trace` can look back at most
    /// this far.
    pub window: Duration,
    /// Flight-recorder memory budget, in events; the oldest events are
    /// evicted (and counted) beyond it.
    pub max_events: usize,
    /// A worker stuck in one task invocation — or a dispatched topology
    /// frozen while the executor is idle — for at least this long trips
    /// the watchdog.
    pub stall_threshold: Duration,
    /// Capacity of each per-worker event ring, in events (rounded up to
    /// a power of two).
    pub ring_capacity: usize,
}

impl Default for IntrospectConfig {
    fn default() -> IntrospectConfig {
        IntrospectConfig {
            collect_period: Duration::from_millis(100),
            window: Duration::from_secs(10),
            max_events: 1 << 17,
            stall_threshold: Duration::from_secs(1),
            ring_capacity: 1 << 15,
        }
    }
}

/// Shared introspection state: the tracer feeding the flight recorder,
/// the watchdog, and the renderers behind every endpoint.
///
/// Holds the executor core only weakly — the executor owns *us* (via
/// `Inner.introspect`), so a strong reference would leak the whole
/// scheduler.
pub(crate) struct IntrospectState {
    inner: Weak<Inner>,
    num_workers: usize,
    tracer: Arc<Tracer>,
    recorder: FlightRecorder,
    watchdog: Watchdog,
    /// Serializes collection passes and owns watchdog bookkeeping.
    pass: Mutex<WatchdogPass>,
    /// Previous `/status` scrape's counters, for since-last-scrape deltas.
    last_scrape: Mutex<Vec<crate::stats::WorkerStats>>,
    stop: AtomicBool,
    local_addr: Option<SocketAddr>,
    config: IntrospectConfig,
}

impl IntrospectState {
    /// The tracer installed as this executor's introspection observer.
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The watchdog, for diagnostic sources outside the collection pass
    /// (the executor's breaker transitions).
    pub(crate) fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Asks the collector and HTTP threads to exit (the executor joins
    /// them in its `Drop`).
    pub(crate) fn request_stop(&self) {
        // ORDERING: Release publishes all pre-stop state (final ring
        // drains, flight-recorder writes) to the exiting threads.
        self.stop.store(true, Ordering::Release);
    }

    pub(crate) fn stopped(&self) -> bool {
        // ORDERING: Acquire pairs with `request_stop`'s Release.
        self.stop.load(Ordering::Acquire)
    }

    /// One synchronous collection pass, if the executor is still alive.
    fn collect_pass(&self) {
        if let Some(inner) = self.inner.upgrade() {
            self.collect_pass_with(&inner);
        }
    }

    /// Drain rings → flight recorder, then run the watchdog sweep.
    fn collect_pass_with(&self, inner: &Inner) {
        let mut pass = self.pass.lock();
        let now = crate::clock::now_us();
        self.recorder.absorb(self.tracer.drain_events(), now);
        watchdog::check(
            &mut pass,
            &self.watchdog,
            inner,
            &self.tracer,
            self.config.stall_threshold.as_micros() as u64,
            now,
        );
    }

    /// The `/metrics` body: worker counters plus live gauges and the
    /// introspection-specific families.
    pub(crate) fn metrics_text(&self) -> String {
        let Some(inner) = self.inner.upgrade() else {
            return String::new();
        };
        let stats = ExecutorStats {
            workers: inner.worker_stats(),
            tenants: inner.tenant_stats(),
        };
        let mut out = stats.prometheus_text();
        let depths: Vec<(Option<usize>, u64)> = inner
            .shareds
            .iter()
            .enumerate()
            .map(|(w, s)| (Some(w), s.stealer.len() as u64))
            .collect();
        family(
            &mut out,
            "rustflow_queue_depth",
            "Tasks currently queued in each worker's deque.",
            "gauge",
            &depths,
        );
        let fills: Vec<(Option<usize>, u64)> = self
            .tracer
            .lane_fill()
            .into_iter()
            .take(self.num_workers)
            .enumerate()
            .map(|(w, n)| (Some(w), n as u64))
            .collect();
        family(
            &mut out,
            "rustflow_ring_fill",
            "Telemetry events waiting in each worker's ring.",
            "gauge",
            &fills,
        );
        let singles: &[(&str, &str, &str, u64)] = &[
            (
                "rustflow_injector_depth",
                "Tasks waiting in the external injector queue.",
                "gauge",
                inner.injector.len() as u64,
            ),
            (
                "rustflow_injector_spills_total",
                "Dispatch bursts that overflowed the injector ring into its mutexed side queue.",
                "counter",
                inner.injector.spilled_total(),
            ),
            (
                "rustflow_parked_workers",
                "Workers currently parked on the idler list.",
                "gauge",
                inner.notifier.num_idlers() as u64,
            ),
            (
                "rustflow_inflight_topologies",
                "Topologies dispatched and not yet finalized.",
                "gauge",
                inner.running.lock().len() as u64,
            ),
            (
                "rustflow_flight_recorder_events",
                "Events currently retained by the flight recorder.",
                "gauge",
                self.recorder.len() as u64,
            ),
            (
                "rustflow_flight_recorder_dropped_total",
                "Events evicted by the flight-recorder memory budget before aging out.",
                "counter",
                self.recorder.evicted(),
            ),
            (
                "rustflow_watchdog_stalled_workers_total",
                "Watchdog reports of a worker stuck in one task invocation.",
                "counter",
                self.watchdog.counts().stalled_workers,
            ),
            (
                "rustflow_watchdog_stalled_topologies_total",
                "Watchdog reports of a dispatched topology frozen while the executor was idle.",
                "counter",
                self.watchdog.counts().stalled_topologies,
            ),
            (
                "rustflow_watchdog_ring_saturation_total",
                "Watchdog reports of event-ring overflow between collection passes.",
                "counter",
                self.watchdog.counts().ring_saturation,
            ),
            (
                "rustflow_slo_breach_total",
                "Watchdog reports of a tenant burning its latency SLO error budget too fast.",
                "counter",
                self.watchdog.counts().slo_burn,
            ),
            (
                "rustflow_watchdog_overload_shed_total",
                "Overload-controller interventions that shed queued runs from an over-budget tenant.",
                "counter",
                self.watchdog.counts().overload_shed,
            ),
            (
                "rustflow_breaker_transitions_total",
                "Tenant circuit-breaker state changes (closed/open/half-open, any direction).",
                "counter",
                self.watchdog.counts().breaker_transitions,
            ),
        ];
        for (name, help, kind, value) in singles {
            family(&mut out, name, help, kind, &[(None, *value)]);
        }
        // Per-tenant × per-phase latency histograms, merged from the
        // lock-free shards at scrape time. One header covers every
        // labelled series of the family (like the tenant counters, the
        // family renders only when the front door is in use).
        let latency = inner.tenant_latency();
        if !latency.is_empty() {
            out.push_str(
                "# HELP rustflow_tenant_latency_us Run lifecycle latency by tenant and phase \
                 (admission, queue, dispatch, exec, e2e), in microseconds.\n\
                 # TYPE rustflow_tenant_latency_us histogram\n",
            );
            for t in &latency {
                let tenant = crate::stats::escape_label_value(&t.name);
                for (phase, hist) in &t.phases {
                    hist.render_labelled_into(
                        &mut out,
                        "rustflow_tenant_latency_us",
                        &format!("tenant=\"{tenant}\",phase=\"{phase}\""),
                    );
                }
            }
        }
        out
    }

    /// The `/status` body: a JSON snapshot of workers (including what
    /// each is running right now) and in-flight topologies.
    pub(crate) fn status_json(&self) -> String {
        let Some(inner) = self.inner.upgrade() else {
            return "{}".to_string();
        };
        let now = crate::clock::now_us();
        let stats = inner.worker_stats();
        let deltas: Vec<crate::stats::WorkerStats> = {
            let mut last = self.last_scrape.lock();
            let d = stats
                .iter()
                .enumerate()
                .map(|(w, s)| match last.get(w) {
                    Some(prev) => s.delta(prev),
                    None => s.clone(),
                })
                .collect();
            *last = stats.clone();
            d
        };
        let ring_dropped_total: u64 = self.tracer.dropped_per_lane().iter().sum();
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"schema\":1,\"now_us\":{now},\"num_workers\":{},\
             \"parked_workers\":{},\"injector_depth\":{},\"inflight_topologies\":{},",
            self.num_workers,
            inner.notifier.num_idlers(),
            inner.injector.len(),
            inner.running.lock().len(),
        ));
        let wd = self.watchdog.counts();
        out.push_str(&format!(
            "\"collector\":{{\"period_ms\":{},\"window_ms\":{},\"recorder_events\":{},\
             \"recorder_dropped\":{},\"ring_dropped_total\":{ring_dropped_total}}},\
             \"watchdog\":{{\"stalled_workers\":{},\"stalled_topologies\":{},\"ring_saturation\":{},\
             \"slo_burn\":{},\"overload_shed\":{},\"breaker_transitions\":{}}},",
            self.config.collect_period.as_millis(),
            self.config.window.as_millis(),
            self.recorder.len(),
            self.recorder.evicted(),
            wd.stalled_workers,
            wd.stalled_topologies,
            wd.ring_saturation,
            wd.slo_burn,
            wd.overload_shed,
            wd.breaker_transitions,
        ));
        out.push_str("\"workers\":[");
        for (w, shared) in inner.shareds.iter().enumerate() {
            if w > 0 {
                out.push(',');
            }
            let current = shared.current.lock().clone();
            out.push_str(&format!(
                "{{\"id\":{w},\"queue_depth\":{},",
                shared.stealer.len()
            ));
            match current {
                Some(ct) => out.push_str(&format!(
                    "\"running\":{{\"label\":\"{}\",\"node\":{},\"topology\":{},\
                     \"since_us\":{},\"running_for_us\":{}}},",
                    escape_json(ct.label.as_str()),
                    ct.node,
                    ct.topology,
                    ct.since_us,
                    now.saturating_sub(ct.since_us),
                )),
                None => out.push_str("\"running\":null,"),
            }
            out.push_str("\"since_last_scrape\":");
            push_counters(&mut out, &deltas[w]);
            out.push_str(",\"total\":");
            push_counters(&mut out, &stats[w]);
            out.push('}');
        }
        out.push_str("],\"tenants\":[");
        let latency = inner.tenant_latency();
        for (i, t) in inner.tenant_stats().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"weight\":{},\"queued\":{},\"in_flight\":{},\
                 \"submitted\":{},\"dispatched\":{},\"coalesced\":{},\"completed\":{},\
                 \"rejected_saturated\":{},\"rejected_shutdown\":{},\
                 \"rejected_infeasible\":{},\"rejected_breaker\":{},\"shed\":{},\
                 \"retry_budget_exhausted\":{},\
                 \"breaker\":{{\"state\":\"{}\",\"consecutive_failures\":{}}}",
                escape_json(&t.name),
                t.weight,
                t.queued,
                t.in_flight,
                t.submitted,
                t.dispatched,
                t.coalesced,
                t.completed,
                t.rejected_saturated,
                t.rejected_shutdown,
                t.rejected_infeasible,
                t.rejected_breaker,
                t.shed,
                t.retry_budget_exhausted,
                crate::BreakerState::from_word(t.breaker_state).as_str(),
                t.consecutive_failures,
            ));
            // Matched by name, not index: the stats and latency snapshots
            // come from two separate lock acquisitions, so a tenant
            // created in between could skew positions.
            if let Some(lat) = latency.iter().find(|l| l.name == t.name) {
                match lat.slo {
                    Some(slo) => out.push_str(&format!(
                        ",\"slo\":{{\"p99_us\":{},\"window_ms\":{}}}",
                        slo.p99_us,
                        slo.window.as_millis(),
                    )),
                    None => out.push_str(",\"slo\":null"),
                }
                out.push_str(",\"latency_us\":{");
                for (p, (phase, hist)) in lat.phases.iter().enumerate() {
                    if p > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\"{phase}\":{{\"count\":{},\"p50\":{:.1},\"p90\":{:.1},\
                         \"p99\":{:.1},\"p999\":{:.1}}}",
                        hist.count(),
                        hist.percentile(0.50),
                        hist.percentile(0.90),
                        hist.percentile(0.99),
                        hist.percentile(0.999),
                    ));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"topologies\":[");
        let running: Vec<_> = inner.running.lock().topologies();
        for (i, topo) in running.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let state = if topo.is_cancelled() {
                "cancelled"
            } else if topo.is_settled() {
                "finalizing"
            } else {
                "running"
            };
            out.push_str(&format!(
                "{{\"topology\":{},\"run\":{},\"iteration\":{},\"alive\":{},\
                 \"pending_batches\":{},\"has_error\":{},\"state\":\"{state}\"}}",
                topo.uid(),
                topo.run_id(),
                topo.iterations(),
                topo.alive_count(),
                topo.pending_batches(),
                topo.has_error(),
            ));
        }
        out.push_str("]}");
        out
    }

    /// The `/trace` body: Chrome-trace JSON for the last `last` of
    /// activity (clamped to the retention window). Runs a collection
    /// pass first so the window includes events still in the rings.
    pub(crate) fn trace_json(&self, last: Duration) -> String {
        self.collect_pass();
        let now = crate::clock::now_us();
        let last_us = u64::try_from(last.as_micros()).unwrap_or(u64::MAX);
        let events = self.recorder.window(last_us, now);
        chrome_trace_json_from(&events, self.num_workers)
    }
}

/// Appends one Prometheus family: HELP + TYPE, then each sample, with a
/// `worker` label when present.
fn family(out: &mut String, name: &str, help: &str, kind: &str, samples: &[(Option<usize>, u64)]) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    for (worker, value) in samples {
        match worker {
            Some(w) => out.push_str(&format!("{name}{{worker=\"{w}\"}} {value}\n")),
            None => out.push_str(&format!("{name} {value}\n")),
        }
    }
}

/// One worker's counters as a JSON object (shared by the delta and
/// total views in `/status`).
fn push_counters(out: &mut String, w: &crate::stats::WorkerStats) {
    out.push_str(&format!(
        "{{\"executed\":{},\"cache_hits\":{},\"steals\":{},\"steal_fails\":{},\
         \"parks\":{},\"skipped\":{},\"retries\":{},\"ring_dropped\":{}}}",
        w.executed,
        w.cache_hits,
        w.steals,
        w.steal_fails,
        w.parks,
        w.skipped,
        w.retries,
        w.ring_dropped,
    ));
}

/// A live handle to a running introspection service.
///
/// Returned by
/// [`Executor::serve_introspection`](crate::Executor::serve_introspection)
/// and [`Executor::start_introspection`](crate::Executor::start_introspection).
/// Every accessor works whether or not an HTTP listener was bound — the
/// endpoints are just these methods behind a socket. The handle is a
/// passive view: dropping it does not stop the service (the executor
/// owns the threads and stops them in its own `Drop`).
#[derive(Clone)]
pub struct IntrospectHandle {
    state: Arc<IntrospectState>,
}

impl IntrospectHandle {
    /// The bound HTTP address, if a listener was requested. With an
    /// ephemeral port (`"127.0.0.1:0"`), this is where to point `curl`.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.state.local_addr
    }

    /// Runs one collection pass synchronously: drains the event rings
    /// into the flight recorder and performs a watchdog sweep. Useful in
    /// tests for deterministic timing; the background collector does the
    /// same thing every [`IntrospectConfig::collect_period`].
    pub fn force_collect(&self) {
        self.state.collect_pass();
    }

    /// The Prometheus text exposition served at `GET /metrics`.
    pub fn metrics_text(&self) -> String {
        self.state.metrics_text()
    }

    /// The JSON scheduler snapshot served at `GET /status`.
    pub fn status_json(&self) -> String {
        self.state.status_json()
    }

    /// The Chrome-trace JSON served at `GET /trace?last_ms=N`, covering
    /// the last `last` of activity (clamped to the retention window).
    pub fn trace_json(&self, last: Duration) -> String {
        self.state.trace_json(last)
    }

    /// Registers a callback invoked (on the collector thread) for every
    /// [`WatchdogDiagnostic`] the watchdog emits. Keep callbacks cheap —
    /// they run inside the collection pass.
    pub fn subscribe_watchdog(&self, f: impl Fn(&WatchdogDiagnostic) + Send + Sync + 'static) {
        self.state.watchdog.subscribe(Box::new(f));
    }

    /// Cumulative watchdog trip counts since introspection started.
    pub fn watchdog_counts(&self) -> WatchdogCounts {
        self.state.watchdog.counts()
    }

    /// Events currently retained by the flight recorder.
    pub fn flight_recorder_len(&self) -> usize {
        self.state.recorder.len()
    }

    /// Events evicted by the flight-recorder budget before aging out of
    /// the window.
    pub fn flight_recorder_dropped(&self) -> u64 {
        self.state.recorder.evicted()
    }

    /// Telemetry events lost to ring overflow, summed across workers.
    pub fn ring_dropped(&self) -> u64 {
        self.state.tracer.dropped_per_lane().iter().sum()
    }
}

impl std::fmt::Debug for IntrospectHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntrospectHandle")
            .field("local_addr", &self.state.local_addr)
            .field("num_workers", &self.state.num_workers)
            .field("recorder_events", &self.state.recorder.len())
            .finish()
    }
}

/// Installs the introspection service on `executor`: registers the
/// tracer observer, flips the live flag, and spawns the collector (and,
/// with a listener, the HTTP acceptor). Fails with `AlreadyExists` if
/// the executor already has one.
pub(crate) fn start(
    executor: &Executor,
    inner: &Arc<Inner>,
    config: IntrospectConfig,
    listener: Option<TcpListener>,
) -> std::io::Result<IntrospectHandle> {
    let num_workers = inner.shareds.len();
    let state = {
        let mut slot = inner.introspect.write();
        if slot.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "introspection service already running on this executor",
            ));
        }
        let window_us = u64::try_from(config.window.as_micros()).unwrap_or(u64::MAX);
        let state = Arc::new(IntrospectState {
            inner: Arc::downgrade(inner),
            num_workers,
            tracer: Arc::new(Tracer::with_capacity(num_workers, config.ring_capacity).lossy()),
            recorder: FlightRecorder::new(window_us, config.max_events),
            watchdog: Watchdog::new(),
            pass: Mutex::new(WatchdogPass::new(num_workers)),
            last_scrape: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            local_addr: listener.as_ref().and_then(|l| l.local_addr().ok()),
            config,
        });
        *slot = Some(Arc::clone(&state));
        state
    };
    executor.observe(Arc::clone(&state.tracer) as Arc<dyn ExecutorObserver>);
    // ORDERING: Release — the service state installed above is visible to
    // any worker whose Relaxed `live` load observes the flag.
    inner.introspect_live.store(true, Ordering::Release);

    let mut threads = Vec::with_capacity(2);
    {
        let inner = Arc::clone(inner);
        let state = Arc::clone(&state);
        threads.push(
            std::thread::Builder::new()
                .name("rustflow-introspect".into())
                .spawn(move || collector_loop(&inner, &state))?,
        );
    }
    if let Some(listener) = listener {
        let state = Arc::clone(&state);
        threads.push(
            std::thread::Builder::new()
                .name("rustflow-introspect-http".into())
                .spawn(move || server::serve(listener, state))?,
        );
    }
    executor.adopt_aux_threads(threads);
    Ok(IntrospectHandle { state })
}

/// The collector thread: one pass per period, sleeping in short chunks
/// so shutdown is prompt, with a final pass after stop so nothing left
/// in the rings is lost.
fn collector_loop(inner: &Arc<Inner>, state: &Arc<IntrospectState>) {
    let period = state.config.collect_period;
    while !state.stopped() {
        state.collect_pass_with(inner);
        let mut remaining = period;
        while !state.stopped() && !remaining.is_zero() {
            let step = remaining.min(Duration::from_millis(20));
            std::thread::sleep(step);
            remaining = remaining.saturating_sub(step);
        }
    }
    state.collect_pass_with(inner);
}
