//! Stall detection over live scheduler state.
//!
//! The watchdog runs inside each collection pass and inspects three
//! progress signals, emitting a structured [`WatchdogDiagnostic`] to
//! subscribers (and bumping a `rustflow_watchdog_*` counter) when one
//! trips:
//!
//! 1. **Stalled worker** — a worker has been inside the *same* task
//!    invocation beyond the configured threshold. Detection keys on the
//!    task's start timestamp, so one stuck invocation is reported once,
//!    however long it lasts; a fresh invocation of the same task can
//!    trip again.
//! 2. **Stalled topology** — a dispatched topology whose progress tuple
//!    (run id, iteration count, live-task count) has not changed for a
//!    full threshold while the executor is otherwise quiescent: no
//!    worker is running anything and every queue (including the
//!    injector) is empty. The quiescence condition is what separates a
//!    lost wakeup or dependency-count bug from a merely slow task —
//!    a long task occupies a worker slot, so signal 1 owns that case.
//! 3. **Ring saturation** — the introspection tracer dropped events
//!    since the previous pass, i.e. the collector is not keeping up
//!    with event production.
//! 4. **SLO burn** — a tenant with a latency objective
//!    ([`crate::SloSpec`]) is consuming its p99 error budget too fast.
//!    SRE-style multi-window burn rate over the tenant's end-to-end
//!    latency histogram: the fraction of runs past the target, divided
//!    by the 1% budget, must exceed the fire threshold over *both* the
//!    long window (`SloSpec::window`) and the fast window (`window/12`)
//!    — a sustained breach fires within the fast window, while a spike
//!    that ended long ago does not page. One report per episode; the
//!    episode re-arms once the fast-window burn drops below 1.
//!
//! All state lives in [`WatchdogPass`], which the collector keeps inside
//! the pass mutex — passes are serialized, so detection needs no atomics
//! beyond the public counters.

use super::CurrentTask;
use crate::executor::{Inner, PHASE_E2E};
use crate::observer::Tracer;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Burn-rate multiple of budget-paced consumption at which an episode
/// fires (both windows must reach it).
const SLO_BURN_FIRE: f64 = 2.0;
/// Fast-window burn rate below which a fired episode re-arms.
const SLO_BURN_CLEAR: f64 = 1.0;
/// Minimum runs inside a window before its burn rate is meaningful.
const SLO_MIN_RUNS: u64 = 10;
/// Error budget fraction implied by a p99 target: 1% of runs may breach.
const SLO_BUDGET: f64 = 0.01;

/// A structured stall report emitted by the introspection watchdog.
///
/// Delivered to callbacks registered with
/// [`IntrospectHandle::subscribe_watchdog`](super::IntrospectHandle::subscribe_watchdog);
/// each emission also increments the matching `rustflow_watchdog_*`
/// Prometheus counter on `/metrics`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum WatchdogDiagnostic {
    /// A worker has run the same task invocation beyond the threshold.
    StalledWorker {
        /// Worker index.
        worker: usize,
        /// Label of the task it is stuck in (may be empty).
        label: String,
        /// Opaque id of the stuck task node.
        node: u64,
        /// Uid of the topology the task belongs to.
        topology: u64,
        /// How long the invocation had been running when detected.
        running_for: Duration,
        /// The configured stall threshold, for context.
        threshold: Duration,
    },
    /// A dispatched topology stopped making progress while all workers
    /// and queues were idle — live tasks exist but nothing can run them.
    StalledTopology {
        /// Uid of the non-progressing topology.
        topology: u64,
        /// Run id of the stuck run.
        run: u64,
        /// Iterations completed when progress stopped.
        iteration: u64,
        /// Tasks still live (dispatched or pending) in the stuck run.
        alive: usize,
        /// How long the progress tuple had been frozen when detected.
        stalled_for: Duration,
    },
    /// The introspection event rings overflowed since the last pass:
    /// the collector is falling behind event production.
    RingSaturation {
        /// Events lost since the previous collection pass.
        dropped_delta: u64,
        /// Total events lost since introspection started.
        dropped_total: u64,
    },
    /// A tenant with a latency objective ([`crate::SloSpec`]) burned its
    /// p99 error budget faster than the fire threshold over both the
    /// long and the fast burn-rate windows.
    SloBurn {
        /// The burning tenant's name.
        tenant: String,
        /// The objective's target p99, in microseconds.
        target_p99_us: u64,
        /// The objective's long burn-rate window.
        window: Duration,
        /// Runs past the target inside the long window.
        breached: u64,
        /// Total runs inside the long window.
        total: u64,
        /// Long-window burn rate: budget consumed per unit allotted
        /// (1.0 = exactly budget pace; the fire threshold is 2.0).
        burn: f64,
    },
    /// The overload controller shed queued runs from a tenant whose SLO
    /// burn rate fired: queued work was failed with
    /// [`RunError::Shed`](crate::RunError) so the remaining queue can
    /// still meet its deadlines.
    OverloadShed {
        /// The over-budget tenant's name.
        tenant: String,
        /// Runs shed by this intervention (newest-first).
        shed: u64,
        /// Runs still queued after the shed.
        queued: u64,
    },
    /// A tenant's circuit breaker changed state
    /// ([`crate::BreakerState`]): consecutive failures opened it, the
    /// open window elapsed into a half-open probe, or a probe verdict
    /// re-opened / closed it.
    BreakerTransition {
        /// The tenant whose breaker transitioned.
        tenant: String,
        /// State before the transition.
        from: crate::BreakerState,
        /// State after the transition.
        to: crate::BreakerState,
    },
}

impl std::fmt::Display for WatchdogDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchdogDiagnostic::StalledWorker {
                worker,
                label,
                running_for,
                threshold,
                ..
            } => write!(
                f,
                "worker {worker} stalled in task \"{label}\" for {running_for:?} (threshold {threshold:?})"
            ),
            WatchdogDiagnostic::StalledTopology {
                topology,
                iteration,
                alive,
                stalled_for,
                ..
            } => write!(
                f,
                "topology {topology} made no progress for {stalled_for:?} \
                 (iteration {iteration}, {alive} tasks alive, all workers idle)"
            ),
            WatchdogDiagnostic::RingSaturation {
                dropped_delta,
                dropped_total,
            } => write!(
                f,
                "introspection rings dropped {dropped_delta} events since last pass ({dropped_total} total)"
            ),
            WatchdogDiagnostic::SloBurn {
                tenant,
                target_p99_us,
                window,
                breached,
                total,
                burn,
            } => write!(
                f,
                "tenant \"{tenant}\" is burning its p99 SLO error budget at {burn:.1}x \
                 ({breached}/{total} runs over {target_p99_us}us in the last {window:?})"
            ),
            WatchdogDiagnostic::OverloadShed {
                tenant,
                shed,
                queued,
            } => write!(
                f,
                "overload controller shed {shed} queued runs from tenant \"{tenant}\" ({queued} still queued)"
            ),
            WatchdogDiagnostic::BreakerTransition { tenant, from, to } => write!(
                f,
                "tenant \"{tenant}\" circuit breaker: {from} -> {to}"
            ),
        }
    }
}

/// Cumulative watchdog trip counts since introspection started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogCounts {
    /// [`WatchdogDiagnostic::StalledWorker`] emissions.
    pub stalled_workers: u64,
    /// [`WatchdogDiagnostic::StalledTopology`] emissions.
    pub stalled_topologies: u64,
    /// [`WatchdogDiagnostic::RingSaturation`] emissions.
    pub ring_saturation: u64,
    /// [`WatchdogDiagnostic::SloBurn`] emissions.
    pub slo_burn: u64,
    /// [`WatchdogDiagnostic::OverloadShed`] emissions.
    pub overload_shed: u64,
    /// [`WatchdogDiagnostic::BreakerTransition`] emissions.
    pub breaker_transitions: u64,
}

type Subscriber = Box<dyn Fn(&WatchdogDiagnostic) + Send + Sync>;

/// Counters plus the subscriber list — shared between the collector
/// (emitting) and scrape/API paths (reading counts).
pub(crate) struct Watchdog {
    stalled_workers: AtomicU64,
    stalled_topologies: AtomicU64,
    ring_saturation: AtomicU64,
    slo_burn: AtomicU64,
    overload_shed: AtomicU64,
    breaker_transitions: AtomicU64,
    subscribers: Mutex<Vec<Subscriber>>,
}

impl Watchdog {
    pub(crate) fn new() -> Watchdog {
        Watchdog {
            stalled_workers: AtomicU64::new(0),
            stalled_topologies: AtomicU64::new(0),
            ring_saturation: AtomicU64::new(0),
            slo_burn: AtomicU64::new(0),
            overload_shed: AtomicU64::new(0),
            breaker_transitions: AtomicU64::new(0),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn subscribe(&self, f: Subscriber) {
        self.subscribers.lock().push(f);
    }

    pub(crate) fn counts(&self) -> WatchdogCounts {
        WatchdogCounts {
            stalled_workers: self.stalled_workers.load(Ordering::Relaxed),
            stalled_topologies: self.stalled_topologies.load(Ordering::Relaxed),
            ring_saturation: self.ring_saturation.load(Ordering::Relaxed),
            slo_burn: self.slo_burn.load(Ordering::Relaxed),
            overload_shed: self.overload_shed.load(Ordering::Relaxed),
            breaker_transitions: self.breaker_transitions.load(Ordering::Relaxed),
        }
    }

    /// Counts and broadcasts a breaker state change on behalf of the
    /// executor's finalize/admission paths (the only diagnostic source
    /// outside the collection pass). Callers hold no executor locks.
    pub(crate) fn note_breaker_transition(
        &self,
        tenant: &str,
        from: crate::BreakerState,
        to: crate::BreakerState,
    ) {
        self.emit(&WatchdogDiagnostic::BreakerTransition {
            tenant: tenant.to_string(),
            from,
            to,
        });
    }

    fn emit(&self, d: &WatchdogDiagnostic) {
        let counter = match d {
            WatchdogDiagnostic::StalledWorker { .. } => &self.stalled_workers,
            WatchdogDiagnostic::StalledTopology { .. } => &self.stalled_topologies,
            WatchdogDiagnostic::RingSaturation { .. } => &self.ring_saturation,
            WatchdogDiagnostic::SloBurn { .. } => &self.slo_burn,
            WatchdogDiagnostic::OverloadShed { .. } => &self.overload_shed,
            WatchdogDiagnostic::BreakerTransition { .. } => &self.breaker_transitions,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        for s in self.subscribers.lock().iter() {
            s(d);
        }
    }
}

/// Per-topology progress observation carried across passes.
struct TopoObservation {
    run: u64,
    iterations: u64,
    alive: usize,
    /// When this exact progress tuple was first seen (µs).
    frozen_since_us: u64,
    /// Whether the current frozen episode was already reported.
    reported: bool,
}

/// Per-tenant SLO burn-rate bookkeeping carried across passes.
#[derive(Default)]
struct SloTrack {
    /// One `(pass timestamp µs, total runs, breached runs)` cumulative
    /// observation per pass, evicted past the long window (one sample
    /// older than the window is kept as the window-start baseline).
    history: VecDeque<(u64, u64, u64)>,
    /// Whether the current burn episode was already reported.
    firing: bool,
}

/// Cumulative budget consumption over one burn-rate window.
struct WindowBurn {
    /// Burn rate: budget consumed per unit allotted.
    rate: f64,
    /// Runs past the target inside the window.
    breached: u64,
    /// Total runs inside the window.
    total: u64,
}

/// Burn rate over the trailing `win_us`: deltas against the newest
/// observation at least `win_us` old (or the oldest available — a history
/// shorter than the window is all "recent"). `None` until the window
/// holds [`SLO_MIN_RUNS`] runs.
fn burn_over(history: &VecDeque<(u64, u64, u64)>, now_us: u64, win_us: u64) -> Option<WindowBurn> {
    let &(_, total_now, breached_now) = history.back()?;
    let &(_, total_base, breached_base) = history
        .iter()
        .rev()
        .find(|(ts, _, _)| now_us.saturating_sub(*ts) >= win_us)
        .unwrap_or(history.front()?);
    let total = total_now.saturating_sub(total_base);
    if total < SLO_MIN_RUNS {
        return None;
    }
    let breached = breached_now.saturating_sub(breached_base);
    Some(WindowBurn {
        rate: (breached as f64 / total as f64) / SLO_BUDGET,
        breached,
        total,
    })
}

/// Detection bookkeeping owned by the collection-pass mutex.
pub(crate) struct WatchdogPass {
    /// Per worker: `since_us` of the last invocation reported as stalled.
    reported_stall: Vec<Option<u64>>,
    topologies: HashMap<u64, TopoObservation>,
    last_dropped: u64,
    /// Per tenant (by name): SLO burn-rate history and episode state.
    slo: HashMap<String, SloTrack>,
}

impl WatchdogPass {
    pub(crate) fn new(num_workers: usize) -> WatchdogPass {
        WatchdogPass {
            reported_stall: vec![None; num_workers],
            topologies: HashMap::new(),
            last_dropped: 0,
            slo: HashMap::new(),
        }
    }
}

/// One watchdog sweep; called from every collection pass with the pass
/// lock held.
pub(crate) fn check(
    pass: &mut WatchdogPass,
    wd: &Watchdog,
    inner: &Inner,
    tracer: &Tracer,
    threshold_us: u64,
    now_us: u64,
) {
    // --- Signal 1: workers stuck in one task invocation. -----------------
    let currents: Vec<Option<CurrentTask>> = inner
        .shareds
        .iter()
        .map(|s| s.current.lock().clone())
        .collect();
    for (w, cur) in currents.iter().enumerate() {
        match cur {
            Some(ct) => {
                let running_for = now_us.saturating_sub(ct.since_us);
                if running_for >= threshold_us && pass.reported_stall[w] != Some(ct.since_us) {
                    pass.reported_stall[w] = Some(ct.since_us);
                    wd.emit(&WatchdogDiagnostic::StalledWorker {
                        worker: w,
                        label: ct.label.as_str().to_string(),
                        node: ct.node,
                        topology: ct.topology,
                        running_for: Duration::from_micros(running_for),
                        threshold: Duration::from_micros(threshold_us),
                    });
                }
            }
            None => pass.reported_stall[w] = None,
        }
    }

    // --- Signal 2: dispatched topologies frozen while executor is idle. --
    // Quiescent = no worker mid-task, every deque empty, injector empty.
    // Snapshot the running list and drop its lock before touching any
    // per-topology mutex (lock-order: never hold `running` across them).
    let quiescent = currents.iter().all(Option::is_none)
        && inner.shareds.iter().all(|s| s.stealer.is_empty())
        && inner.injector.is_empty();
    let running: Vec<_> = inner.running.lock().topologies();
    let mut seen = Vec::with_capacity(running.len());
    for topo in &running {
        let uid = topo.uid();
        seen.push(uid);
        let progress = (topo.run_id(), topo.iterations(), topo.alive_count());
        let obs = pass.topologies.entry(uid).or_insert(TopoObservation {
            run: progress.0,
            iterations: progress.1,
            alive: progress.2,
            frozen_since_us: now_us,
            reported: false,
        });
        let moved = (obs.run, obs.iterations, obs.alive) != progress;
        // Cancelled runs drain asynchronously (skipped tasks still settle)
        // and settled runs are just awaiting finalize — neither is a stall.
        if moved || !quiescent || topo.is_cancelled() || topo.is_settled() {
            obs.run = progress.0;
            obs.iterations = progress.1;
            obs.alive = progress.2;
            obs.frozen_since_us = now_us;
            obs.reported = false;
            continue;
        }
        let frozen_for = now_us.saturating_sub(obs.frozen_since_us);
        if frozen_for >= threshold_us && !obs.reported && progress.2 > 0 {
            obs.reported = true;
            wd.emit(&WatchdogDiagnostic::StalledTopology {
                topology: uid,
                run: progress.0,
                iteration: progress.1,
                alive: progress.2,
                stalled_for: Duration::from_micros(frozen_for),
            });
        }
    }
    pass.topologies.retain(|uid, _| seen.contains(uid));

    // --- Signal 3: event rings overflowing between passes. ---------------
    let dropped_total: u64 = tracer.dropped_per_lane().iter().sum();
    if dropped_total > pass.last_dropped {
        let delta = dropped_total - pass.last_dropped;
        pass.last_dropped = dropped_total;
        wd.emit(&WatchdogDiagnostic::RingSaturation {
            dropped_delta: delta,
            dropped_total,
        });
    }

    // --- Signal 4: tenants burning their latency SLO error budget. -------
    let latency = inner.tenant_latency();
    for t in &latency {
        let Some(slo) = t.slo else { continue };
        let e2e = &t.phases[PHASE_E2E].1;
        let total = e2e.count();
        // `count_le` quantizes the target up to its bucket's bound (≤25%
        // with the log-linear layout) — a breach is a run in any bucket
        // strictly above the one holding the target.
        let breached = total - e2e.count_le(slo.p99_us);
        let win_us = slo.window.max(Duration::from_secs(1)).as_micros() as u64;
        let track = pass.slo.entry(t.name.clone()).or_default();
        track.history.push_back((now_us, total, breached));
        while track.history.len() > 1 && now_us.saturating_sub(track.history[1].0) >= win_us {
            track.history.pop_front();
        }
        let long = burn_over(&track.history, now_us, win_us);
        let short = burn_over(&track.history, now_us, win_us / 12);
        match (long, short) {
            (Some(l), Some(s))
                if l.rate >= SLO_BURN_FIRE && s.rate >= SLO_BURN_FIRE && !track.firing =>
            {
                track.firing = true;
                wd.emit(&WatchdogDiagnostic::SloBurn {
                    tenant: t.name.clone(),
                    target_p99_us: slo.p99_us,
                    window: slo.window,
                    breached: l.breached,
                    total: l.total,
                    burn: l.rate,
                });
                // Overload controller: an over-budget tenant's queue is
                // its own worst enemy — shed the newest half so the work
                // already closest to dispatch can still meet its
                // deadlines. One intervention per burn episode (the
                // episode re-arms below once the fast window cools).
                let (shed, queued) = crate::executor::shed_overburn(inner, &t.name);
                if shed > 0 {
                    wd.emit(&WatchdogDiagnostic::OverloadShed {
                        tenant: t.name.clone(),
                        shed,
                        queued,
                    });
                }
            }
            (_, Some(s)) if s.rate < SLO_BURN_CLEAR => track.firing = false,
            _ => {}
        }
    }
    pass.slo
        .retain(|name, _| latency.iter().any(|t| t.slo.is_some() && t.name == *name));
}
