//! The flight recorder: a bounded, time-windowed buffer of scheduler
//! events.
//!
//! The collector thread drains the introspection tracer's per-worker
//! rings every period and absorbs the batch here. Two bounds keep memory
//! fixed on long-lived executors:
//!
//! * **time window** — events older than `window` fall off the front as
//!   new batches arrive (by design, not counted as loss);
//! * **event budget** — if a burst outruns the window, the oldest events
//!   are evicted early and counted in [`FlightRecorder::evicted`]
//!   (explicit drop accounting, never silent).
//!
//! `GET /trace?last_ms=N` renders a suffix of this buffer through the
//! Chrome-trace exporter ([`crate::observer::chrome_trace_json_from`]).

use crate::observer::SchedEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) struct FlightRecorder {
    /// Retention window, µs: events older than `now - window_us` age out.
    window_us: u64,
    /// Memory budget, in events; the oldest are evicted beyond it.
    max_events: usize,
    events: Mutex<VecDeque<SchedEvent>>,
    /// Events evicted by the budget *before* they aged out of the window.
    evicted: AtomicU64,
}

impl FlightRecorder {
    pub(crate) fn new(window_us: u64, max_events: usize) -> FlightRecorder {
        FlightRecorder {
            window_us,
            max_events: max_events.max(1),
            events: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
        }
    }

    /// Appends a drained batch (already timestamp-ordered) and enforces
    /// both bounds. `now_us` is the collection pass's clock reading.
    pub(crate) fn absorb(&self, batch: Vec<SchedEvent>, now_us: u64) {
        let mut q = self.events.lock();
        q.extend(batch);
        let horizon = now_us.saturating_sub(self.window_us);
        while q.front().is_some_and(|e| e.ts_us < horizon) {
            q.pop_front();
        }
        let mut over = q.len().saturating_sub(self.max_events);
        while over > 0 {
            q.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
            over -= 1;
        }
    }

    /// Events newer than `now_us - last_us` (clamped to the retention
    /// window), ordered by timestamp.
    pub(crate) fn window(&self, last_us: u64, now_us: u64) -> Vec<SchedEvent> {
        let horizon = now_us.saturating_sub(last_us.min(self.window_us));
        let q = self.events.lock();
        let start = q.partition_point(|e| e.ts_us < horizon);
        let mut out: Vec<SchedEvent> = q.iter().skip(start).cloned().collect();
        // Batches are sorted, but a stale ring entry drained late can
        // straddle a batch boundary; exporters require global order.
        out.sort_by_key(|e| e.ts_us);
        out
    }

    /// Events currently retained.
    pub(crate) fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Events evicted by the memory budget before aging out.
    pub(crate) fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TaskLabel;
    use crate::observer::SchedEventKind;

    fn ev(ts: u64) -> SchedEvent {
        SchedEvent {
            worker: 0,
            ts_us: ts,
            label: TaskLabel::empty(),
            kind: SchedEventKind::Park,
        }
    }

    #[test]
    fn window_ages_out_without_counting_drops() {
        let r = FlightRecorder::new(1_000, 100);
        r.absorb((0..10).map(|i| ev(i * 100)).collect(), 900);
        assert_eq!(r.len(), 10);
        // 1.5 ms later, everything before 500 µs ages out.
        r.absorb(vec![ev(1_500)], 1_500);
        assert_eq!(r.len(), 6); // 500..=900 plus the new event
        assert_eq!(r.evicted(), 0, "aging out is not loss");
    }

    #[test]
    fn budget_evicts_oldest_and_counts() {
        let r = FlightRecorder::new(u64::MAX / 2, 4);
        r.absorb((0..10).map(ev).collect(), 10);
        assert_eq!(r.len(), 4);
        assert_eq!(r.evicted(), 6);
        let w = r.window(u64::MAX / 2, 10);
        assert_eq!(w.first().unwrap().ts_us, 6, "oldest evicted first");
    }

    #[test]
    fn window_query_clamps_and_filters() {
        let r = FlightRecorder::new(10_000, 1000);
        r.absorb((0..100).map(|i| ev(i * 100)).collect(), 9_900);
        let recent = r.window(500, 10_000);
        assert!(recent.iter().all(|e| e.ts_us >= 9_500));
        assert_eq!(recent.len(), 5); // 9500, 9600, ..., 9900
                                     // A query wider than the retention window is clamped to it.
        let all = r.window(u64::MAX, 10_000);
        assert_eq!(all.len(), 100);
    }
}
