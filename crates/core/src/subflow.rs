//! Dynamic tasking (§III-D of the paper).
//!
//! A task created with [`Taskflow::emplace_subflow`](crate::Taskflow::emplace_subflow)
//! receives a [`Subflow`] when it executes. Through it, the task spawns a
//! child task dependency graph *at runtime* using exactly the same building
//! blocks as static tasking — `emplace`, `placeholder`, `precede` — the
//! paper's "unified interface" contribution.
//!
//! By default a subflow **joins** its parent: the parent task is not
//! considered finished (and its successors cannot run) until every spawned
//! child has finished. Calling [`Subflow::detach`] decouples the children:
//! the parent completes immediately and the children merely extend the
//! enclosing topology, which still waits for them before fulfilling its
//! future ("a detached subflow will eventually join the end of the
//! topology of its parent task").

use crate::graph::{RawNode, Work};
use crate::task::Task;
use std::cell::Cell;
use std::marker::PhantomData;

/// Builder handed to a dynamic task while it runs.
pub struct Subflow<'s> {
    /// The parent node currently executing.
    pub(crate) node: RawNode,
    /// Whether `detach` was called.
    pub(crate) detached: Cell<bool>,
    _marker: PhantomData<&'s ()>,
}

impl<'s> Subflow<'s> {
    pub(crate) fn new(node: RawNode) -> Subflow<'s> {
        Subflow {
            node,
            detached: Cell::new(false),
            _marker: PhantomData,
        }
    }

    /// Creates a child task from a closure; same semantics as
    /// [`Taskflow::emplace`](crate::Taskflow::emplace).
    pub fn emplace<F>(&self, f: F) -> Task<'_>
    where
        F: FnMut() + Send + 'static,
    {
        self.emplace_work(Work::Static(Box::new(f)))
    }

    /// Creates a child task that may itself spawn a nested subflow.
    pub fn emplace_subflow<F>(&self, f: F) -> Task<'_>
    where
        F: FnMut(&mut Subflow<'_>) + Send + 'static,
    {
        self.emplace_work(Work::Dynamic(Box::new(f)))
    }

    /// Creates an empty child task to be filled in later.
    pub fn placeholder(&self) -> Task<'_> {
        self.emplace_work(Work::Empty)
    }

    fn emplace_work(&self, work: Work) -> Task<'_> {
        // SAFETY: we are the worker currently executing the parent node;
        // the subgraph is ours exclusively until the closure returns and
        // the executor spawns the children.
        let node = unsafe { (*self.node).state.subgraph.get_mut().emplace(work) };
        Task::new(node)
    }

    /// Detaches the spawned subflow from the parent task: the parent's
    /// successors may run as soon as the parent's own closure returns,
    /// while the children execute independently. The enclosing topology
    /// still waits for them.
    pub fn detach(&self) {
        self.detached.set(true);
    }

    /// Re-joins the subflow to the parent (the default), undoing a prior
    /// [`Subflow::detach`].
    pub fn join(&self) {
        self.detached.set(false);
    }

    /// `true` if the subflow is currently marked detached.
    pub fn is_detached(&self) -> bool {
        self.detached.get()
    }

    /// `true` if the enclosing run has been cancelled (equivalent to
    /// [`this_task::is_cancelled`](crate::this_task::is_cancelled) from
    /// inside the parent task). Long dynamic tasks should poll this and
    /// return early instead of spawning more children.
    pub fn is_cancelled(&self) -> bool {
        crate::this_task::is_cancelled()
    }

    /// Number of child tasks spawned so far.
    pub fn num_tasks(&self) -> usize {
        // SAFETY: executing worker's exclusive access.
        unsafe { (*self.node).state.subgraph.get().len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Node;

    #[test]
    fn emplace_builds_children_in_parent_subgraph() {
        let mut parent = Node::new(Work::Empty);
        let raw: RawNode = &mut *parent;
        let sf = Subflow::new(raw);
        let a = sf.emplace(|| {}).name("a");
        let b = sf.emplace(|| {});
        let c = sf.placeholder();
        a.precede([b, c]);
        assert_eq!(sf.num_tasks(), 3);
        assert_eq!(a.num_successors(), 2);
        assert_eq!(c.num_dependents(), 1);
        assert!(c.is_placeholder());
        unsafe {
            assert_eq!(parent.state.subgraph.get().len(), 3);
        }
    }

    #[test]
    fn detach_and_join_toggle() {
        let mut parent = Node::new(Work::Empty);
        let sf = Subflow::new(&mut *parent);
        assert!(!sf.is_detached());
        sf.detach();
        assert!(sf.is_detached());
        sf.join();
        assert!(!sf.is_detached());
    }
}
