//! Per-worker scheduler counters and their Prometheus-style export.
//!
//! Workers maintain relaxed atomic counters for every Algorithm-1 event
//! class (executions, cache hits, steals and their failures, parks,
//! wake-ups, injector pops). [`crate::Executor::stats`] snapshots them
//! into an [`ExecutorStats`], which can be diffed against an earlier
//! snapshot ([`ExecutorStats::delta`]) and rendered in the Prometheus
//! text exposition format ([`ExecutorStats::prometheus_text`]) for
//! scraping or offline analysis.
//!
//! Beyond plain counters, [`Histogram`] provides the exposition format's
//! `_bucket`/`_sum`/`_count` histogram families (cumulative buckets with
//! `le` labels, closed by `+Inf`) used by the causal profiler
//! ([`crate::profile`]) for task-duration and steal-latency
//! distributions, and [`escape_label_value`] implements the format's
//! label value escaping.
//!
//! For the online latency pipeline, [`AtomicHistogram`] is the lock-free
//! recording side: log-linear (HDR-style) buckets updated with two
//! relaxed `fetch_add`s per observation, snapshotted into a [`Histogram`]
//! only at scrape time. [`Histogram::percentile`] interpolates quantiles
//! out of bucketed counts, and the free [`percentile`] function is the
//! exact-sample sibling shared with `tf-bench`'s client-side latency
//! reports.

use crate::sync::AtomicU64;
use std::sync::atomic::Ordering;

/// Snapshot of one worker's diagnostic counters.
///
/// All counters are maintained with relaxed atomics on the worker's own
/// cache line; they are advisory (monotonic, but a snapshot is not an
/// atomic cut across workers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Tasks pulled from the exclusive cache slot (linear-chain steps
    /// that touched no queue).
    pub cache_hits: u64,
    /// Successful steals this worker performed.
    pub steals: u64,
    /// Individual steal attempts (one per victim probe).
    pub steal_attempts: u64,
    /// Steal rounds that found nothing anywhere (victims + injector).
    pub steal_fails: u64,
    /// Tasks taken from the external injector queue.
    pub injector_pops: u64,
    /// Times this worker entered the idle path.
    pub parks: u64,
    /// Wake-ups this worker issued (targeted and probabilistic).
    pub wakes_sent: u64,
    /// Tasks popped ready but skipped because their topology was
    /// cancelled (no closure ran, no span was emitted).
    pub skipped: u64,
    /// Extra attempts executed under a [`Task::retry`](crate::Task::retry)
    /// budget (one per re-execution, not counting the first attempt).
    pub retries: u64,
    /// Telemetry events lost because this worker's event ring wrapped
    /// between collections (0 unless live introspection installed its
    /// tracer — see [`Executor::serve_introspection`]). Overflow used to
    /// be visible only as a crate-wide sum; per-worker accounting is what
    /// lets a scrape localize a saturating lane.
    ///
    /// [`Executor::serve_introspection`]: crate::Executor::serve_introspection
    pub ring_dropped: u64,
}

impl WorkerStats {
    /// Counter-wise `self - earlier`, saturating at zero.
    pub fn delta(&self, earlier: &WorkerStats) -> WorkerStats {
        WorkerStats {
            executed: self.executed.saturating_sub(earlier.executed),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            steals: self.steals.saturating_sub(earlier.steals),
            steal_attempts: self.steal_attempts.saturating_sub(earlier.steal_attempts),
            steal_fails: self.steal_fails.saturating_sub(earlier.steal_fails),
            injector_pops: self.injector_pops.saturating_sub(earlier.injector_pops),
            parks: self.parks.saturating_sub(earlier.parks),
            wakes_sent: self.wakes_sent.saturating_sub(earlier.wakes_sent),
            skipped: self.skipped.saturating_sub(earlier.skipped),
            retries: self.retries.saturating_sub(earlier.retries),
            ring_dropped: self.ring_dropped.saturating_sub(earlier.ring_dropped),
        }
    }

    fn add(&mut self, other: &WorkerStats) {
        self.executed += other.executed;
        self.cache_hits += other.cache_hits;
        self.steals += other.steals;
        self.steal_attempts += other.steal_attempts;
        self.steal_fails += other.steal_fails;
        self.injector_pops += other.injector_pops;
        self.parks += other.parks;
        self.wakes_sent += other.wakes_sent;
        self.skipped += other.skipped;
        self.retries += other.retries;
        self.ring_dropped += other.ring_dropped;
    }
}

/// Accessor pulling one counter out of a [`WorkerStats`].
type MetricAccessor = fn(&WorkerStats) -> u64;

/// The metric catalogue: (suffix-less metric name, help text, accessor).
const METRICS: &[(&str, &str, MetricAccessor)] = &[
    (
        "rustflow_tasks_executed_total",
        "Tasks executed, per worker.",
        |w| w.executed,
    ),
    (
        "rustflow_cache_hits_total",
        "Tasks pulled from the exclusive per-worker cache slot.",
        |w| w.cache_hits,
    ),
    (
        "rustflow_steals_total",
        "Successful steals, per thief.",
        |w| w.steals,
    ),
    (
        "rustflow_steal_attempts_total",
        "Individual steal probes, per thief.",
        |w| w.steal_attempts,
    ),
    (
        "rustflow_steal_failures_total",
        "Steal rounds that found no work anywhere.",
        |w| w.steal_fails,
    ),
    (
        "rustflow_injector_pops_total",
        "Tasks taken from the external injector queue.",
        |w| w.injector_pops,
    ),
    (
        "rustflow_parks_total",
        "Times a worker parked on the idler list.",
        |w| w.parks,
    ),
    (
        "rustflow_wakes_sent_total",
        "Wake-ups issued (targeted and probabilistic).",
        |w| w.wakes_sent,
    ),
    (
        "rustflow_tasks_skipped_total",
        "Ready tasks skipped because their topology was cancelled.",
        |w| w.skipped,
    ),
    (
        "rustflow_task_retries_total",
        "Extra task attempts executed under a retry budget.",
        |w| w.retries,
    ),
    (
        "rustflow_ring_dropped_events_total",
        "Telemetry events lost to per-worker ring overflow.",
        |w| w.ring_dropped,
    ),
];

/// Snapshot of one tenant's submission-path counters
/// ([`crate::Executor::tenant`]).
///
/// Counters are relaxed atomics like [`WorkerStats`]: monotonic but not
/// an atomic cut. `queued` and `in_flight` are gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name, as passed to [`crate::Executor::tenant`].
    pub name: String,
    /// Weighted-fair-queueing weight ([`crate::TenantQos::weight`]).
    pub weight: u32,
    /// Submissions waiting in the tenant queue right now (gauge).
    pub queued: u64,
    /// Topologies dispatched for this tenant and not yet finalized
    /// (gauge; counts driver claims, not coalesced piggybacks).
    pub in_flight: u64,
    /// Admission attempts, accepted or not: always equals
    /// `queued + in-flight-or-done dispatches + coalesced + rejected_*`
    /// at quiescence.
    pub submitted: u64,
    /// Submissions handed to the executor by the fair-queue pump.
    pub dispatched: u64,
    /// Dispatches that joined an already-running topology's batch queue
    /// instead of claiming a driver role of their own.
    pub coalesced: u64,
    /// Driver-claimed dispatches that ran to finalization.
    pub completed: u64,
    /// `try_submit` rejections because the tenant queue was full.
    pub rejected_saturated: u64,
    /// Submissions rejected (or drained unrun) by executor shutdown.
    pub rejected_shutdown: u64,
    /// Submissions cheap-rejected because the expected queue wait
    /// already exceeded their deadline
    /// ([`AdmissionError::DeadlineInfeasible`](crate::AdmissionError)).
    pub rejected_infeasible: u64,
    /// Submissions fast-rejected by an open circuit breaker
    /// ([`AdmissionError::BreakerOpen`](crate::AdmissionError)).
    pub rejected_breaker: u64,
    /// Queued runs dropped by the dispatcher or the overload controller
    /// ([`RunError::Shed`](crate::RunError)).
    pub shed: u64,
    /// Retries refused by the tenant's retry budget (the task failed
    /// instead of retrying).
    pub retry_budget_exhausted: u64,
    /// Consecutive failed runs right now (gauge; resets on any
    /// non-failed completion).
    pub consecutive_failures: u64,
    /// Circuit-breaker state (gauge): 0 = closed, 1 = open,
    /// 2 = half-open ([`crate::BreakerState`]).
    pub breaker_state: u64,
}

impl TenantStats {
    /// Counter-wise `self - earlier`, saturating at zero; gauges pass
    /// through from `self`.
    pub fn delta(&self, earlier: &TenantStats) -> TenantStats {
        TenantStats {
            name: self.name.clone(),
            weight: self.weight,
            queued: self.queued,
            in_flight: self.in_flight,
            submitted: self.submitted.saturating_sub(earlier.submitted),
            dispatched: self.dispatched.saturating_sub(earlier.dispatched),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
            completed: self.completed.saturating_sub(earlier.completed),
            rejected_saturated: self
                .rejected_saturated
                .saturating_sub(earlier.rejected_saturated),
            rejected_shutdown: self
                .rejected_shutdown
                .saturating_sub(earlier.rejected_shutdown),
            rejected_infeasible: self
                .rejected_infeasible
                .saturating_sub(earlier.rejected_infeasible),
            rejected_breaker: self
                .rejected_breaker
                .saturating_sub(earlier.rejected_breaker),
            shed: self.shed.saturating_sub(earlier.shed),
            retry_budget_exhausted: self
                .retry_budget_exhausted
                .saturating_sub(earlier.retry_budget_exhausted),
            consecutive_failures: self.consecutive_failures,
            breaker_state: self.breaker_state,
        }
    }
}

/// Accessor pulling one counter out of a [`TenantStats`].
type TenantAccessor = fn(&TenantStats) -> u64;

/// Tenant metric catalogue: (name, help, Prometheus type, accessor).
const TENANT_METRICS: &[(&str, &str, &str, TenantAccessor)] = &[
    (
        "rustflow_tenant_submissions_total",
        "Submissions accepted into the tenant queue.",
        "counter",
        |t| t.submitted,
    ),
    (
        "rustflow_tenant_dispatches_total",
        "Submissions dispatched by the fair-queue pump.",
        "counter",
        |t| t.dispatched,
    ),
    (
        "rustflow_tenant_coalesced_total",
        "Dispatches that joined an already-running topology.",
        "counter",
        |t| t.coalesced,
    ),
    (
        "rustflow_tenant_completions_total",
        "Driver-claimed dispatches that ran to finalization.",
        "counter",
        |t| t.completed,
    ),
    (
        "rustflow_tenant_rejected_saturated_total",
        "try_submit rejections due to a full tenant queue.",
        "counter",
        |t| t.rejected_saturated,
    ),
    (
        "rustflow_tenant_rejected_shutdown_total",
        "Submissions rejected or drained by executor shutdown.",
        "counter",
        |t| t.rejected_shutdown,
    ),
    (
        "rustflow_tenant_rejected_infeasible_total",
        "Submissions cheap-rejected because the expected queue wait exceeded their deadline.",
        "counter",
        |t| t.rejected_infeasible,
    ),
    (
        "rustflow_tenant_rejected_breaker_total",
        "Submissions fast-rejected by an open circuit breaker.",
        "counter",
        |t| t.rejected_breaker,
    ),
    (
        "rustflow_runs_shed_total",
        "Queued runs dropped by the dispatcher (deadline expired) or the overload controller.",
        "counter",
        |t| t.shed,
    ),
    (
        "rustflow_retry_budget_exhausted_total",
        "Retries refused by the tenant retry budget (task failed instead of retrying).",
        "counter",
        |t| t.retry_budget_exhausted,
    ),
    (
        "rustflow_breaker_state",
        "Circuit-breaker state: 0 closed, 1 open, 2 half-open.",
        "gauge",
        |t| t.breaker_state,
    ),
    (
        "rustflow_tenant_queued",
        "Submissions waiting in the tenant queue.",
        "gauge",
        |t| t.queued,
    ),
    (
        "rustflow_tenant_in_flight",
        "Tenant topologies dispatched and not yet finalized.",
        "gauge",
        |t| t.in_flight,
    ),
];

/// A point-in-time snapshot of every worker's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// One entry per worker, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// One entry per tenant, in tenant creation order; empty when the
    /// executor's multi-tenant front door is unused.
    pub tenants: Vec<TenantStats>,
}

impl ExecutorStats {
    /// Sum of all workers' counters.
    pub fn total(&self) -> WorkerStats {
        let mut total = WorkerStats::default();
        for w in &self.workers {
            total.add(w);
        }
        total
    }

    /// Worker-wise difference against an `earlier` snapshot of the same
    /// executor — the activity that happened in between (e.g. during one
    /// benchmark run). Saturates at zero per counter.
    pub fn delta(&self, earlier: &ExecutorStats) -> ExecutorStats {
        ExecutorStats {
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| match earlier.workers.get(i) {
                    Some(e) => w.delta(e),
                    None => w.clone(),
                })
                .collect(),
            tenants: self
                .tenants
                .iter()
                .map(
                    |t| match earlier.tenants.iter().find(|e| e.name == t.name) {
                        Some(e) => t.delta(e),
                        None => t.clone(),
                    },
                )
                .collect(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one counter family per metric with `# HELP`/`# TYPE` headers and
    /// one `{worker="N"}`-labelled sample per worker.
    ///
    /// ```
    /// let ex = rustflow::Executor::new(2);
    /// let text = ex.stats().prometheus_text();
    /// assert!(text.contains("# TYPE rustflow_tasks_executed_total counter"));
    /// assert!(text.contains("rustflow_tasks_executed_total{worker=\"0\"}"));
    /// ```
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(METRICS.len() * (96 + self.workers.len() * 48));
        for (name, help, get) in METRICS {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" counter\n");
            for (id, w) in self.workers.iter().enumerate() {
                out.push_str(&format!("{name}{{worker=\"{id}\"}} {}\n", get(w)));
            }
        }
        // Tenant families render only when the multi-tenant front door is
        // in use; a tenant-less executor's exposition is unchanged.
        if !self.tenants.is_empty() {
            for (name, help, ty, get) in TENANT_METRICS {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                out.push_str(help);
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(ty);
                out.push('\n');
                for t in &self.tenants {
                    out.push_str(&format!(
                        "{name}{{tenant=\"{}\"}} {}\n",
                        escape_label_value(&t.name),
                        get(t)
                    ));
                }
            }
        }
        out
    }
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double-quote, and line-feed become `\\`, `\"`, and `\n`.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Default microsecond bucket bounds: log-ish scale from 1 µs to 100 ms.
const DEFAULT_US_BOUNDS: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
];

/// A fixed-bound histogram rendered as a Prometheus histogram family:
/// cumulative `_bucket` samples with `le` labels (closed by `le="+Inf"`),
/// plus `_sum` and `_count`.
///
/// ```
/// let mut h = rustflow::Histogram::new_us();
/// h.observe(3);
/// h.observe(40);
/// let text = h.prometheus_text("rustflow_task_duration_us", "Task durations.");
/// assert!(text.contains("rustflow_task_duration_us_bucket{le=\"+Inf\"} 2"));
/// assert!(text.contains("rustflow_task_duration_us_sum 43"));
/// assert!(text.contains("rustflow_task_duration_us_count 2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; one extra slot for `+Inf`.
    counts: Vec<u64>,
    sum: u64,
}

impl Histogram {
    /// A histogram with the default microsecond bounds (1 µs … 100 ms,
    /// log-ish scale, `+Inf` overflow bucket).
    pub fn new_us() -> Histogram {
        Histogram::with_bounds(DEFAULT_US_BOUNDS.to_vec())
    }

    /// A histogram with custom inclusive upper `bounds` (must be strictly
    /// increasing; an `+Inf` overflow bucket is implicit).
    pub fn with_bounds(bounds: Vec<u64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The bucket bounds (exclusive of the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a histogram from its exposition parts: inclusive upper
    /// `bounds` (strictly increasing) and per-bucket **non-cumulative**
    /// `counts` with one extra slot for `+Inf`. This is the inverse of
    /// what [`render_into`](Histogram::render_into) emits (after
    /// de-cumulating the `_bucket` samples) — `tf-bench serving` uses it
    /// to reconstruct server-side distributions from a `/metrics` scrape.
    ///
    /// Returns `None` when `counts.len() != bounds.len() + 1` or the
    /// bounds are not strictly increasing.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>, sum: u64) -> Option<Histogram> {
        if counts.len() != bounds.len() + 1 || bounds.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(Histogram {
            bounds,
            counts,
            sum,
        })
    }

    /// Interpolated quantile `q` (in `[0, 1]`) from the bucketed counts.
    ///
    /// Finds the bucket holding the `q`-th observation and interpolates
    /// linearly inside its `(previous bound, bound]` range, so the error
    /// is at most one bucket width. Observations in the `+Inf` overflow
    /// bucket are clamped to the last finite bound. Returns 0.0 for an
    /// empty histogram.
    ///
    /// ```
    /// let mut h = rustflow::Histogram::with_bounds(vec![10, 20, 40]);
    /// for v in [4, 8, 12, 16, 35] {
    ///     h.observe(v);
    /// }
    /// let p50 = h.percentile(0.5);
    /// assert!(p50 > 10.0 && p50 <= 20.0, "p50 = {p50}");
    /// ```
    pub fn percentile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += count;
            if (cumulative as f64) < target {
                continue;
            }
            if i >= self.bounds.len() {
                // +Inf bucket: clamp to the last finite bound.
                return self.bounds.last().copied().unwrap_or(0) as f64;
            }
            let upper = self.bounds[i] as f64;
            let lower = if i == 0 {
                0.0
            } else {
                self.bounds[i - 1] as f64
            };
            let frac = (target - before as f64) / count as f64;
            return lower + (upper - lower) * frac;
        }
        self.bounds.last().copied().unwrap_or(0) as f64
    }

    /// Observations recorded at or below `value`, quantized up to the
    /// inclusive bound of the bucket containing `value` (i.e. counts the
    /// whole bucket `value` falls in). Used by the SLO burn-rate check,
    /// where the ≤25% bucket-width quantization of the log-linear layout
    /// is an acceptable threshold error.
    pub fn count_le(&self, value: u64) -> u64 {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.counts[..=idx].iter().sum()
    }

    /// Renders the histogram family (`# HELP`/`# TYPE` headers, cumulative
    /// `_bucket` samples, `_sum`, `_count`) into `out`.
    pub fn render_into(&self, out: &mut String, name: &str, help: &str) {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(help);
        out.push_str("\n# TYPE ");
        out.push_str(name);
        out.push_str(" histogram\n");
        self.render_labelled_into(out, name, "");
    }

    /// Renders only the samples (`_bucket`/`_sum`/`_count`) with `labels`
    /// (e.g. `tenant="a",phase="e2e"`, already escaped) prefixed to the
    /// `le` label, so one `# HELP`/`# TYPE` header can cover many
    /// labelled series of the same family. Pass `""` for no extra labels.
    pub fn render_labelled_into(&self, out: &mut String, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let mut cumulative = 0u64;
        for (i, &b) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i];
            out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{b}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.counts[self.bounds.len()];
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!("{name}_sum{braces} {}\n", self.sum));
        out.push_str(&format!("{name}_count{braces} {cumulative}\n"));
    }

    /// The histogram family as a standalone exposition string.
    pub fn prometheus_text(&self, name: &str, help: &str) -> String {
        let mut out = String::new();
        self.render_into(&mut out, name, help);
        out
    }
}

/// Interpolated quantile `q` (in `[0, 1]`) over `sorted` exact samples
/// (ascending). Uses the standard linear rank interpolation
/// (`rank = q·(n−1)`), matching what `/status` reports from bucketed
/// data — this is the shared implementation `tf-bench serving` uses for
/// its client-side latency samples. Returns 0.0 for an empty slice.
///
/// ```
/// let samples = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(rustflow::percentile(&samples, 0.0), 1.0);
/// assert_eq!(rustflow::percentile(&samples, 0.5), 2.5);
/// assert_eq!(rustflow::percentile(&samples, 1.0), 4.0);
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
}

/// Linear subdivisions per octave in the log-linear bucket layout, as a
/// power of two: 2² = 4 sub-buckets per doubling.
const LOG_LINEAR_SUB_BITS: u32 = 2;
/// Linear sub-buckets per octave.
const LOG_LINEAR_SUB: u64 = 1 << LOG_LINEAR_SUB_BITS;
/// Largest octave shift with finite buckets. The top finite bound is
/// `(2·SUB << MAX_SHIFT) − 1` = 134 217 727 µs ≈ 134 s; anything above
/// lands in the `+Inf` overflow bucket.
const LOG_LINEAR_MAX_SHIFT: u64 = 24;
/// Finite bucket count: `2·SUB` unit-width buckets for values below
/// `2·SUB`, then `SUB` buckets per octave for shifts `1..=MAX_SHIFT`.
const LOG_LINEAR_FINITE: usize =
    (2 * LOG_LINEAR_SUB + LOG_LINEAR_MAX_SHIFT * LOG_LINEAR_SUB) as usize;

/// A lock-free log-linear (HDR-style) histogram: the recording side of
/// the executor's online latency pipeline.
///
/// [`record`](AtomicHistogram::record) is two relaxed `fetch_add`s — no
/// locks, no allocation — so tenant latency shards can sit on the hot
/// run-finalization path. Buckets cover `0 µs ..= ~134 s` with at most
/// 25% relative width (4 linear sub-buckets per power-of-two octave,
/// 104 finite buckets + `+Inf` overflow, ~0.8 KiB per shard); values
/// past the top finite bound count toward `+Inf`.
///
/// [`snapshot`](AtomicHistogram::snapshot) folds the shard into a plain
/// [`Histogram`] for rendering and quantile interpolation. Snapshots are
/// advisory: concurrent recording can tear `_sum` against the bucket
/// counts, but each snapshot's buckets are internally consistent enough
/// for monotone cumulative rendering.
///
/// ```
/// let h = rustflow::AtomicHistogram::new();
/// h.record(7);
/// h.record(1_000);
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 2);
/// assert_eq!(snap.sum(), 1_007);
/// ```
pub struct AtomicHistogram {
    /// `LOG_LINEAR_FINITE` finite buckets plus the `+Inf` overflow slot.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl AtomicHistogram {
    /// A zeroed histogram with the crate-wide log-linear layout.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: (0..=LOG_LINEAR_FINITE).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// The shared log-linear bucket bounds (inclusive upper bounds, the
    /// `+Inf` overflow bucket implicit), exposed so scrape consumers can
    /// reconstruct distributions with [`Histogram::from_parts`].
    pub fn bounds_us() -> Vec<u64> {
        let mut bounds = Vec::with_capacity(LOG_LINEAR_FINITE);
        // Unit-width buckets: le="0" .. le="7".
        for v in 0..2 * LOG_LINEAR_SUB {
            bounds.push(v);
        }
        // SUB buckets per octave, each `2^shift` wide.
        for shift in 1..=LOG_LINEAR_MAX_SHIFT {
            for sub in 0..LOG_LINEAR_SUB {
                bounds.push(((LOG_LINEAR_SUB + sub + 1) << shift) - 1);
            }
        }
        debug_assert_eq!(bounds.len(), LOG_LINEAR_FINITE);
        bounds
    }

    /// Bucket index for `value`: direct for small values, otherwise the
    /// top `1 + SUB_BITS` significant bits select (octave, sub-bucket).
    fn bucket_index(value: u64) -> usize {
        if value < 2 * LOG_LINEAR_SUB {
            return value as usize;
        }
        let msb = 63 - u64::leading_zeros(value) as u64;
        let shift = msb - LOG_LINEAR_SUB_BITS as u64;
        if shift > LOG_LINEAR_MAX_SHIFT {
            return LOG_LINEAR_FINITE; // +Inf overflow bucket
        }
        let sub = (value >> shift) - LOG_LINEAR_SUB;
        ((shift + 1) * LOG_LINEAR_SUB + sub) as usize
    }

    /// Records one observation: two relaxed `fetch_add`s.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds the shard into a plain [`Histogram`] (relaxed loads; see the
    /// type docs for the tearing caveat).
    pub fn snapshot(&self) -> Histogram {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let sum = self.sum.load(Ordering::Relaxed);
        Histogram::from_parts(Self::bounds_us(), counts, sum)
            .expect("layout invariant: FINITE+1 counts over strictly increasing bounds")
    }
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new()
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("AtomicHistogram")
            .field("count", &snap.count())
            .field("sum", &snap.sum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(executed: u64, steals: u64) -> WorkerStats {
        WorkerStats {
            executed,
            steals,
            ..WorkerStats::default()
        }
    }

    #[test]
    fn total_sums_workers() {
        let s = ExecutorStats {
            workers: vec![stats(3, 1), stats(4, 2)],
            tenants: vec![],
        };
        let t = s.total();
        assert_eq!(t.executed, 7);
        assert_eq!(t.steals, 3);
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let early = ExecutorStats {
            workers: vec![stats(3, 5)],
            tenants: vec![],
        };
        let late = ExecutorStats {
            workers: vec![stats(10, 5), stats(2, 0)],
            tenants: vec![],
        };
        let d = late.delta(&early);
        assert_eq!(d.workers[0].executed, 7);
        assert_eq!(d.workers[0].steals, 0);
        // Worker appearing only in the later snapshot passes through.
        assert_eq!(d.workers[1].executed, 2);
        // Saturation instead of underflow.
        assert_eq!(early.delta(&late).workers[0].executed, 0);
    }

    #[test]
    fn prometheus_text_is_valid_exposition_format() {
        let s = ExecutorStats {
            workers: vec![stats(3, 1), stats(4, 2)],
            tenants: vec![],
        };
        let text = s.prometheus_text();
        let mut samples = 0;
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines inside the exposition");
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP rustflow_") || rest.starts_with("TYPE rustflow_"),
                    "bad comment line: {line}"
                );
                if let Some(ty) = rest.strip_prefix("TYPE ") {
                    assert!(ty.ends_with(" counter"), "all metrics are counters: {line}");
                }
                continue;
            }
            // Sample line: name{worker="N"} value
            let open = line.find('{').expect("label set");
            let close = line.find('}').expect("label set closed");
            let name = &line[..open];
            assert!(name.starts_with("rustflow_") && name.ends_with("_total"));
            let labels = &line[open + 1..close];
            assert!(labels.starts_with("worker=\"") && labels.ends_with('"'));
            let value = line[close + 1..].trim();
            value.parse::<u64>().expect("integer sample value");
            samples += 1;
        }
        // 11 metrics × 2 workers.
        assert_eq!(samples, 22);
        assert!(text.contains("rustflow_tasks_executed_total{worker=\"0\"} 3"));
        assert!(text.contains("rustflow_steals_total{worker=\"1\"} 2"));
    }

    #[test]
    fn tenant_families_render_with_escaped_labels() {
        let s = ExecutorStats {
            workers: vec![stats(1, 0)],
            tenants: vec![TenantStats {
                name: "ana\"lytics".into(),
                weight: 4,
                queued: 2,
                in_flight: 1,
                submitted: 10,
                dispatched: 8,
                coalesced: 1,
                completed: 7,
                rejected_saturated: 3,
                rejected_shutdown: 0,
                rejected_infeasible: 2,
                rejected_breaker: 1,
                shed: 4,
                retry_budget_exhausted: 5,
                consecutive_failures: 0,
                breaker_state: 1,
            }],
        };
        let text = s.prometheus_text();
        assert!(text.contains("# TYPE rustflow_tenant_submissions_total counter"));
        assert!(text.contains("# TYPE rustflow_tenant_queued gauge"));
        assert!(text.contains("rustflow_tenant_submissions_total{tenant=\"ana\\\"lytics\"} 10"));
        assert!(text.contains("rustflow_tenant_in_flight{tenant=\"ana\\\"lytics\"} 1"));
        // Counter-wise delta: counters subtract, gauges pass through.
        let d = s.delta(&s);
        assert_eq!(d.tenants[0].submitted, 0);
        assert_eq!(d.tenants[0].queued, 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_closed_by_inf() {
        let mut h = Histogram::with_bounds(vec![10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5122);
        // Bounds are inclusive: 10 lands in le="10", 100 in le="100".
        assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]);
        let text = h.prometheus_text("x_us", "help");
        assert!(text.contains("# TYPE x_us histogram"));
        assert!(text.contains("x_us_bucket{le=\"10\"} 2"));
        assert!(text.contains("x_us_bucket{le=\"100\"} 4"));
        assert!(text.contains("x_us_bucket{le=\"1000\"} 4"));
        assert!(text.contains("x_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("x_us_sum 5122"));
        assert!(text.contains("x_us_count 5"));
        // +Inf closes the family: its cumulative count equals _count.
        let inf: u64 = 5;
        assert_eq!(h.count(), inf);
    }

    #[test]
    fn label_values_escaped_per_exposition_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn sample_percentile_interpolates() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 0.25), 20.0);
        assert_eq!(percentile(&v, 0.5), 30.0);
        assert_eq!(percentile(&v, 0.9), 46.0);
        assert_eq!(percentile(&v, 1.0), 50.0);
        // Out-of-range q clamps.
        assert_eq!(percentile(&v, 1.5), 50.0);
    }

    #[test]
    fn histogram_percentile_brackets_the_true_quantile() {
        let mut h = Histogram::with_bounds(AtomicHistogram::bounds_us());
        for v in 1..=1000u64 {
            h.observe(v);
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = h.percentile(q);
            // Log-linear layout: at most one bucket width (≤25%) off.
            assert!(
                (est - exact).abs() <= exact * 0.25 + 1.0,
                "p{q}: est {est} vs exact {exact}"
            );
        }
        // Empty histogram reports 0.
        assert_eq!(Histogram::new_us().percentile(0.99), 0.0);
    }

    #[test]
    fn histogram_count_le_quantizes_to_bucket_bound() {
        let mut h = Histogram::with_bounds(vec![10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count_le(10), 2);
        // 50 falls in the (10, 100] bucket: the whole bucket counts.
        assert_eq!(h.count_le(50), 4);
        assert_eq!(h.count_le(1000), 4);
        // Above the top finite bound: everything, including +Inf.
        assert_eq!(h.count_le(u64::MAX), 5);
    }

    #[test]
    fn from_parts_validates_shape() {
        assert!(Histogram::from_parts(vec![1, 2], vec![0, 0, 0], 0).is_some());
        assert!(Histogram::from_parts(vec![1, 2], vec![0, 0], 0).is_none());
        assert!(Histogram::from_parts(vec![2, 1], vec![0, 0, 0], 0).is_none());
        let h = Histogram::from_parts(vec![10, 100], vec![1, 2, 3], 500).unwrap();
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 500);
        assert_eq!(h.bucket_counts(), &[1, 2, 3]);
    }

    #[test]
    fn atomic_histogram_layout_is_consistent() {
        let bounds = AtomicHistogram::bounds_us();
        // 8 unit buckets then 4 per octave, strictly increasing.
        assert_eq!(bounds.len(), LOG_LINEAR_FINITE);
        assert_eq!(&bounds[..10], &[0, 1, 2, 3, 4, 5, 6, 7, 9, 11]);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            *bounds.last().unwrap(),
            ((2 * LOG_LINEAR_SUB) << LOG_LINEAR_MAX_SHIFT) - 1
        );
        // bucket_index agrees with partition_point over the bounds for
        // values around every bucket edge (inclusive-upper convention).
        for &b in &bounds {
            for v in [b.saturating_sub(1), b, b + 1] {
                let expect = bounds.partition_point(|&x| x < v).min(bounds.len());
                assert_eq!(
                    AtomicHistogram::bucket_index(v),
                    expect,
                    "value {v} (edge {b})"
                );
            }
        }
        assert_eq!(AtomicHistogram::bucket_index(u64::MAX), LOG_LINEAR_FINITE);
        // Bucket resolution: 1 µs absolute in the unit region, ≤ 25%
        // relative everywhere above it.
        for w in bounds.windows(2) {
            let width = (w[1] - w[0]) as f64;
            assert!(
                width <= 1.0 || width / w[1] as f64 <= 0.25 + 1e-9,
                "bucket {w:?}"
            );
        }
    }

    #[test]
    fn atomic_histogram_records_and_snapshots() {
        let h = AtomicHistogram::new();
        for v in [0, 1, 7, 8, 9, 100, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 8);
        // u64::MAX lands in +Inf.
        assert_eq!(*snap.bucket_counts().last().unwrap(), 1);
        assert_eq!(snap.count_le(7), 3);
        // Labelled rendering: cumulative buckets, +Inf closes the family.
        let mut out = String::new();
        snap.render_labelled_into(&mut out, "x_us", "tenant=\"t\",phase=\"e2e\"");
        assert!(out.contains("x_us_bucket{tenant=\"t\",phase=\"e2e\",le=\"+Inf\"} 8"));
        assert!(out.contains("x_us_count{tenant=\"t\",phase=\"e2e\"} 8"));
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative buckets must be monotone: {line}");
            last = v;
        }
    }
}
