//! Per-worker scheduler counters and their Prometheus-style export.
//!
//! Workers maintain relaxed atomic counters for every Algorithm-1 event
//! class (executions, cache hits, steals and their failures, parks,
//! wake-ups, injector pops). [`crate::Executor::stats`] snapshots them
//! into an [`ExecutorStats`], which can be diffed against an earlier
//! snapshot ([`ExecutorStats::delta`]) and rendered in the Prometheus
//! text exposition format ([`ExecutorStats::prometheus_text`]) for
//! scraping or offline analysis.

/// Snapshot of one worker's diagnostic counters.
///
/// All counters are maintained with relaxed atomics on the worker's own
/// cache line; they are advisory (monotonic, but a snapshot is not an
/// atomic cut across workers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Tasks pulled from the exclusive cache slot (linear-chain steps
    /// that touched no queue).
    pub cache_hits: u64,
    /// Successful steals this worker performed.
    pub steals: u64,
    /// Individual steal attempts (one per victim probe).
    pub steal_attempts: u64,
    /// Steal rounds that found nothing anywhere (victims + injector).
    pub steal_fails: u64,
    /// Tasks taken from the external injector queue.
    pub injector_pops: u64,
    /// Times this worker entered the idle path.
    pub parks: u64,
    /// Wake-ups this worker issued (targeted and probabilistic).
    pub wakes_sent: u64,
}

impl WorkerStats {
    /// Counter-wise `self - earlier`, saturating at zero.
    pub fn delta(&self, earlier: &WorkerStats) -> WorkerStats {
        WorkerStats {
            executed: self.executed.saturating_sub(earlier.executed),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            steals: self.steals.saturating_sub(earlier.steals),
            steal_attempts: self.steal_attempts.saturating_sub(earlier.steal_attempts),
            steal_fails: self.steal_fails.saturating_sub(earlier.steal_fails),
            injector_pops: self.injector_pops.saturating_sub(earlier.injector_pops),
            parks: self.parks.saturating_sub(earlier.parks),
            wakes_sent: self.wakes_sent.saturating_sub(earlier.wakes_sent),
        }
    }

    fn add(&mut self, other: &WorkerStats) {
        self.executed += other.executed;
        self.cache_hits += other.cache_hits;
        self.steals += other.steals;
        self.steal_attempts += other.steal_attempts;
        self.steal_fails += other.steal_fails;
        self.injector_pops += other.injector_pops;
        self.parks += other.parks;
        self.wakes_sent += other.wakes_sent;
    }
}

/// Accessor pulling one counter out of a [`WorkerStats`].
type MetricAccessor = fn(&WorkerStats) -> u64;

/// The metric catalogue: (suffix-less metric name, help text, accessor).
const METRICS: &[(&str, &str, MetricAccessor)] = &[
    (
        "rustflow_tasks_executed_total",
        "Tasks executed, per worker.",
        |w| w.executed,
    ),
    (
        "rustflow_cache_hits_total",
        "Tasks pulled from the exclusive per-worker cache slot.",
        |w| w.cache_hits,
    ),
    (
        "rustflow_steals_total",
        "Successful steals, per thief.",
        |w| w.steals,
    ),
    (
        "rustflow_steal_attempts_total",
        "Individual steal probes, per thief.",
        |w| w.steal_attempts,
    ),
    (
        "rustflow_steal_failures_total",
        "Steal rounds that found no work anywhere.",
        |w| w.steal_fails,
    ),
    (
        "rustflow_injector_pops_total",
        "Tasks taken from the external injector queue.",
        |w| w.injector_pops,
    ),
    (
        "rustflow_parks_total",
        "Times a worker parked on the idler list.",
        |w| w.parks,
    ),
    (
        "rustflow_wakes_sent_total",
        "Wake-ups issued (targeted and probabilistic).",
        |w| w.wakes_sent,
    ),
];

/// A point-in-time snapshot of every worker's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// One entry per worker, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl ExecutorStats {
    /// Sum of all workers' counters.
    pub fn total(&self) -> WorkerStats {
        let mut total = WorkerStats::default();
        for w in &self.workers {
            total.add(w);
        }
        total
    }

    /// Worker-wise difference against an `earlier` snapshot of the same
    /// executor — the activity that happened in between (e.g. during one
    /// benchmark run). Saturates at zero per counter.
    pub fn delta(&self, earlier: &ExecutorStats) -> ExecutorStats {
        ExecutorStats {
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| match earlier.workers.get(i) {
                    Some(e) => w.delta(e),
                    None => w.clone(),
                })
                .collect(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one counter family per metric with `# HELP`/`# TYPE` headers and
    /// one `{worker="N"}`-labelled sample per worker.
    ///
    /// ```
    /// let ex = rustflow::Executor::new(2);
    /// let text = ex.stats().prometheus_text();
    /// assert!(text.contains("# TYPE rustflow_tasks_executed_total counter"));
    /// assert!(text.contains("rustflow_tasks_executed_total{worker=\"0\"}"));
    /// ```
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(METRICS.len() * (96 + self.workers.len() * 48));
        for (name, help, get) in METRICS {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" counter\n");
            for (id, w) in self.workers.iter().enumerate() {
                out.push_str(&format!("{name}{{worker=\"{id}\"}} {}\n", get(w)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(executed: u64, steals: u64) -> WorkerStats {
        WorkerStats {
            executed,
            steals,
            ..WorkerStats::default()
        }
    }

    #[test]
    fn total_sums_workers() {
        let s = ExecutorStats {
            workers: vec![stats(3, 1), stats(4, 2)],
        };
        let t = s.total();
        assert_eq!(t.executed, 7);
        assert_eq!(t.steals, 3);
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let early = ExecutorStats {
            workers: vec![stats(3, 5)],
        };
        let late = ExecutorStats {
            workers: vec![stats(10, 5), stats(2, 0)],
        };
        let d = late.delta(&early);
        assert_eq!(d.workers[0].executed, 7);
        assert_eq!(d.workers[0].steals, 0);
        // Worker appearing only in the later snapshot passes through.
        assert_eq!(d.workers[1].executed, 2);
        // Saturation instead of underflow.
        assert_eq!(early.delta(&late).workers[0].executed, 0);
    }

    #[test]
    fn prometheus_text_is_valid_exposition_format() {
        let s = ExecutorStats {
            workers: vec![stats(3, 1), stats(4, 2)],
        };
        let text = s.prometheus_text();
        let mut samples = 0;
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines inside the exposition");
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP rustflow_") || rest.starts_with("TYPE rustflow_"),
                    "bad comment line: {line}"
                );
                if let Some(ty) = rest.strip_prefix("TYPE ") {
                    assert!(ty.ends_with(" counter"), "all metrics are counters: {line}");
                }
                continue;
            }
            // Sample line: name{worker="N"} value
            let open = line.find('{').expect("label set");
            let close = line.find('}').expect("label set closed");
            let name = &line[..open];
            assert!(name.starts_with("rustflow_") && name.ends_with("_total"));
            let labels = &line[open + 1..close];
            assert!(labels.starts_with("worker=\"") && labels.ends_with('"'));
            let value = line[close + 1..].trim();
            value.parse::<u64>().expect("integer sample value");
            samples += 1;
        }
        // 8 metrics × 2 workers.
        assert_eq!(samples, 16);
        assert!(text.contains("rustflow_tasks_executed_total{worker=\"0\"} 3"));
        assert!(text.contains("rustflow_steals_total{worker=\"1\"} 2"));
    }
}
