//! Built-in algorithm collection (§III-F of the paper).
//!
//! "Cpp-Taskflow has a built-in algorithm collection that implemented
//! common parallel workloads such as `parallel_for`, `reduce`, and
//! `transform`." Each algorithm here *builds a task-graph module* into the
//! caller's [`Taskflow`] and returns a `(source, target)` pair of
//! synchronization tasks, so the module can be spliced into a larger task
//! dependency graph with ordinary `precede` calls — the composition idiom
//! the paper advocates for building large applications from smaller,
//! structurally correct patterns.

use crate::shared_vec::SharedVec;
use crate::sync::Mutex;
use crate::task::Task;
use crate::taskflow::Taskflow;
use std::ops::Range;
use std::sync::Arc;

/// Chooses a chunk size: explicit, or `len / (4 * workers)` when `chunk`
/// is 0 (enough chunks for stealing to balance, few enough to amortize
/// per-task overhead).
fn effective_chunk(tf: &Taskflow, len: usize, chunk: usize) -> usize {
    if chunk > 0 {
        return chunk;
    }
    let workers = tf.executor().num_workers();
    (len / (4 * workers)).max(1)
}

/// Splits `range` into `[lo, hi)` chunks of size `chunk`.
fn chunks(range: Range<usize>, chunk: usize) -> impl Iterator<Item = Range<usize>> {
    let end = range.end;
    range.step_by(chunk.max(1)).map(move |lo| Range {
        start: lo,
        end: (lo + chunk).min(end),
    })
}

/// Runs `f(i)` for every `i` in `range`, in parallel chunks.
///
/// Returns `(source, target)` placeholder tasks bracketing the module:
/// make predecessors `precede` the source and the target `precede`
/// successors to splice the loop into a larger graph.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// let tf = rustflow::Taskflow::new();
/// let sum = Arc::new(AtomicUsize::new(0));
/// let s = Arc::clone(&sum);
/// rustflow::algorithm::parallel_for(&tf, 0..100, 8, move |i| {
///     s.fetch_add(i, Ordering::Relaxed);
/// });
/// tf.wait_for_all();
/// assert_eq!(sum.load(Ordering::Relaxed), 4950);
/// ```
pub fn parallel_for<'g, F>(
    tf: &'g Taskflow,
    range: Range<usize>,
    chunk: usize,
    f: F,
) -> (Task<'g>, Task<'g>)
where
    F: Fn(usize) + Send + Sync + 'static,
{
    let source = tf.placeholder().name("pfor_source");
    let target = tf.placeholder().name("pfor_target");
    let chunk = effective_chunk(tf, range.len(), chunk);
    let f = Arc::new(f);
    let mut any = false;
    for c in chunks(range, chunk) {
        let f = Arc::clone(&f);
        let body = tf
            .emplace(move || {
                for i in c.clone() {
                    f(i);
                }
            })
            .name("pfor_body");
        source.precede(body);
        body.precede(target);
        any = true;
    }
    if !any {
        source.precede(target);
    }
    (source, target)
}

/// Mutates every element of `data` in parallel: `f(i, &mut data[i])`.
/// Each index is visited by exactly one task, so the closure gets a true
/// `&mut` with no locking.
pub fn for_each_mut<'g, T, F>(
    tf: &'g Taskflow,
    data: &SharedVec<T>,
    chunk: usize,
    f: F,
) -> (Task<'g>, Task<'g>)
where
    T: Send + 'static,
    F: Fn(usize, &mut T) + Send + Sync + 'static,
{
    let len = data.len();
    let f = Arc::new(f);
    let data = data.clone();
    parallel_for(tf, 0..len, chunk, move |i| {
        // SAFETY: parallel_for assigns each index to exactly one chunk
        // task, so this is the unique accessor of element i.
        let elem = unsafe { data.get_mut_raw(i) };
        f(i, elem);
    })
}

/// Handle to a reduction's result, readable after the graph completes.
#[derive(Clone)]
pub struct ReduceResult<T> {
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> ReduceResult<T> {
    fn new() -> Self {
        ReduceResult {
            slot: Arc::new(Mutex::new(None)),
        }
    }

    /// Takes the result, leaving `None`. Returns `None` if the reduction
    /// has not run yet.
    pub fn take(&self) -> Option<T> {
        self.slot.lock().take()
    }

    /// Clones the result out.
    pub fn get(&self) -> Option<T>
    where
        T: Clone,
    {
        self.slot.lock().clone()
    }
}

/// Parallel reduction over an index range.
///
/// Each chunk folds its indices into a private accumulator seeded with a
/// clone of `init`; a final task joins the partials (plus `init`) with
/// `join` and publishes the result.
///
/// ```
/// let tf = rustflow::Taskflow::new();
/// let (_s, _t, result) = rustflow::algorithm::reduce(
///     &tf, 0..1000, 64, 0usize, |acc, i| acc + i, |a, b| a + b);
/// tf.wait_for_all();
/// assert_eq!(result.take(), Some(499_500));
/// ```
pub fn reduce<'g, T, F, J>(
    tf: &'g Taskflow,
    range: Range<usize>,
    chunk: usize,
    init: T,
    fold: F,
    join: J,
) -> (Task<'g>, Task<'g>, ReduceResult<T>)
where
    T: Send + Clone + 'static,
    F: Fn(T, usize) -> T + Send + Sync + 'static,
    J: Fn(T, T) -> T + Send + Sync + 'static,
{
    let source = tf.placeholder().name("reduce_source");
    let target = tf.placeholder().name("reduce_target");
    let result = ReduceResult::new();
    let chunk = effective_chunk(tf, range.len(), chunk);
    let fold = Arc::new(fold);
    let partials: Arc<Mutex<Vec<T>>> = Arc::new(Mutex::new(Vec::new()));

    let mut bodies = Vec::new();
    for c in chunks(range, chunk) {
        let fold = Arc::clone(&fold);
        let partials = Arc::clone(&partials);
        let init = init.clone();
        let body = tf
            .emplace(move || {
                let mut acc = init.clone();
                for i in c.clone() {
                    acc = fold(acc, i);
                }
                partials.lock().push(acc);
            })
            .name("reduce_body");
        source.precede(body);
        bodies.push(body);
    }

    let merge = {
        let partials = Arc::clone(&partials);
        let slot = Arc::clone(&result.slot);
        tf.emplace(move || {
            let mut parts = partials.lock();
            let mut acc: Option<T> = None;
            for p in parts.drain(..) {
                acc = Some(match acc {
                    None => p,
                    Some(a) => join(a, p),
                });
            }
            *slot.lock() = acc.or_else(|| Some(init.clone()));
        })
        .name("reduce_merge")
    };
    merge.succeed(&bodies);
    if bodies.is_empty() {
        source.precede(merge);
    }
    merge.precede(target);
    (source, target, result)
}

/// Parallel element-wise transform: `dst[i] = f(&src[i])`.
///
/// `src` and `dst` must have equal lengths and must be distinct
/// allocations (enforced by type: different element types; for same-typed
/// in-place transforms use [`for_each_mut`]).
pub fn transform<'g, A, B, F>(
    tf: &'g Taskflow,
    src: &SharedVec<A>,
    dst: &SharedVec<B>,
    chunk: usize,
    f: F,
) -> (Task<'g>, Task<'g>)
where
    A: Send + 'static,
    B: Send + 'static,
    F: Fn(&A) -> B + Send + Sync + 'static,
{
    assert_eq!(
        src.len(),
        dst.len(),
        "transform: src and dst lengths differ"
    );
    let src = src.clone();
    let dst = dst.clone();
    let f = Arc::new(f);
    parallel_for(tf, 0..src.len(), chunk, move |i| {
        // SAFETY: one task per index writes dst[i]; src is only read.
        unsafe {
            *dst.get_mut_raw(i) = f(src.get_raw(i));
        }
    })
}

/// Map-reduce over shared data: folds `map(&src[i])` into a single value.
pub fn transform_reduce<'g, A, T, M, J>(
    tf: &'g Taskflow,
    src: &SharedVec<A>,
    chunk: usize,
    init: T,
    map: M,
    join: J,
) -> (Task<'g>, Task<'g>, ReduceResult<T>)
where
    A: Send + 'static,
    T: Send + Clone + 'static,
    M: Fn(&A) -> T + Send + Sync + 'static,
    J: Fn(T, T) -> T + Send + Sync + 'static,
{
    let src = src.clone();
    let join2 = Arc::new(join);
    let join_for_fold = Arc::clone(&join2);
    reduce(
        tf,
        0..src.len(),
        chunk,
        init,
        move |acc, i| {
            // SAFETY: src is read-only across all chunk tasks.
            let mapped = map(unsafe { src.get_raw(i) });
            join_for_fold(acc, mapped)
        },
        move |a, b| join2(a, b),
    )
}

/// Chains tasks so each runs after the previous one — Cpp-Taskflow's
/// `linearize`.
///
/// ```
/// let tf = rustflow::Taskflow::new();
/// let tasks: Vec<_> = (0..4).map(|_| tf.emplace(|| {})).collect();
/// rustflow::algorithm::linearize(&tasks);
/// tf.wait_for_all();
/// ```
pub fn linearize<'g>(tasks: &[Task<'g>]) {
    for pair in tasks.windows(2) {
        pair[0].precede(pair[1]);
    }
}

/// Parallel merge sort over a [`SharedVec`], built as a static task-graph
/// module: parallel chunk sorts, then a tree of pairwise merge rounds
/// ping-ponging between the data and a scratch buffer.
///
/// Returns `(source, target)` like the other algorithms. After the graph
/// completes, `data` is sorted.
///
/// ```
/// use rustflow::{SharedVec, Taskflow};
/// let tf = Taskflow::new();
/// let data = SharedVec::new(vec![5, 3, 9, 1, 4, 8, 2, 7, 6, 0]);
/// rustflow::algorithm::parallel_sort(&tf, &data, 3);
/// tf.wait_for_all();
/// assert_eq!(data.snapshot(), (0..10).collect::<Vec<_>>());
/// ```
pub fn parallel_sort<'g, T>(
    tf: &'g Taskflow,
    data: &SharedVec<T>,
    chunk: usize,
) -> (Task<'g>, Task<'g>)
where
    T: Ord + Clone + Send + 'static,
{
    let source = tf.placeholder().name("sort_source");
    let target = tf.placeholder().name("sort_target");
    let n = data.len();
    if n == 0 {
        source.precede(target);
        return (source, target);
    }
    let chunk = effective_chunk(tf, n, chunk).max(2);
    // Scratch buffer for the merge rounds (cloned contents; overwritten
    // before ever being read).
    let scratch = SharedVec::new(data.snapshot());

    // Round 0: sort each chunk in place. prev[i] covers
    // [i*chunk, (i+1)*chunk).
    let num_ranges = n.div_ceil(chunk);
    let mut prev: Vec<Task<'g>> = Vec::with_capacity(num_ranges);
    for i in 0..num_ranges {
        let lo = i * chunk;
        let hi = ((i + 1) * chunk).min(n);
        let data = data.clone();
        let t = tf
            .emplace(move || {
                // SAFETY: this task is the unique accessor of [lo, hi).
                unsafe { data.slice_mut_raw(lo, hi) }.sort();
            })
            .name("sort_chunk");
        source.precede(t);
        prev.push(t);
    }

    // Merge rounds: width doubles; buffers ping-pong.
    let mut width = chunk;
    let mut src_is_data = true;
    while width < n {
        let (src, dst) = if src_is_data {
            (data.clone(), scratch.clone())
        } else {
            (scratch.clone(), data.clone())
        };
        let num_out = n.div_ceil(2 * width);
        let mut next: Vec<Task<'g>> = Vec::with_capacity(num_out);
        for j in 0..num_out {
            let lo = j * 2 * width;
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let src = src.clone();
            let dst = dst.clone();
            let t = tf
                .emplace(move || {
                    // SAFETY: the producing tasks of [lo, hi) in the
                    // previous round precede this task; the destination
                    // range is exclusively ours.
                    unsafe {
                        let left = src.slice_raw(lo, mid);
                        let right = src.slice_raw(mid, hi);
                        let out = dst.slice_mut_raw(lo, hi);
                        merge_into(left, right, out);
                    }
                })
                .name("sort_merge");
            // Depend on the 1–2 previous-round tasks covering [lo, hi).
            t.succeed(prev[2 * j]);
            if 2 * j + 1 < prev.len() {
                t.succeed(prev[2 * j + 1]);
            }
            next.push(t);
        }
        prev = next;
        width *= 2;
        src_is_data = !src_is_data;
    }

    if !src_is_data {
        // Sorted data ended in the scratch buffer: copy back in parallel.
        let copy_chunk = chunk.max(n / 8);
        let mut copies = Vec::new();
        for lo in (0..n).step_by(copy_chunk) {
            let hi = (lo + copy_chunk).min(n);
            let data = data.clone();
            let scratch = scratch.clone();
            let t = tf
                .emplace(move || {
                    // SAFETY: all merge tasks precede the copies.
                    unsafe {
                        data.slice_mut_raw(lo, hi)
                            .clone_from_slice(scratch.slice_raw(lo, hi));
                    }
                })
                .name("sort_copyback");
            t.succeed(&prev);
            t.precede(target);
            copies.push(t);
        }
    } else {
        target.succeed(&prev);
    }
    (source, target)
}

/// Stable two-way merge of sorted `left` and `right` into `out`.
fn merge_into<T: Ord + Clone>(left: &[T], right: &[T], out: &mut [T]) {
    debug_assert_eq!(left.len() + right.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_left = j >= right.len() || (i < left.len() && left[i] <= right[j]);
        if take_left {
            *slot = left[i].clone();
            i += 1;
        } else {
            *slot = right[j].clone();
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tf() -> Taskflow {
        Taskflow::with_executor(Executor::new(4))
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn parallel_for_visits_every_index_once() {
        let tf = tf();
        let hits = Arc::new((0..1000).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let h = Arc::clone(&hits);
        parallel_for(&tf, 0..1000, 7, move |i| {
            h[i].fetch_add(1, Ordering::Relaxed);
        });
        tf.wait_for_all();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn parallel_for_empty_range() {
        let tf = tf();
        let (s, t) = parallel_for(&tf, 5..5, 4, |_| panic!("must not run"));
        assert_eq!(s.num_successors(), 1);
        assert_eq!(t.num_dependents(), 1);
        tf.wait_for_all();
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn parallel_for_auto_chunk() {
        let tf = tf();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        parallel_for(&tf, 0..100, 0, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        tf.wait_for_all();
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn for_each_mut_mutates_in_place() {
        let tf = tf();
        let data = SharedVec::new((0..256usize).collect());
        for_each_mut(&tf, &data, 16, |i, x| *x = i * 2);
        tf.wait_for_all();
        let v = data.snapshot();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn reduce_sums() {
        let tf = tf();
        let (_s, _t, r) = reduce(&tf, 0..10_000, 128, 0usize, |a, i| a + i, |a, b| a + b);
        tf.wait_for_all();
        assert_eq!(r.take(), Some((0..10_000).sum()));
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn reduce_empty_range_yields_init() {
        let tf = tf();
        let (_s, _t, r) = reduce(&tf, 3..3, 8, 42usize, |a, _| a, |a, _| a);
        tf.wait_for_all();
        assert_eq!(r.take(), Some(42));
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn reduce_result_get_clones() {
        let tf = tf();
        let (_s, _t, r) = reduce(&tf, 0..10, 4, 0usize, |a, i| a + i, |a, b| a + b);
        tf.wait_for_all();
        assert_eq!(r.get(), Some(45));
        assert_eq!(r.get(), Some(45)); // still there
        assert_eq!(r.take(), Some(45));
        assert_eq!(r.take(), None);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn transform_maps_elements() {
        let tf = tf();
        let src = SharedVec::new((0..100i64).collect());
        let dst = SharedVec::new(vec![0f64; 100]);
        transform(&tf, &src, &dst, 9, |&x| x as f64 * 0.5);
        tf.wait_for_all();
        let out = dst.snapshot();
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as f64 * 0.5));
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    #[should_panic(expected = "lengths differ")]
    fn transform_length_mismatch_panics() {
        let tf = tf();
        let src = SharedVec::new(vec![1, 2, 3]);
        let dst = SharedVec::new(vec![0; 2]);
        transform(&tf, &src, &dst, 1, |&x| x);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn transform_reduce_max() {
        let tf = tf();
        let src = SharedVec::new(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let (_s, _t, r) = transform_reduce(&tf, &src, 3, i64::MIN, |&x| x, |a, b| a.max(b));
        tf.wait_for_all();
        assert_eq!(r.take(), Some(9));
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn linearize_orders_chain() {
        let tf = tf();
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..20)
            .map(|i| {
                let c = Arc::clone(&counter);
                tf.emplace(move || {
                    assert_eq!(c.fetch_add(1, Ordering::SeqCst), i);
                })
            })
            .collect();
        linearize(&tasks);
        tf.wait_for_all();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn parallel_sort_sorts() {
        let tf = tf();
        let mut values: Vec<i64> = (0..5000).map(|i| (i * 7919) % 4096 - 2048).collect();
        let data = SharedVec::new(values.clone());
        parallel_sort(&tf, &data, 128);
        tf.wait_for_all();
        values.sort();
        assert_eq!(data.snapshot(), values);
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn parallel_sort_edge_sizes() {
        for n in [0usize, 1, 2, 3, 7, 64, 65] {
            let tf = tf();
            let mut values: Vec<u32> = (0..n as u32).rev().collect();
            let data = SharedVec::new(values.clone());
            parallel_sort(&tf, &data, 4);
            tf.wait_for_all();
            values.sort_unstable();
            assert_eq!(data.snapshot(), values, "n = {n}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn parallel_sort_splices() {
        // fill -> sort -> verify, in one graph.
        let tf = tf();
        let data = SharedVec::new(vec![0i64; 1000]);
        let (fill_s, fill_t) = for_each_mut(&tf, &data, 64, |i, x| {
            *x = ((i as i64) * 48271) % 1000 - 500;
        });
        let (sort_s, sort_t) = parallel_sort(&tf, &data, 100);
        fill_t.precede(sort_s);
        let d2 = data.clone();
        let check = tf.emplace(move || {
            let v = d2.snapshot();
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        });
        sort_t.precede(check);
        let _ = fill_s;
        tf.wait_for_all();
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns a worker pool; too slow under miri")]
    fn modules_splice_in_order() {
        // before -> [parallel_for] -> after must observe strict ordering.
        let tf = tf();
        let counter = Arc::new(AtomicUsize::new(0));
        let c1 = Arc::clone(&counter);
        let before = tf.emplace(move || {
            c1.store(1, Ordering::SeqCst);
        });
        let c2 = Arc::clone(&counter);
        let (s, t) = parallel_for(&tf, 0..64, 8, move |_| {
            assert!(c2.load(Ordering::SeqCst) >= 1);
        });
        let c3 = Arc::clone(&counter);
        let after = tf.emplace(move || {
            assert_eq!(c3.load(Ordering::SeqCst), 1);
            c3.store(2, Ordering::SeqCst);
        });
        before.precede(s);
        t.precede(after);
        tf.wait_for_all();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }
}
