//! Model-checking harness for the finalize → re-arm → re-dispatch
//! handoff of reusable topologies.
//!
//! Only compiled under the `rustflow_check` cargo feature, where the
//! [`crate::sync`] facade resolves to the deterministic interleaving
//! checker's shims — so the **production** [`Topology`] state machine
//! (`enqueue` / `advance` / `begin_iteration`) is what the checker
//! explores, not a hand-written re-implementation.
//!
//! The harness replaces the work-stealing executor with the smallest
//! faithful stand-in: a single blocking ready-queue (facade mutex +
//! condvar) plays the role of the deques/injector, and
//! [`RearmHarness::execute`] mirrors the executor's `complete()`
//! bookkeeping — successor join-counter count-down with AcqRel, `alive`
//! count-down, and the final decrement taking the driver role. Replacing
//! the queues is sound for this model because what's under test is the
//! *re-arm ordering*, not the queue protocol (the queues have their own
//! models): any lost or premature token becomes a blocked `pop`, which
//! the checker reports as a deadlock.
//!
//! The interesting race surface: a straggler thief popping a
//! just-published source of iteration *k+1* while the driver is still
//! re-arming — with the `rearm_publish` weakening (publish before
//! re-arm), the thief counts down join counters and `alive` values that
//! still hold iteration *k*'s state, losing the fan-in successor and
//! underflowing `alive`; the batch never completes.

use crate::error::{FailurePolicy, RunResult};
use crate::future::{promise_pair, SharedFuture};
use crate::graph::{Graph, RawNode, Work};
use crate::sync::{AtomicUsize, Condvar, Mutex};
use crate::topology::{Advance, PendingRun, RunCondition, Topology};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A miniature executor around a production [`Topology`], exposing the
/// exact operations a model thread needs: blocking [`RearmHarness::pop`]
/// and completion-mirroring [`RearmHarness::execute`].
pub struct RearmHarness {
    topo: Arc<Topology>,
    /// Ready tasks, in the role of the executor's queues. Blocking pop:
    /// a token lost by incorrect re-arm ordering surfaces as a deadlock.
    ready: Mutex<VecDeque<usize>>,
    cv: Condvar,
    /// Per-node execution counters, index-aligned with the graph.
    counters: Vec<Arc<AtomicUsize>>,
    /// Tokens popped but skipped because the topology was cancelled —
    /// the harness twin of the executor's skip path (bookkeeping still
    /// runs, the closure does not).
    skips: AtomicUsize,
    /// Completion future of the single submitted batch.
    future: SharedFuture<RunResult>,
}

impl RearmHarness {
    /// Builds the minimal fan-in graph `A → C ← B` in a reusable
    /// topology, submits one `Count(runs)` batch through the production
    /// path, and starts the first iteration on the calling thread (so the
    /// model's concurrency begins with the workers, not the setup).
    ///
    /// Tokens published per iteration: `A`, `B`, then `C` once both
    /// predecessors finished — `3 * runs` total; spawn workers whose pop
    /// counts sum to exactly that.
    pub fn fan_in(runs: u64) -> Arc<RearmHarness> {
        let mut g = Graph::new();
        let counters: Vec<Arc<AtomicUsize>> =
            (0..3).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let count = |c: &Arc<AtomicUsize>| {
            let c = Arc::clone(c);
            Work::Static(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }))
        };
        let a = g.emplace(count(&counters[0]));
        let b = g.emplace(count(&counters[1]));
        let c = g.emplace(count(&counters[2]));
        // SAFETY: single-threaded build phase.
        unsafe {
            (*a).structure.successors.get_mut().push(c);
            (*b).structure.successors.get_mut().push(c);
            *(*c).structure.in_degree.get_mut() = 2;
        }
        let topo = Topology::new(g, FailurePolicy::ContinueAll);
        assert!(topo.fatal().is_none(), "fan-in graph must be valid");
        let (promise, future) = promise_pair();
        let harness = Arc::new(RearmHarness {
            topo: Arc::clone(&topo),
            ready: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            counters,
            skips: AtomicUsize::new(0),
            future,
        });
        let claimed = topo.enqueue(PendingRun {
            cond: RunCondition::Count(runs),
            promise,
        });
        assert!(claimed, "fresh topology must be claimable");
        harness.drive(false);
        harness
    }

    /// Steps the production batch state machine as the current driver and
    /// publishes the next iteration's sources into the ready queue —
    /// the harness twin of the executor's `advance_topology`.
    fn drive(&self, iteration_finished: bool) {
        // SAFETY: the caller holds the driver role — it claimed the idle
        // topology at submission, or performed the final `alive`
        // decrement of an iteration (see `execute`).
        match unsafe { self.topo.advance(iteration_finished) } {
            Advance::RunIteration => {
                // SAFETY: driver role; quiescent between iterations.
                unsafe {
                    self.topo.begin_iteration(|sources| {
                        let mut q = self.ready.lock();
                        q.extend(sources.iter().copied());
                        self.cv.notify_all();
                    });
                }
            }
            Advance::Idle => {}
        }
    }

    /// Blocking pop of the next ready task — the stand-in for a worker's
    /// pop/steal round. Blocks forever (a modeled deadlock) if re-arm
    /// ordering loses the token this worker is owed.
    pub fn pop(&self) -> usize {
        let mut q = self.ready.lock();
        loop {
            if let Some(t) = q.pop_front() {
                return t;
            }
            self.cv.wait(&mut q);
        }
    }

    /// Runs a popped task and performs the executor's completion
    /// bookkeeping (the `complete()` mirror): count down each successor's
    /// join counter (AcqRel; zero-crossing publishes it) and the
    /// topology's `alive` count, whose final decrement takes the driver
    /// role and re-arms or finishes the batch.
    pub fn execute(&self, token: usize) {
        let node = token as RawNode;
        // SAFETY: the scheduling protocol hands each published token to
        // exactly one worker; the topology (and the nodes) outlive the
        // harness via the `topo` Arc.
        unsafe {
            // The executor's cancellation skip path: an Acquire load of the
            // cancel flag elides the closure but still performs the full
            // completion bookkeeping below, so token accounting (and hence
            // batch finalization) is unchanged.
            if self.topo.is_cancelled() {
                self.skips.fetch_add(1, Ordering::Relaxed);
            } else {
                match (*node).structure.work.get_mut() {
                    Work::Static(f) => f(),
                    _ => unreachable!("harness graphs hold static work only"),
                }
            }
            let succs = (*node).structure.successors.get();
            for &s in succs.iter() {
                // ORDERING: AcqRel, mirroring the executor's dependency
                // edge — predecessors Release, the zero-crossing Acquires.
                if (*s).state.join_counter.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let mut q = self.ready.lock();
                    q.push_back(s as usize);
                    self.cv.notify_all();
                }
            }
            // ORDERING: AcqRel — the finalizing decrement Acquires every
            // node's writes before the driver re-arms the graph.
            if self.topo.alive.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Final decrement of the iteration: we are the driver.
                self.drive(true);
            }
        }
    }

    /// Per-node execution counts, index-aligned with emplacement order
    /// (`[A, B, C]` for [`RearmHarness::fan_in`]).
    pub fn executions(&self) -> Vec<usize> {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Requests cooperative cancellation through the production
    /// [`Topology::cancel`] path (error recorded, then flag published).
    /// Returns `false` if the topology had already finalized.
    pub fn cancel(&self) -> bool {
        self.topo.cancel()
    }

    /// Tokens that were popped but skipped due to cancellation.
    pub fn skips(&self) -> usize {
        self.skips.load(Ordering::Relaxed)
    }

    /// The batch result, if the batch has resolved.
    pub fn result(&self) -> Option<RunResult> {
        self.future.try_get()
    }
}
