//! The idler list: precise sleeping and waking of worker threads
//! (Algorithm 1, lines 5–13 and 26–28 of the paper).
//!
//! Instead of a thundering-herd condition variable, the executor "maintains
//! a list of idlers for those worker threads preempted. This allows us to
//! precisely wake up a spare worker to run tasks or balance the load
//! through stealing."
//!
//! The correctness of going to sleep hinges on the classic two-party
//! (Dekker-style) protocol, annotated per *Rust Atomics and Locks*:
//!
//! * **Submitter**: push task (the queue's release write) → `SeqCst` fence
//!   → load `num_idlers`. If it reads 0, no one is asleep *yet*.
//! * **Idler**: increment `num_idlers` (`SeqCst`) → re-scan every queue.
//!   If all queues look empty, park.
//!
//! The `SeqCst` total order guarantees that either the submitter observes
//! the idler (and wakes it), or the idler's re-scan observes the pushed
//! task (and refuses to sleep). Both parties cannot miss each other.
//!
//! All condition variables share one mutex (one cv per worker, so a wake
//! targets exactly one thread).

use crate::sync::{AtomicBool, AtomicUsize, Condvar, Mutex};
use std::sync::atomic::Ordering;

/// ORDERING: SeqCst on the Dekker pair — the idler's `num_idlers`
/// increment and the submitter's fast-path load — puts both in the single
/// total order with the submitter's fence, so either the submitter sees
/// the idler or the idler's re-scan sees the task. The `rustflow_weaken`
/// cfg deliberately breaks it so the model checker can demonstrate the
/// lost wakeup it permits (see crates/check).
const DEKKER: Ordering = if cfg!(rustflow_weaken = "notifier_dekker") {
    Ordering::Relaxed
} else {
    Ordering::SeqCst
};

struct Slot {
    cv: Condvar,
    /// `true` while the worker is parked and not yet selected by a waker.
    napping: AtomicBool,
}

/// The executor's idler list (public only for the model-checker tests via
/// `check_internals`; not part of the supported API).
pub struct Notifier {
    /// Stack of parked worker ids (LIFO: recently parked wake first, their
    /// caches are warm).
    idlers: Mutex<Vec<usize>>,
    /// Fast-path count of parked workers, maintained under the Dekker
    /// protocol described at module level.
    num_idlers: AtomicUsize,
    slots: Box<[Slot]>,
}

impl Notifier {
    /// An idler list for `workers` workers, all awake.
    pub fn new(workers: usize) -> Notifier {
        Notifier {
            idlers: Mutex::new(Vec::with_capacity(workers)),
            num_idlers: AtomicUsize::new(0),
            slots: (0..workers)
                .map(|_| Slot {
                    cv: Condvar::new(),
                    napping: AtomicBool::new(false),
                })
                .collect(),
        }
    }

    /// Parks worker `w` until a waker selects it.
    ///
    /// `all_empty` is evaluated *after* the idler is counted; if it returns
    /// `false` (work appeared concurrently) the registration is rolled back
    /// and the function returns `false` without sleeping. `stop` aborts the
    /// wait.
    pub fn wait(&self, w: usize, all_empty: impl Fn() -> bool, stop: &AtomicBool) -> bool {
        let mut guard = self.idlers.lock();
        // Dekker step 1: become visible as an idler...
        self.num_idlers.fetch_add(1, DEKKER);
        // ...then re-check for work and for shutdown.
        if stop.load(Ordering::Relaxed) || !all_empty() {
            // ORDERING: SeqCst keeps the rollback in the same total order
            // as the registration above, so a submitter never observes a
            // phantom idler left over from an aborted park.
            self.num_idlers.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        guard.push(w);
        self.slots[w].napping.store(true, Ordering::Relaxed);
        while self.slots[w].napping.load(Ordering::Relaxed) && !stop.load(Ordering::Relaxed) {
            self.slots[w].cv.wait(&mut guard);
        }
        // On the stop path the waker may not have removed us; `wake_all`
        // clears the whole list, but be robust to racy exits.
        if self.slots[w].napping.swap(false, Ordering::Relaxed) {
            if let Some(pos) = guard.iter().position(|&x| x == w) {
                guard.swap_remove(pos);
                // ORDERING: SeqCst — the count must leave the Dekker
                // total order through the same door it entered (see
                // [`DEKKER`]), or a submitter could see a stale idler.
                self.num_idlers.fetch_sub(1, Ordering::SeqCst);
            }
        }
        true
    }

    /// Wakes one parked worker, if any. Returns the worker id it woke.
    pub fn wake_one(&self) -> Option<usize> {
        // Fast path: no idlers — the common case under load.
        if self.num_idlers.load(DEKKER) == 0 {
            return None;
        }
        let mut guard = self.idlers.lock();
        let w = guard.pop()?;
        // ORDERING: SeqCst decrement stays in the Dekker total order so
        // concurrent submitters don't double-target the same idler.
        self.num_idlers.fetch_sub(1, Ordering::SeqCst);
        self.slots[w].napping.store(false, Ordering::Relaxed);
        self.slots[w].cv.notify_one();
        Some(w)
    }

    /// Wakes up to `n` parked workers. (The executor now loops
    /// `wake_one` itself so it can observe each woken id, but this stays
    /// as the batch API and is exercised by tests.)
    #[allow(dead_code)]
    pub fn wake_n(&self, n: usize) -> usize {
        let mut woken = 0;
        while woken < n && self.wake_one().is_some() {
            woken += 1;
        }
        woken
    }

    /// Wakes every parked worker (used at shutdown).
    pub fn wake_all(&self) {
        let mut guard = self.idlers.lock();
        for &w in guard.iter() {
            self.slots[w].napping.store(false, Ordering::Relaxed);
            self.slots[w].cv.notify_one();
        }
        // ORDERING: SeqCst batch decrement, same Dekker total order as
        // the per-worker registrations it cancels.
        self.num_idlers.fetch_sub(guard.len(), Ordering::SeqCst);
        guard.clear();
    }

    /// Number of currently parked workers (advisory).
    pub fn num_idlers(&self) -> usize {
        self.num_idlers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn refuses_to_sleep_when_work_appears() {
        let n = Notifier::new(2);
        let stop = AtomicBool::new(false);
        assert!(!n.wait(0, || false, &stop));
        assert_eq!(n.num_idlers(), 0);
    }

    #[test]
    fn refuses_to_sleep_on_stop() {
        let n = Notifier::new(1);
        let stop = AtomicBool::new(true);
        assert!(!n.wait(0, || true, &stop));
        assert_eq!(n.num_idlers(), 0);
    }

    #[test]
    fn wake_one_wakes_exactly_one() {
        let n = Arc::new(Notifier::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let sleepers: Vec<_> = (0..3)
            .map(|w| {
                let n = Arc::clone(&n);
                let stop = Arc::clone(&stop);
                thread::spawn(move || n.wait(w, || true, &stop))
            })
            .collect();
        // Wait until all three are parked.
        while n.num_idlers() < 3 {
            thread::yield_now();
        }
        assert!(n.wake_one().is_some());
        thread::sleep(Duration::from_millis(30));
        assert_eq!(n.num_idlers(), 2);
        // Release the rest.
        stop.store(true, Ordering::SeqCst);
        n.wake_all();
        for s in sleepers {
            assert!(s.join().unwrap());
        }
        assert_eq!(n.num_idlers(), 0);
    }

    #[test]
    fn wake_n_counts() {
        let n = Arc::new(Notifier::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let sleepers: Vec<_> = (0..4)
            .map(|w| {
                let n = Arc::clone(&n);
                let stop = Arc::clone(&stop);
                thread::spawn(move || n.wait(w, || true, &stop))
            })
            .collect();
        while n.num_idlers() < 4 {
            thread::yield_now();
        }
        assert_eq!(n.wake_n(2), 2);
        while n.num_idlers() > 2 {
            thread::yield_now();
        }
        stop.store(true, Ordering::SeqCst);
        n.wake_all();
        for s in sleepers {
            s.join().unwrap();
        }
    }

    #[test]
    fn wake_one_on_empty_list_is_none() {
        let n = Notifier::new(2);
        assert_eq!(n.wake_one(), None);
    }
}
