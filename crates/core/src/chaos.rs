//! Deterministic chaos harness: seeded fault injection for exercising
//! the fault-tolerance layer (cancellation, failure policies, retry).
//!
//! A [`ChaosSpec`] is a pure function from `(seed, node, iteration)` to a
//! [`Fault`]: the same spec always injects the same panics and delays at
//! the same points, regardless of thread count or scheduling. That makes
//! chaos runs *replayable* — a failing seed from CI reproduces locally —
//! and lets tests assert exact outcomes ("seed 7 panics node 3 on
//! iteration 2, so with `retry(1)` the run still succeeds").
//!
//! The decision function is a [splitmix64] mix of the three inputs; the
//! permille knobs turn the mixed hash into independent panic/delay
//! verdicts. No global state, no OS randomness, no clock reads.
//!
//! ```
//! use rustflow::chaos::{ChaosSpec, Fault};
//! let spec = ChaosSpec::new(7).panic_permille(500);
//! // Pure and replayable: same inputs, same fault.
//! assert_eq!(spec.fault(3, 0), spec.fault(3, 0));
//! // Different nodes draw independent verdicts.
//! let faults: Vec<Fault> = (0..8).map(|n| spec.fault(n, 0)).collect();
//! assert!(faults.iter().any(|f| *f == Fault::Panic));
//! assert!(faults.iter().any(|f| *f == Fault::None));
//! ```
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::time::Duration;

/// The fault a [`ChaosSpec`] injects at one `(node, iteration)` point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Execute normally.
    None,
    /// Sleep this long before executing (scheduling perturbation).
    Delay(Duration),
    /// Panic instead of executing.
    Panic,
}

/// A deterministic fault-injection plan, parameterized by a seed and
/// per-fault-class rates in permille (0..=1000).
///
/// Panic and delay verdicts are drawn from independent streams, so
/// raising the delay rate never moves which nodes panic under a given
/// seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed distinguishing this chaos run from others.
    pub seed: u64,
    /// Probability (in permille) that a point panics.
    pub panic_permille: u16,
    /// Probability (in permille) that a point is delayed.
    pub delay_permille: u16,
    /// Upper bound on an injected delay, in microseconds.
    pub max_delay_us: u64,
    /// Tenant scope: when non-zero, [`ChaosSpec::inject`] only fires for
    /// tasks executing under this tenant id ([`ChaosSpec::for_tenant`]);
    /// `0` injects everywhere. [`ChaosSpec::fault`] stays pure and
    /// unscoped — the scope gates injection, not the plan.
    pub tenant: u64,
}

/// One round of the splitmix64 output function over `x`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes the three decision inputs into one well-distributed hash.
fn mix(seed: u64, node: u64, iteration: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed) ^ node) ^ iteration)
}

impl ChaosSpec {
    /// A spec with the given seed and no faults enabled; dial in rates
    /// with [`ChaosSpec::panic_permille`] / [`ChaosSpec::delay_permille`].
    pub fn new(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            panic_permille: 0,
            delay_permille: 0,
            max_delay_us: 100,
            tenant: 0,
        }
    }

    /// Scopes injection to tasks running under `tenant`: other tenants'
    /// runs (and untenanted runs) pass through unharmed. Lets a chaos
    /// soak poison one tenant while the rest stay healthy — the setup
    /// the per-tenant circuit breaker's isolation guarantee is judged
    /// against. Returns `self`.
    pub fn for_tenant(mut self, tenant: &crate::Tenant) -> ChaosSpec {
        self.tenant = tenant.id();
        self
    }

    /// Sets the panic rate in permille (clamped to 1000); returns `self`.
    pub fn panic_permille(mut self, rate: u16) -> ChaosSpec {
        self.panic_permille = rate.min(1000);
        self
    }

    /// Sets the delay rate in permille (clamped to 1000) and the delay
    /// cap in microseconds; returns `self`.
    pub fn delay_permille(mut self, rate: u16, max_delay_us: u64) -> ChaosSpec {
        self.delay_permille = rate.min(1000);
        self.max_delay_us = max_delay_us;
        self
    }

    /// The fault injected at `(node, iteration)` — a pure function of the
    /// spec and its arguments. Panic takes precedence over delay when
    /// both streams fire.
    pub fn fault(&self, node: u64, iteration: u64) -> Fault {
        let h = mix(self.seed, node, iteration);
        // Independent 10-bit-ish draws from disjoint parts of the hash.
        if (h % 1000) < u64::from(self.panic_permille) {
            return Fault::Panic;
        }
        let d = h >> 20;
        if (d % 1000) < u64::from(self.delay_permille) {
            let us = if self.max_delay_us == 0 {
                0
            } else {
                (d >> 10) % self.max_delay_us
            };
            return Fault::Delay(Duration::from_micros(us));
        }
        Fault::None
    }

    /// Injects this spec's fault for `node` at the *current* task
    /// iteration (via [`crate::this_task::iteration`]; 0 outside a task).
    /// Call at the top of a task closure; panics with a replayable
    /// message when the panic stream fires. A tenant-scoped spec
    /// ([`ChaosSpec::for_tenant`]) is a no-op in any other tenant's task.
    pub fn inject(&self, node: u64) {
        if self.tenant != 0 && crate::this_task::tenant_id() != self.tenant {
            return;
        }
        let iteration = crate::this_task::iteration().unwrap_or(0);
        match self.fault(node, iteration) {
            Fault::None => {}
            Fault::Delay(d) => std::thread::sleep(d),
            Fault::Panic => panic!(
                "chaos: injected panic (seed={}, node={node}, iteration={iteration})",
                self.seed
            ),
        }
    }

    /// Wraps a task closure so every invocation first passes through
    /// [`ChaosSpec::inject`] for `node`. The returned closure is what you
    /// hand to [`Taskflow::emplace`](crate::Taskflow::emplace).
    pub fn wrap<F>(&self, node: u64, mut f: F) -> impl FnMut() + Send + 'static
    where
        F: FnMut() + Send + 'static,
    {
        let spec = *self;
        move || {
            spec.inject(node);
            f();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_is_pure_and_seed_sensitive() {
        let a = ChaosSpec::new(42)
            .panic_permille(300)
            .delay_permille(300, 50);
        for node in 0..64 {
            for it in 0..4 {
                assert_eq!(a.fault(node, it), a.fault(node, it));
            }
        }
        let b = ChaosSpec::new(43)
            .panic_permille(300)
            .delay_permille(300, 50);
        let differs = (0..64u64).any(|n| a.fault(n, 0) != b.fault(n, 0));
        assert!(differs, "different seeds must induce different plans");
    }

    #[test]
    fn rates_bound_fault_frequency() {
        let none = ChaosSpec::new(1);
        assert!((0..256u64).all(|n| none.fault(n, 0) == Fault::None));
        let always = ChaosSpec::new(1).panic_permille(1000);
        assert!((0..256u64).all(|n| always.fault(n, 0) == Fault::Panic));
        let half = ChaosSpec::new(9).panic_permille(500);
        let panics = (0..1000u64)
            .filter(|&n| half.fault(n, 0) == Fault::Panic)
            .count();
        assert!((300..700).contains(&panics), "got {panics} panics");
    }

    #[test]
    fn panic_stream_independent_of_delay_rate() {
        let bare = ChaosSpec::new(5).panic_permille(200);
        let noisy = ChaosSpec::new(5)
            .panic_permille(200)
            .delay_permille(900, 10);
        for n in 0..512u64 {
            assert_eq!(
                bare.fault(n, 0) == Fault::Panic,
                noisy.fault(n, 0) == Fault::Panic,
                "delay rate moved the panic verdict at node {n}"
            );
        }
    }

    #[test]
    fn delays_respect_the_cap() {
        let spec = ChaosSpec::new(3).delay_permille(1000, 25);
        for n in 0..256u64 {
            match spec.fault(n, 1) {
                Fault::Delay(d) => assert!(d < Duration::from_micros(25)),
                Fault::Panic => unreachable!("panic rate is zero"),
                Fault::None => {}
            }
        }
    }

    #[test]
    fn iterations_draw_independently() {
        let spec = ChaosSpec::new(11).panic_permille(500);
        let differs = (0..64u64).any(|n| spec.fault(n, 0) != spec.fault(n, 1));
        assert!(differs, "iteration must participate in the mix");
    }
}
