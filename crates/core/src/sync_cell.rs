//! A tiny `UnsafeCell` wrapper used for node fields that are mutated in
//! well-defined single-owner phases.
//!
//! Task-graph nodes go through three phases:
//!
//! 1. **Build** — a single thread constructs the graph through a
//!    [`Taskflow`](crate::Taskflow) (which is `!Sync`), mutating node fields
//!    freely.
//! 2. **Run** — the executor guarantees each node is *executed* by exactly
//!    one worker at a time; that worker may mutate the node's work closure
//!    and subgraph. All cross-thread hand-offs happen through atomics with
//!    release/acquire ordering (join counters, queues), which order these
//!    plain accesses.
//! 3. **Inspect** — after the topology completes (observed through an
//!    acquire on the promise), fields are read-only.
//!
//! `SyncCell` encodes this discipline: it is `Sync` as long as `T: Send`,
//! and every access is an `unsafe` call that names the phase invariant the
//! caller relies on. Keeping the `unsafe` here, in one audited place,
//! follows the practice recommended by *Rust Atomics and Locks*: build a
//! safe-ish primitive once, document its contract, and keep the rest of the
//! code free of ad-hoc `UnsafeCell` juggling.

use crate::sync::CheckedCell;

/// An `UnsafeCell` that may be shared across threads under the phase
/// discipline documented at module level.
///
/// Built over the sync facade's [`CheckedCell`], so under the
/// `rustflow_check` model checker every access is race-checked against
/// the happens-before relation the executor's atomics actually establish;
/// in normal builds it compiles to a bare `UnsafeCell`.
#[derive(Debug)]
#[repr(transparent)]
pub(crate) struct SyncCell<T>(CheckedCell<T>);

// SAFETY: access is serialized by the executor's scheduling protocol (a node
// is owned by exactly one worker while it runs) or happens in the
// single-threaded build/inspect phases; hand-offs between phases synchronize
// through release/acquire atomics.
unsafe impl<T: Send> Sync for SyncCell<T> {}
unsafe impl<T: Send> Send for SyncCell<T> {}

impl<T> SyncCell<T> {
    pub(crate) const fn new(value: T) -> Self {
        SyncCell(CheckedCell::new(value))
    }

    /// Returns a shared reference to the contents.
    ///
    /// # Safety
    /// The caller must be in a phase where no other thread can be mutating
    /// the value (build thread, the owning worker during run, or any thread
    /// after completion).
    #[inline]
    #[track_caller]
    pub(crate) unsafe fn get(&self) -> &T {
        // SAFETY: forwarding the caller's phase guarantee; the pointer is
        // valid for `self`'s lifetime, so laundering the borrow through it
        // is sound under that same guarantee.
        unsafe { self.0.with(|p| &*p) }
    }

    /// Returns an exclusive reference to the contents.
    ///
    /// # Safety
    /// The caller must be the unique accessor in the current phase: the
    /// build thread before dispatch, or the worker currently executing the
    /// node.
    #[inline]
    #[track_caller]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self) -> &mut T {
        // SAFETY: forwarding the caller's uniqueness guarantee.
        unsafe { self.0.with_mut(|p| &mut *p) }
    }

    /// Replaces the contents, returning the previous value.
    ///
    /// # Safety
    /// Same contract as [`SyncCell::get_mut`].
    #[inline]
    #[track_caller]
    pub(crate) unsafe fn replace(&self, value: T) -> T {
        // SAFETY: forwarding the caller's uniqueness guarantee.
        unsafe { self.0.with_mut(|p| std::mem::replace(&mut *p, value)) }
    }

    /// Consumes the cell and returns the value (safe: requires ownership).
    #[allow(dead_code)]
    pub(crate) fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

impl<T: Default> Default for SyncCell<T> {
    fn default() -> Self {
        SyncCell::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let c = SyncCell::new(41);
        // SAFETY: single-threaded test, we are the unique accessor.
        unsafe {
            *c.get_mut() += 1;
            assert_eq!(*c.get(), 42);
            assert_eq!(c.replace(7), 42);
            assert_eq!(*c.get(), 7);
        }
        assert_eq!(c.into_inner(), 7);
    }

    #[test]
    fn default_is_default() {
        let c: SyncCell<Vec<u32>> = SyncCell::default();
        unsafe {
            assert!(c.get().is_empty());
        }
    }

    #[test]
    fn is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SyncCell<Vec<u8>>>();
    }
}
