//! Observe **and control** a submitted run: the [`RunHandle`] returned by
//! `Taskflow::{run, run_n, run_until, dispatch}`.
//!
//! A handle is a [`SharedFuture`] over the run's outcome plus a weak link
//! back to the topology executing it, which is what makes cooperative
//! cancellation ([`RunHandle::cancel`]) and deadlines
//! ([`RunHandle::wait_timeout`]) possible without giving user code a
//! strong reference that could keep node storage alive past `gc()`.

use crate::error::RunResult;
use crate::future::SharedFuture;
use crate::topology::Topology;
use std::sync::Weak;
use std::time::Duration;

/// A cloneable handle observing (and optionally cancelling) one submitted
/// batch — a `dispatch`, `run`, `run_n`, or `run_until`.
///
/// All observation methods ([`get`](RunHandle::get),
/// [`wait`](RunHandle::wait), [`try_get`](RunHandle::try_get),
/// [`is_ready`](RunHandle::is_ready)) delegate to the underlying
/// [`SharedFuture`]; the control methods are new:
///
/// ```
/// let tf = rustflow::Taskflow::new();
/// tf.emplace(|| {
///     while !rustflow::this_task::is_cancelled() {
///         std::thread::yield_now(); // long-running, cancellation-aware
///     }
/// });
/// let run = tf.run();
/// run.cancel(); // queued-but-unstarted tasks are skipped, not executed
/// assert_eq!(run.get(), Err(rustflow::RunError::Cancelled));
/// ```
#[derive(Clone)]
pub struct RunHandle {
    future: SharedFuture<RunResult>,
    /// Weak: a handle must not extend the topology's lifetime past the
    /// owning taskflow (`gc()` / drop reclaim node storage). A dead weak
    /// ref simply makes `cancel` a no-op.
    topology: Option<Weak<Topology>>,
}

impl RunHandle {
    /// Wraps the completion future of a batch running on `topology`.
    pub(crate) fn new(future: SharedFuture<RunResult>, topology: Weak<Topology>) -> RunHandle {
        RunHandle {
            future,
            topology: Some(topology),
        }
    }

    /// A handle that is already resolved (empty dispatch, rejected graph).
    pub(crate) fn ready(result: RunResult) -> RunHandle {
        RunHandle {
            future: SharedFuture::ready(result),
            topology: None,
        }
    }

    /// The underlying completion future, for callers that only observe.
    pub fn future(&self) -> &SharedFuture<RunResult> {
        &self.future
    }

    /// Blocks until the run finishes and returns its outcome.
    pub fn get(&self) -> RunResult {
        self.future.get()
    }

    /// The outcome if the run already finished, `None` otherwise.
    pub fn try_get(&self) -> Option<RunResult> {
        self.future.try_get()
    }

    /// Blocks until the run finishes, ignoring the outcome.
    pub fn wait(&self) {
        self.future.wait();
    }

    /// `true` once the run has finished.
    pub fn is_ready(&self) -> bool {
        self.future.is_ready()
    }

    /// Requests cooperative cancellation of the topology this run executes
    /// on: tasks that have not started are *skipped* (their completion
    /// bookkeeping still runs, so the graph drains promptly), in-flight
    /// tasks keep running but can poll
    /// [`this_task::is_cancelled`](crate::this_task::is_cancelled), and
    /// every unresolved batch on the topology — this one and any queued
    /// behind it — resolves with [`RunError::Cancelled`](crate::RunError)
    /// (unless a task panic was recorded first, which wins).
    ///
    /// Returns `true` if a run was actually cancelled; `false` when the
    /// topology already finished (cancel-after-finalize is a no-op) or the
    /// owning taskflow was dropped.
    pub fn cancel(&self) -> bool {
        match self.topology.as_ref().and_then(Weak::upgrade) {
            Some(topo) => topo.cancel(),
            None => false,
        }
    }

    /// Races completion against a deadline: waits up to `timeout` for the
    /// natural outcome, and on expiry degrades to [`RunHandle::cancel`]
    /// and waits for the (now prompt) cancelled outcome. Natural
    /// completion that beats the deadline wins even if the two race — the
    /// cancel becomes a no-op.
    pub fn wait_timeout(&self, timeout: Duration) -> RunResult {
        if let Some(result) = self.future.get_timeout(timeout) {
            return result;
        }
        self.cancel();
        // Either the cancel drains the run (bounded by in-flight task
        // length) or the run resolved in the race window; both unblock.
        self.future.get()
    }
}

impl std::fmt::Debug for RunHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHandle")
            .field("ready", &self.is_ready())
            .finish()
    }
}
