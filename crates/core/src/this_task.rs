//! Execution context visible from *inside* a running task.
//!
//! A worker publishes the topology it is executing for into a thread
//! local around every task invocation, so task closures — which are plain
//! `FnMut()` and receive no arguments — can still ask about their run:
//!
//! ```
//! let tf = rustflow::Taskflow::new();
//! tf.emplace(|| {
//!     for chunk in 0..1000 {
//!         if rustflow::this_task::is_cancelled() {
//!             return; // drop remaining chunks, finish promptly
//!         }
//!         let _ = chunk; // ... real work ...
//!     }
//! });
//! tf.wait_for_all();
//! ```
//!
//! Outside a task (or in a thread the executor does not own) the queries
//! return their neutral values; they never panic.

use crate::topology::Topology;
use std::cell::Cell;

thread_local! {
    /// The topology whose task this thread is currently executing; null
    /// outside task invocations.
    static CURRENT_TOPOLOGY: Cell<*const Topology> = const { Cell::new(std::ptr::null()) };
}

/// RAII scope that publishes the executing topology for the duration of
/// one task invocation and restores the previous value after — workers
/// run tasks non-reentrantly, but restoring (rather than nulling) keeps
/// the guard correct even if that ever changes.
pub(crate) struct ContextGuard {
    prev: *const Topology,
}

impl ContextGuard {
    /// Enters a task scope executing for `topology`.
    pub(crate) fn enter(topology: *const Topology) -> ContextGuard {
        ContextGuard {
            prev: CURRENT_TOPOLOGY.with(|c| c.replace(topology)),
        }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT_TOPOLOGY.with(|c| c.set(self.prev));
    }
}

/// Runs `f` with the topology the calling thread is executing for, or
/// returns `None` when called outside a task.
fn with_current<R>(f: impl FnOnce(&Topology) -> R) -> Option<R> {
    CURRENT_TOPOLOGY.with(|c| {
        let p = c.get();
        // SAFETY: the pointer was published by the worker executing this
        // very task; the executor holds a keep-alive Arc on the topology
        // for the whole run, so it outlives the invocation.
        (!p.is_null()).then(|| f(unsafe { &*p }))
    })
}

/// `true` when the run this task belongs to has been cancelled — by
/// [`RunHandle::cancel`](crate::RunHandle::cancel), a deadline, or a
/// `FailFast` reaction to another task's panic. Long-running tasks should
/// poll this and return early; tasks that never check simply run to
/// completion (cancellation is cooperative).
///
/// Returns `false` outside a task.
pub fn is_cancelled() -> bool {
    with_current(Topology::is_cancelled).unwrap_or(false)
}

/// The 0-based iteration index of the `run_n`/`run_until` batch this task
/// is executing in (always `Some(0)` during a one-shot `dispatch`), or
/// `None` outside a task.
pub fn iteration() -> Option<u64> {
    with_current(Topology::iterations)
}

/// The tenant id of the stint this task is executing under: `0` for
/// untenanted runs and outside a task. Used by
/// [`ChaosSpec::for_tenant`](crate::chaos::ChaosSpec::for_tenant) scoping.
pub(crate) fn tenant_id() -> u64 {
    with_current(Topology::tenant_id).unwrap_or(0)
}
