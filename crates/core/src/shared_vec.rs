//! `SharedVec`: shared, fixed-size storage that the built-in algorithms
//! (§III-F) mutate in parallel **without data races**.
//!
//! Task closures must be `'static`, so they cannot borrow a caller's
//! `&mut [T]` the way rayon's scoped APIs do. `SharedVec` solves this the
//! way Cpp-Taskflow programs share containers across tasks — by reference
//! counting — while preserving Rust's data-race freedom: element mutation
//! is only reachable through this crate's algorithm implementations, which
//! partition indices into disjoint chunks (each index is written by exactly
//! one task). Reclaiming the data (`into_vec`) requires unique ownership,
//! which cannot exist while any task closure still holds a clone.

use crate::sync_cell::SyncCell;
use std::sync::Arc;

struct Inner<T> {
    cells: Box<[SyncCell<T>]>,
}

/// Reference-counted, fixed-length storage for parallel algorithms.
pub struct SharedVec<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for SharedVec<T> {
    fn clone(&self) -> Self {
        SharedVec {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static> SharedVec<T> {
    /// Wraps a vector for shared use by task graphs.
    pub fn new(values: Vec<T>) -> Self {
        let cells: Box<[SyncCell<T>]> = values.into_iter().map(SyncCell::new).collect();
        SharedVec {
            inner: Arc::new(Inner { cells }),
        }
    }

    /// Builds a `SharedVec` of `len` elements from an index function.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        SharedVec::new((0..len).map(&mut f).collect())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.cells.len()
    }

    /// `true` when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.inner.cells.is_empty()
    }

    /// Shared read access to element `i`.
    ///
    /// # Safety
    /// No task may be concurrently writing index `i`. The crate's
    /// algorithms uphold this by never reading a vec they also write.
    pub(crate) unsafe fn get_raw(&self, i: usize) -> &T {
        // SAFETY: forwarding the caller's no-concurrent-writer guarantee.
        unsafe { self.inner.cells[i].get() }
    }

    /// Exclusive access to element `i`.
    ///
    /// # Safety
    /// The caller must be the only accessor of index `i` for the duration
    /// of the borrow. The crate's algorithms uphold this by assigning each
    /// index to exactly one chunk task.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut_raw(&self, i: usize) -> &mut T {
        // SAFETY: forwarding the caller's unique-accessor guarantee.
        unsafe { self.inner.cells[i].get_mut() }
    }

    /// Exclusive access to the contiguous subrange `[lo, hi)`.
    ///
    /// Layout: `SyncCell<T>` is `repr(transparent)` over `UnsafeCell<T>`,
    /// which has the same memory layout as `T`, so a `[SyncCell<T>]` can
    /// be viewed as a `[T]`.
    ///
    /// # Safety
    /// The caller must be the unique accessor of every index in
    /// `[lo, hi)` for the duration of the borrow (the sort algorithm
    /// assigns disjoint ranges to tasks and orders producers before
    /// consumers).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice_mut_raw(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.len());
        let base = self.inner.cells.as_ptr() as *mut T;
        // SAFETY: `[lo, hi)` is in bounds (asserted above), the layout
        // equivalence is documented on the method, and exclusivity over
        // the range is the caller's contract.
        unsafe { std::slice::from_raw_parts_mut(base.add(lo), hi - lo) }
    }

    /// Shared access to the contiguous subrange `[lo, hi)`.
    ///
    /// # Safety
    /// No concurrent writer may touch `[lo, hi)` during the borrow.
    pub(crate) unsafe fn slice_raw(&self, lo: usize, hi: usize) -> &[T] {
        debug_assert!(lo <= hi && hi <= self.len());
        let base = self.inner.cells.as_ptr() as *const T;
        // SAFETY: `[lo, hi)` is in bounds (asserted above); absence of
        // concurrent writers is the caller's contract.
        unsafe { std::slice::from_raw_parts(base.add(lo), hi - lo) }
    }

    /// Recovers the underlying vector. Panics unless this is the only
    /// remaining handle (call [`crate::Taskflow::gc`] first if a retained
    /// topology still owns task closures holding clones).
    pub fn into_vec(self) -> Vec<T> {
        self.try_into_vec()
            .unwrap_or_else(|_| panic!("SharedVec::into_vec: other handles still alive"))
    }

    /// Recovers the underlying vector, or returns `self` when other
    /// handles are still alive.
    pub fn try_into_vec(self) -> Result<Vec<T>, SharedVec<T>> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner
                .cells
                .into_vec()
                .into_iter()
                .map(SyncCell::into_inner)
                .collect()),
            Err(inner) => Err(SharedVec { inner }),
        }
    }

    /// Clones out element `i`.
    ///
    /// Intended for inspection after the writing graphs completed; callers
    /// must not overlap it with a graph writing index `i` (the algorithms
    /// in this crate never hand out overlapping reader/writer graphs).
    pub fn get_cloned(&self, i: usize) -> T
    where
        T: Clone,
    {
        // SAFETY: see doc contract; reads outside any writing window.
        unsafe { self.get_raw(i).clone() }
    }

    /// Clones the whole contents out. Same contract as [`Self::get_cloned`].
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        (0..self.len()).map(|i| self.get_cloned(i)).collect()
    }
}

impl<T: Send + std::fmt::Debug + 'static> std::fmt::Debug for SharedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedVec(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let sv = SharedVec::new(vec![1, 2, 3]);
        assert_eq!(sv.len(), 3);
        assert!(!sv.is_empty());
        assert_eq!(sv.get_cloned(1), 2);
        assert_eq!(sv.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn from_fn_builds_by_index() {
        let sv = SharedVec::from_fn(4, |i| i * 10);
        assert_eq!(sv.snapshot(), vec![0, 10, 20, 30]);
    }

    #[test]
    fn try_into_vec_fails_with_live_clone() {
        let sv = SharedVec::new(vec![1]);
        let clone = sv.clone();
        let sv = sv.try_into_vec().unwrap_err();
        drop(clone);
        assert_eq!(sv.try_into_vec().unwrap(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "other handles still alive")]
    fn into_vec_panics_with_live_clone() {
        let sv = SharedVec::new(vec![1]);
        let _clone = sv.clone();
        let _ = sv.into_vec();
    }
}
