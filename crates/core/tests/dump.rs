//! Tests of the DOT dump (§III-G): structure, names, escaping, and the
//! present-graph vs dispatched-topology split.

use rustflow::{Executor, Taskflow};

#[test]
fn dump_contains_all_named_nodes_and_edges() {
    let tf = Taskflow::new();
    tf.set_name("fig2");
    let a0 = tf.emplace(|| {}).name("a0");
    let a1 = tf.emplace(|| {}).name("a1");
    let b0 = tf.emplace(|| {}).name("b0");
    a0.precede(a1);
    b0.precede(a1);
    let dot = tf.dump();
    assert!(dot.starts_with("digraph fig2 {"));
    for name in ["a0", "a1", "b0"] {
        assert!(dot.contains(&format!("label=\"{name}\"")), "{name} missing");
    }
    assert_eq!(dot.matches(" -> ").count(), 2);
}

#[test]
fn unnamed_nodes_get_pointer_labels() {
    let tf = Taskflow::new();
    tf.emplace(|| {});
    let dot = tf.dump();
    assert!(dot.contains("label=\"0x"), "expected pointer label: {dot}");
}

#[test]
fn names_with_quotes_are_escaped() {
    let tf = Taskflow::new();
    tf.emplace(|| {}).name("weird \"name\"");
    let dot = tf.dump();
    assert!(dot.contains("weird \\\"name\\\""));
}

#[test]
fn dump_reflects_present_graph_only() {
    let ex = Executor::new(1);
    let tf = Taskflow::with_executor(ex);
    tf.emplace(|| {}).name("first_graph_task");
    tf.wait_for_all();
    // After dispatch the present graph is fresh.
    assert!(!tf.dump().contains("first_graph_task"));
    tf.emplace(|| {}).name("second_graph_task");
    assert!(tf.dump().contains("second_graph_task"));
    // The dispatched (completed) topology is visible separately.
    assert!(tf.dump_topologies().contains("first_graph_task"));
}

#[test]
fn running_topologies_are_skipped_by_dump_topologies() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let ex = Executor::new(1);
    let tf = Taskflow::with_executor(ex);
    let release = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&release);
    tf.emplace(move || {
        while !r.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    })
    .name("gated");
    let future = tf.dispatch();
    // While running, the topology must not be dumped (its graph is hot).
    assert!(!tf.dump_topologies().contains("gated"));
    release.store(true, Ordering::Release);
    future.wait();
    assert!(tf.dump_topologies().contains("gated"));
}

#[test]
fn taskflow_debug_format() {
    let tf = Taskflow::new();
    tf.set_name("dbg");
    tf.emplace(|| {});
    let s = format!("{tf:?}");
    assert!(s.contains("dbg"));
    assert!(s.contains("nodes: 1"));
}
