//! Property-based tests of core invariants: arbitrary DAGs always execute
//! in dependency order with every task exactly once; the work-stealing
//! deque never loses or duplicates items (differentially tested against
//! crossbeam-deque); reductions always match their sequential folds.

use proptest::prelude::*;
use rustflow::{Executor, Taskflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Strategy: a random DAG as (node count, forward edges).
fn arb_dag() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..60).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0usize..n, 0usize..n), 0..120).prop_map(move |pairs| {
                pairs
                    .into_iter()
                    .filter(|&(u, v)| u != v)
                    .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
                    .collect::<Vec<_>>()
            });
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_dag_runs_each_task_once_in_order((n, edges) in arb_dag(), workers in 1usize..5) {
        let ex = Executor::new(workers);
        let tf = Taskflow::with_executor(ex);
        let clock = Arc::new(AtomicUsize::new(0));
        let stamps: Vec<Arc<AtomicUsize>> =
            (0..n).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let runs: Vec<Arc<AtomicUsize>> =
            (0..n).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                let clock = Arc::clone(&clock);
                let stamp = Arc::clone(&stamps[i]);
                let run = Arc::clone(&runs[i]);
                tf.emplace(move || {
                    run.fetch_add(1, Ordering::SeqCst);
                    stamp.store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for &(u, v) in &edges {
            tasks[u].precede(tasks[v]);
        }
        tf.wait_for_all();
        for (i, run) in runs.iter().enumerate() {
            prop_assert_eq!(run.load(Ordering::SeqCst), 1, "task {} run count", i);
        }
        let s: Vec<usize> = stamps.iter().map(|s| s.load(Ordering::SeqCst)).collect();
        for &(u, v) in &edges {
            prop_assert!(s[u] < s[v], "edge ({},{}) violated", u, v);
        }
    }

    #[test]
    fn subflows_of_random_size_all_complete(children in proptest::collection::vec(0usize..12, 1..10)) {
        let ex = Executor::new(3);
        let tf = Taskflow::with_executor(ex);
        let total = Arc::new(AtomicUsize::new(0));
        let expected: usize = children.iter().map(|&c| c + 1).sum();
        for (idx, &c) in children.iter().enumerate() {
            let total = Arc::clone(&total);
            let detach = idx % 2 == 0;
            tf.emplace_subflow(move |sf| {
                total.fetch_add(1, Ordering::SeqCst);
                for _ in 0..c {
                    let t = Arc::clone(&total);
                    sf.emplace(move || {
                        t.fetch_add(1, Ordering::SeqCst);
                    });
                }
                if detach {
                    sf.detach();
                }
            });
        }
        tf.wait_for_all();
        prop_assert_eq!(total.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn reduce_matches_sequential_fold(values in proptest::collection::vec(-1000i64..1000, 0..300), chunk in 1usize..40) {
        let ex = Executor::new(3);
        let tf = Taskflow::with_executor(ex);
        let shared = rustflow::SharedVec::new(values.clone());
        let (_s, _t, result) = rustflow::algorithm::transform_reduce(
            &tf, &shared, chunk, 0i64, |&x| x, |a, b| a + b);
        tf.wait_for_all();
        prop_assert_eq!(result.take(), Some(values.iter().sum::<i64>()));
    }

    #[test]
    fn parallel_for_touches_every_index(n in 0usize..500, chunk in 1usize..64) {
        let ex = Executor::new(3);
        let tf = Taskflow::with_executor(ex);
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let h = Arc::clone(&hits);
        rustflow::algorithm::parallel_for(&tf, 0..n, chunk, move |i| {
            h[i].fetch_add(1, Ordering::SeqCst);
        });
        tf.wait_for_all();
        for (i, hit) in hits.iter().enumerate() {
            prop_assert_eq!(hit.load(Ordering::SeqCst), 1, "index {}", i);
        }
    }

    #[test]
    fn for_each_mut_writes_disjointly(n in 1usize..400, chunk in 1usize..50) {
        let ex = Executor::new(3);
        let mut tf = Taskflow::with_executor(ex);
        let data = rustflow::SharedVec::new(vec![0usize; n]);
        rustflow::algorithm::for_each_mut(&tf, &data, chunk, |i, x| *x = i + 1);
        tf.wait_for_all();
        tf.gc();
        drop(tf);
        let out = data.into_vec();
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, i + 1);
        }
    }
}

// Differential test: our Chase–Lev deque vs crossbeam-deque under the
// same randomized operation schedule (owner ops single-threaded here;
// concurrency is covered by the stress test in the wsq module).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wsq_matches_crossbeam_sequentially(ops in proptest::collection::vec(0u8..4, 1..400)) {
        let (owner, stealer) = rustflow::wsq::deque();
        let cb = crossbeam::deque::Worker::new_lifo();
        let cb_stealer = cb.stealer();
        let mut next = 1usize;
        for op in ops {
            match op {
                0 | 1 => {
                    owner.push(next);
                    cb.push(next);
                    next += 1;
                }
                2 => {
                    let ours = owner.pop();
                    let theirs = cb.pop();
                    prop_assert_eq!(ours, theirs);
                }
                _ => {
                    let ours = match stealer.steal() {
                        rustflow::wsq::Steal::Success(v) => Some(v),
                        _ => None,
                    };
                    let theirs = match cb_stealer.steal() {
                        crossbeam::deque::Steal::Success(v) => Some(v),
                        _ => None,
                    };
                    prop_assert_eq!(ours, theirs);
                }
            }
            prop_assert_eq!(owner.len(), cb.len());
        }
    }
}
