//! Iteration semantics of the reusable-topology API: `run`, `run_n`,
//! `run_until`, their interaction with subflows, failures, the legacy
//! one-shot `dispatch` path, and the `gc`/watermark bookkeeping.

use rustflow::{Executor, Taskflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn counting_flow(workers: usize) -> (Taskflow, Arc<AtomicUsize>) {
    let tf = Taskflow::with_executor(Executor::new(workers));
    let counter = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&counter);
    tf.emplace(move || {
        c.fetch_add(1, Ordering::Relaxed);
    });
    (tf, counter)
}

#[test]
fn run_n_executes_the_graph_n_times_without_rebuilding() {
    let tf = Taskflow::with_executor(Executor::new(4));
    let counter = Arc::new(AtomicUsize::new(0));
    // Diamond a → {b, c} → d so every iteration exercises real edges.
    let c0 = Arc::clone(&counter);
    let a = tf.emplace(move || {
        c0.fetch_add(1, Ordering::Relaxed);
    });
    let c1 = Arc::clone(&counter);
    let b = tf.emplace(move || {
        c1.fetch_add(1, Ordering::Relaxed);
    });
    let c2 = Arc::clone(&counter);
    let c = tf.emplace(move || {
        c2.fetch_add(1, Ordering::Relaxed);
    });
    let c3 = Arc::clone(&counter);
    let d = tf.emplace(move || {
        c3.fetch_add(1, Ordering::Relaxed);
    });
    a.precede([b, c]);
    b.precede(d);
    c.precede(d);

    tf.run_n(100).get().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 400);
    assert_eq!(tf.num_iterations(), 100);
    // One frozen topology serves every iteration.
    assert_eq!(tf.num_topologies(), 1);

    // A later batch re-arms the same topology again.
    tf.run().get().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 404);
    assert_eq!(tf.num_iterations(), 101);
    assert_eq!(tf.num_topologies(), 1);
}

#[test]
fn run_n_zero_completes_immediately_without_running() {
    let (tf, counter) = counting_flow(2);
    let f = tf.run_n(0);
    assert!(f.get().is_ok());
    assert_eq!(counter.load(Ordering::Relaxed), 0);
    assert_eq!(tf.num_iterations(), 0);
}

#[test]
fn run_on_empty_taskflow_resolves_immediately() {
    let tf = Taskflow::with_executor(Executor::new(2));
    assert!(tf.run().get().is_ok());
    assert!(tf.run_n(7).get().is_ok());
    assert_eq!(tf.num_topologies(), 0);
}

#[test]
fn queued_batches_run_fifo() {
    let (tf, counter) = counting_flow(2);
    // Submitted while the first batch may still be running: the second
    // must queue behind it, so the first future can never resolve after
    // the second.
    let f1 = tf.run_n(50);
    let f2 = tf.run_n(50);
    f2.get().unwrap();
    assert!(f1.is_ready(), "batches must resolve in submission order");
    f1.get().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 100);
    assert_eq!(tf.num_iterations(), 100);
}

#[test]
fn joined_subflow_respawns_children_every_iteration() {
    let tf = Taskflow::with_executor(Executor::new(4));
    let children = Arc::new(AtomicUsize::new(0));
    let after = Arc::new(AtomicUsize::new(0));
    let ch = Arc::clone(&children);
    let parent = tf.emplace_subflow(move |sf| {
        for _ in 0..3 {
            let ch = Arc::clone(&ch);
            sf.emplace(move || {
                ch.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // A joined subflow must finish its children before successors run.
    let (ch2, af) = (Arc::clone(&children), Arc::clone(&after));
    let next = tf.emplace(move || {
        assert_eq!(ch2.load(Ordering::Relaxed) % 3, 0);
        af.fetch_add(1, Ordering::Relaxed);
    });
    parent.precede(next);

    tf.run_n(20).get().unwrap();
    assert_eq!(children.load(Ordering::Relaxed), 60);
    assert_eq!(after.load(Ordering::Relaxed), 20);
}

#[test]
fn detached_subflow_respawns_children_every_iteration() {
    let tf = Taskflow::with_executor(Executor::new(4));
    let children = Arc::new(AtomicUsize::new(0));
    let ch = Arc::clone(&children);
    tf.emplace_subflow(move |sf| {
        sf.detach();
        for _ in 0..2 {
            let ch = Arc::clone(&ch);
            sf.emplace(move || {
                ch.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // Detached children still count toward the iteration's `alive` total,
    // so each iteration (and therefore the batch future) waits for them.
    tf.run_n(25).get().unwrap();
    assert_eq!(children.load(Ordering::Relaxed), 50);
    assert_eq!(tf.num_iterations(), 25);
}

#[test]
fn run_until_iterates_until_predicate_is_true() {
    let (tf, counter) = counting_flow(2);
    let seen = Arc::clone(&counter);
    tf.run_until(move || seen.load(Ordering::Relaxed) >= 5)
        .get()
        .unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 5);
}

#[test]
fn run_until_with_initially_true_predicate_runs_nothing() {
    let (tf, counter) = counting_flow(2);
    tf.run_until(|| true).get().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 0);
}

#[test]
fn run_until_predicate_panic_resolves_future_with_error_and_stops() {
    let (tf, counter) = counting_flow(2);
    let calls = AtomicUsize::new(0);
    let err = tf
        .run_until(move || {
            if calls.fetch_add(1, Ordering::Relaxed) == 2 {
                panic!("predicate boom");
            }
            false
        })
        .get()
        .expect_err("predicate panic must fail the batch");
    let panic = err.as_panic().expect("panic, not a graph error");
    assert_eq!(panic.task, "run_until predicate");
    assert!(panic.message.contains("predicate boom"));
    // Exactly the iterations before the panicking evaluation ran.
    assert_eq!(counter.load(Ordering::Relaxed), 2);

    // The topology stays reusable after a failed batch.
    tf.run_n(3).get().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 5);
}

#[test]
fn task_panic_in_iteration_k_stops_the_batch_with_that_error() {
    let tf = Taskflow::with_executor(Executor::new(2));
    let counter = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&counter);
    tf.emplace(move || {
        if c.fetch_add(1, Ordering::Relaxed) == 3 {
            panic!("iteration boom");
        }
    })
    .name("flaky");
    let err = tf
        .run_n(10)
        .get()
        .expect_err("task panic must fail the batch");
    let panic = err.as_panic().expect("panic, not a graph error");
    assert_eq!(panic.task, "flaky");
    assert!(panic.message.contains("iteration boom"));
    // Iterations 0..3 ran clean, iteration 3 panicked, 4..10 abandoned.
    assert_eq!(counter.load(Ordering::Relaxed), 4);

    // A fresh batch on the same topology runs clean again.
    tf.run_n(2).get().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 6);
}

#[test]
fn run_interleaves_with_legacy_one_shot_dispatch() {
    let tf = Taskflow::with_executor(Executor::new(2));
    let runs = Arc::new(AtomicUsize::new(0));
    let shots = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&runs);
    tf.emplace(move || {
        r.fetch_add(1, Ordering::Relaxed);
    });
    tf.run_n(2).get().unwrap();

    // A one-shot dispatch of a *new* graph must not disturb the run
    // target: `run` afterwards re-runs the reusable topology, not the
    // dispatched one.
    let s = Arc::clone(&shots);
    tf.emplace(move || {
        s.fetch_add(1, Ordering::Relaxed);
    });
    tf.dispatch().get().unwrap();
    tf.run().get().unwrap();

    assert_eq!(runs.load(Ordering::Relaxed), 3);
    assert_eq!(shots.load(Ordering::Relaxed), 1);
    assert_eq!(tf.num_topologies(), 2);
    tf.wait_for_all();
}

#[test]
fn emplacing_after_run_freezes_a_new_target() {
    let tf = Taskflow::with_executor(Executor::new(2));
    let (old, new) = (Arc::new(AtomicUsize::new(0)), Arc::new(AtomicUsize::new(0)));
    let o = Arc::clone(&old);
    tf.emplace(move || {
        o.fetch_add(1, Ordering::Relaxed);
    });
    tf.run().get().unwrap();

    let n = Arc::clone(&new);
    tf.emplace(move || {
        n.fetch_add(1, Ordering::Relaxed);
    });
    // The present graph is non-empty, so this freezes a new topology and
    // retargets `run*` at it; the old one is never re-armed again.
    tf.run_n(2).get().unwrap();

    assert_eq!(old.load(Ordering::Relaxed), 1);
    assert_eq!(new.load(Ordering::Relaxed), 2);
    assert_eq!(tf.num_iterations(), 2, "counts the current target only");
}

#[test]
fn try_wait_for_all_reports_errors_sticky_and_incremental() {
    let tf = Taskflow::with_executor(Executor::new(2));
    tf.emplace(|| panic!("sticky boom")).name("bad");
    tf.run().get().expect_err("panic expected");
    assert!(tf.try_wait_for_all().is_err());

    // New clean work completes, but the first error stays sticky.
    let ok = Arc::new(AtomicUsize::new(0));
    let o = Arc::clone(&ok);
    tf.emplace(move || {
        o.fetch_add(1, Ordering::Relaxed);
    });
    let err = tf.try_wait_for_all().expect_err("first error is sticky");
    assert_eq!(err.as_panic().expect("panic").task, "bad");
    assert_eq!(ok.load(Ordering::Relaxed), 1);
}

#[test]
fn gc_keeps_the_reusable_target_but_reclaims_one_shots() {
    let mut tf = Taskflow::with_executor(Executor::new(2));
    let counter = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&counter);
    tf.emplace(move || {
        c.fetch_add(1, Ordering::Relaxed);
    });
    tf.run_n(2).get().unwrap();
    for _ in 0..4 {
        tf.emplace(|| {});
        tf.dispatch().get().unwrap();
    }
    assert_eq!(tf.num_topologies(), 5);

    let reclaimed = tf.gc();
    assert_eq!(reclaimed, 4, "one-shot topologies are reclaimed");
    assert_eq!(tf.num_topologies(), 1, "the run target survives gc");

    // ... and is still re-armable afterwards.
    tf.run().get().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 3);
}

#[test]
fn num_retained_nodes_includes_last_iterations_subflow_children() {
    let tf = Taskflow::with_executor(Executor::new(2));
    tf.emplace_subflow(|sf| {
        for _ in 0..5 {
            sf.emplace(|| {});
        }
    });
    tf.run_n(3).get().unwrap();
    // 1 static parent + the 5 children of the most recent iteration
    // (earlier iterations' children were cleared by the re-arm).
    assert_eq!(tf.num_retained_nodes(), 6);
}
