//! Whole-executor sanitizer scenarios: the real `Executor` — workers,
//! Chase–Lev deques, notifier, topology state machine — driven under
//! `rustflow-check`'s PCT schedule fuzzer with happens-before race
//! detection and lock-order analysis (see `rustflow_check::Sanitizer`).
//!
//! Expectation protocol (one suite serves both CI jobs):
//!
//! * **Sound build** — every scenario must come back clean; a single race
//!   report, lock cycle, deadlock, or assertion failure fails the test.
//! * **Mutated build** (`--cfg rustflow_weaken="..."`) — only the
//!   scenario targeting that mutation runs, with the *same* must-be-clean
//!   body; catching the seeded bug therefore fails the suite, which is
//!   exactly what CI's mutation loop asserts (a surviving mutant shows up
//!   as a green run). Crash-style detections (e.g. executing a pointer
//!   stolen through a stale ring buffer) fail the suite the same way.
//!
//! Every failure message carries a `RUSTFLOW_SANITIZE_SEED=0x...` replay
//! line; re-running a single test with that env var reproduces the
//! schedule byte-for-byte (pinned by the determinism tests below).
#![cfg(feature = "rustflow_check")]

use rustflow::check_internals::EventRing;
use rustflow::{ExecutorBuilder, SchedEvent, SchedEventKind, TaskLabel, Taskflow};
use rustflow_check::Sanitizer;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The mutation compiled into this build, if any. Must list every value
/// in the crate's `check-cfg` set.
const ACTIVE_WEAKEN: Option<&str> = {
    if cfg!(rustflow_weaken = "wsq_pop_fence") {
        Some("wsq_pop_fence")
    } else if cfg!(rustflow_weaken = "wsq_grow_swap") {
        Some("wsq_grow_swap")
    } else if cfg!(rustflow_weaken = "ring_publish") {
        Some("ring_publish")
    } else if cfg!(rustflow_weaken = "injector_publish") {
        Some("injector_publish")
    } else if cfg!(rustflow_weaken = "notifier_dekker") {
        Some("notifier_dekker")
    } else if cfg!(rustflow_weaken = "rearm_publish") {
        Some("rearm_publish")
    } else if cfg!(rustflow_weaken = "cancel_publish") {
        Some("cancel_publish")
    } else if cfg!(rustflow_weaken = "seed_plain_race") {
        Some("seed_plain_race")
    } else if cfg!(rustflow_weaken = "seed_lock_cycle") {
        Some("seed_lock_cycle")
    } else {
        None
    }
};

/// Serializes model executions across the test binary: the sanitizer owns
/// the process-global panic hook while exploring, and the replay tests
/// mutate `RUSTFLOW_SANITIZE_SEED`, which every `Sanitizer::run` reads.
/// Poison-tolerant because a caught mutation legitimately panics out of
/// `check()` while the lock is held.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SEQ: std::sync::Mutex<()> = std::sync::Mutex::new(());
    SEQ.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `scenario` under the sanitizer unless a *different* mutation is
/// compiled in (each mutant is exercised only by the scenario built to
/// corner it, keeping the mutation loop's budget bounded).
fn sanitize(target: Option<&str>, san: Sanitizer, scenario: impl Fn() + Send + Sync + 'static) {
    if let Some(active) = ACTIVE_WEAKEN {
        if target != Some(active) {
            eprintln!("skipped: scenario targets {target:?}, build mutates {active:?}");
            return;
        }
    }
    let _guard = serial();
    san.check(scenario);
}

// ---------------------------------------------------------------------------
// Clean scenarios: the sound executor under schedule fuzzing
// ---------------------------------------------------------------------------

/// A k×k wavefront on a 2-worker executor: the bread-and-butter dependency
/// pattern (steals, cache-slot chains, parking) must be race- and
/// cycle-free under every explored schedule.
#[test]
fn wavefront_is_clean() {
    sanitize(None, Sanitizer::new("wavefront").iters(12), || {
        let ex = ExecutorBuilder::new().workers(2).build();
        let tf = Taskflow::with_executor(ex);
        let done = Arc::new(AtomicUsize::new(0));
        const K: usize = 3;
        let grid: Vec<_> = (0..K * K)
            .map(|_| {
                let d = Arc::clone(&done);
                tf.emplace(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for i in 0..K {
            for j in 0..K {
                if i + 1 < K {
                    grid[i * K + j].precede(grid[(i + 1) * K + j]);
                }
                if j + 1 < K {
                    grid[i * K + j].precede(grid[i * K + j + 1]);
                }
            }
        }
        tf.run().get().unwrap();
        assert_eq!(done.load(Ordering::Relaxed), K * K);
    });
}

/// A timed wait (`run_timeout`) on a healthy graph must complete, never
/// time out: in the model, timeouts fire only at global quiescence, which
/// a sound executor with queued work can never reach.
#[test]
fn deadline_on_healthy_graph_is_clean() {
    sanitize(None, Sanitizer::new("deadline").iters(8), || {
        let ex = ExecutorBuilder::new().workers(2).build();
        let tf = Taskflow::with_executor(ex);
        let a = tf.emplace(|| {});
        let b = tf.emplace(|| {});
        a.precede(b);
        tf.run_timeout(std::time::Duration::from_secs(3600))
            .expect("sound run under a generous deadline must complete");
    });
}

/// Per-task retry: a task that panics on its first attempt and succeeds on
/// the second must resolve `Ok` — the retry re-arm path (half-built state
/// reset, panic payload routing) is schedule-robust.
#[test]
fn retry_rescue_is_clean() {
    sanitize(None, Sanitizer::new("retry").iters(8), || {
        let ex = ExecutorBuilder::new().workers(2).build();
        let tf = Taskflow::with_executor(ex);
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = Arc::clone(&attempts);
        tf.emplace(move || {
            if a.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("flaky once");
            }
        })
        .retry(1);
        tf.run().get().unwrap();
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
    });
}

/// Seeded chaos: a planned mid-graph panic under `ContinueAll` must
/// resolve `Err` while the schedule stays race-free — the failure path
/// (record_panic, skip bookkeeping, promise resolution) is in scope too.
#[test]
fn chaos_panic_path_is_clean() {
    sanitize(None, Sanitizer::new("chaos").iters(8), || {
        let ex = ExecutorBuilder::new().workers(2).build();
        let tf = Taskflow::with_executor(ex);
        let a = tf.emplace(|| {});
        let b = tf.emplace(|| panic!("planned chaos fault"));
        let c = tf.emplace(|| {});
        a.precede([b, c]);
        let res = tf.run().get();
        let err = res.expect_err("planned panic must surface");
        assert!(
            format!("{err}").contains("planned chaos fault"),
            "panic payload must survive: {err}"
        );
    });
}

/// The multi-tenant front door under schedule fuzzing: two clients on
/// separate threads submit through different tenants while a one-slot
/// dispatch budget forces the WFQ pump to interleave admission, dispatch,
/// and completion-driven re-pumping. The whole path — admission lock,
/// qos lock, injector, registry — must be race- and cycle-free and no
/// submission may be lost.
#[test]
fn tenant_submission_is_clean() {
    use rustflow::TenantQos;
    sanitize(None, Sanitizer::new("tenants").iters(8), || {
        let ex = ExecutorBuilder::new().workers(2).max_inflight(1).build();
        let hi = ex.tenant_with(
            "hi",
            TenantQos {
                weight: 4,
                max_queued: 4,
                ..TenantQos::default()
            },
        );
        let lo = ex.tenant("lo");
        let done = Arc::new(AtomicUsize::new(0));
        let (ex2, d2, lo2) = (ex.clone(), Arc::clone(&done), lo.clone());
        let client = rustflow_check::thread::spawn(move || {
            let tf = Taskflow::with_executor(ex2);
            tf.emplace(move || {
                d2.fetch_add(1, Ordering::Relaxed);
            });
            tf.run_on(&lo2).unwrap().get().unwrap();
        });
        let tf = Taskflow::with_executor(ex);
        let d = Arc::clone(&done);
        tf.emplace(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        tf.run_on(&hi).unwrap().get().unwrap();
        client.join().unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 2);
        assert_eq!(hi.stats().completed + lo.stats().completed, 2);
    });
}

// ---------------------------------------------------------------------------
// Mutation-targeting scenarios (clean when sound, failing when mutated)
// ---------------------------------------------------------------------------

/// Builds a one-source fan-out: `source → t1..tk` with `k` independent
/// successors, the shape that fills the owner's deque (cache slot takes
/// one successor, the rest are pushed) while thieves attack it.
fn fan_out_flow(tf: &Taskflow, k: usize, done: &Arc<AtomicUsize>) {
    let src = tf.emplace(|| {});
    for _ in 0..k {
        let d = Arc::clone(done);
        let t = tf.emplace(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        src.precede(t);
    }
}

/// Owner-pop vs. steal on the Chase–Lev deque (`wsq_pop_fence`): without
/// the SeqCst bottom-store/top-load protocol the owner and a thief can
/// both take the last task, double-executing a node — visible as a
/// `SyncCell` race on the node's work closure or a join-counter blowup.
#[test]
fn deque_pop_steal_storm() {
    sanitize(
        Some("wsq_pop_fence"),
        Sanitizer::new("pop_steal").iters(96),
        || {
            let ex = ExecutorBuilder::new().workers(2).wake_ratio(1).build();
            let tf = Taskflow::with_executor(ex);
            let done = Arc::new(AtomicUsize::new(0));
            fan_out_flow(&tf, 5, &done);
            tf.run().get().unwrap();
            assert_eq!(done.load(Ordering::Relaxed), 5);
        },
    );
}

/// Steal racing a deque grow inside the full executor: a tiny initial
/// capacity forces `grow` during the fan-out push burst while the other
/// worker is stealing. Sound-only coverage — under the `wsq_grow_swap`
/// mutation a thief can steal a *stale node pointer* and execute garbage,
/// which wedges the whole schedule instead of failing crisply, so the
/// mutation itself is cornered by [`deque_grow_direct`] below on plain
/// integers.
#[test]
fn deque_grow_under_steal() {
    sanitize(None, Sanitizer::new("grow_steal").iters(24), || {
        let ex = ExecutorBuilder::new()
            .workers(2)
            .wake_ratio(1)
            .queue_capacity(2)
            .build();
        let tf = Taskflow::with_executor(ex);
        let done = Arc::new(AtomicUsize::new(0));
        fan_out_flow(&tf, 7, &done);
        tf.run().get().unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 7);
    });
}

/// The deque grow/steal race itself (`wsq_grow_swap`), on plain integers:
/// mirrors the model-checker protocol test but under PCT. The third push
/// exceeds capacity 2, so `grow` copies the live region and swaps the
/// buffer pointer while the thief is mid-steal; relaxing the Release
/// publication lets the thief's Acquire load of the new pointer observe
/// uninitialized or stale slots — a lost or invented item, with no node
/// pointers involved, so the failure is a clean assertion instead of UB.
#[test]
fn deque_grow_direct() {
    use rustflow::wsq::{deque_with_capacity, Steal};
    sanitize(
        Some("wsq_grow_swap"),
        Sanitizer::new("grow_direct").iters(96),
        || {
            let (owner, stealer) = deque_with_capacity(2);
            owner.push(1);
            owner.push(2);
            let thief = rustflow_check::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match stealer.steal() {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                }
                got
            });
            owner.push(3);
            let mut taken = thief.join().unwrap();
            while let Some(v) = owner.pop() {
                taken.push(v);
            }
            taken.sort_unstable();
            assert_eq!(taken, vec![1, 2, 3], "grow must not lose or invent items");
        },
    );
}

fn ring_event(ts: u64) -> SchedEvent {
    SchedEvent {
        worker: 0,
        ts_us: ts,
        label: TaskLabel::new("e"),
        kind: SchedEventKind::TaskBegin {
            span: Default::default(),
        },
    }
}

/// Telemetry-ring publication (`ring_publish`): a producer and a consumer
/// on a 2-slot ring; relaxing the Vyukov `seq` publish store lets the
/// consumer's `assume_init_read` race the producer's payload write.
#[test]
fn ring_producer_consumer() {
    sanitize(
        Some("ring_publish"),
        Sanitizer::new("ring_mpmc").iters(64),
        || {
            let ring = Arc::new(EventRing::new(2));
            let r = Arc::clone(&ring);
            let producer = rustflow_check::thread::spawn(move || {
                for i in 0..3 {
                    r.push(ring_event(i));
                }
            });
            let mut got = 0usize;
            for _ in 0..64 {
                if ring.pop().is_some() {
                    got += 1;
                }
                if got == 3 {
                    break;
                }
            }
            producer.join().unwrap();
            while ring.pop().is_some() {
                got += 1;
            }
            assert_eq!(got as u64 + ring.dropped(), 3, "events lost");
        },
    );
}

/// MPMC injector slot publication (`injector_publish`): two client
/// threads push task indices into a 2-slot [`Injector`] while the main
/// thread consumes — the submission-path handoff, extracted from the
/// executor the same way [`ring_producer_consumer`] extracts telemetry.
/// Relaxing the Vyukov `seq` publish store lets the consumer's plain
/// payload read race the producer's write; the happens-before detector
/// reports the slot race with both access sites.
#[test]
fn injector_handoff() {
    use rustflow::check_internals::Injector;
    sanitize(
        Some("injector_publish"),
        Sanitizer::new("injector").iters(96),
        || {
            let inj = Arc::new(Injector::new(2, false));
            let producers: Vec<_> = [1usize, 2, 3]
                .chunks(2)
                .map(|chunk| {
                    let inj = Arc::clone(&inj);
                    let chunk = chunk.to_vec();
                    rustflow_check::thread::spawn(move || inj.push_batch(chunk))
                })
                .collect();
            let mut got = Vec::new();
            for _ in 0..8 {
                got.extend(inj.pop());
                if got.len() == 3 {
                    break;
                }
            }
            for p in producers {
                p.join().unwrap();
            }
            while let Some(v) = inj.pop() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![1, 2, 3], "no submission lost or invented");
        },
    );
}

/// Repeated run→drain→park cycles on a single worker with the
/// probabilistic wake heuristic off. Sound-only coverage of the park path:
/// at whole-executor scope the `notifier_dekker` mutation is masked,
/// because `Notifier::wait` evaluates its `all_empty` predicate under the
/// injector mutex, whose next acquisition by the dispatcher carries a
/// happens-before edge covering the idler registration. The unmasked
/// protocol is cornered by [`notifier_lost_wake`] below.
#[test]
fn park_submit_cycles() {
    sanitize(None, Sanitizer::new("park_submit").iters(24), || {
        let ex = ExecutorBuilder::new().workers(1).wake_ratio(0).build();
        let tf = Taskflow::with_executor(ex);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        tf.emplace(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        for round in 1..=3 {
            tf.run().get().unwrap();
            assert_eq!(done.load(Ordering::Relaxed), round);
        }
    });
}

/// The notifier's Dekker protocol itself (`notifier_dekker`), replaying
/// the executor's submit path without the injector-mutex masking: the
/// idler registers (`num_idlers.fetch_add`) and re-checks a work flag
/// before parking, while the waker publishes work, issues the SeqCst
/// Dekker fence, and calls `wake_one` — whose fast path reads the idler
/// count and skips the (synchronizing) mutex when it sees zero. Relaxing
/// the count ordering lets the waker read a stale zero after the idler
/// has parked: a lost wakeup, reported by the model as a deadlock (idler
/// in `cv.wait`, main in `join`).
#[test]
fn notifier_lost_wake() {
    use rustflow::check_internals::Notifier;
    sanitize(
        Some("notifier_dekker"),
        Sanitizer::new("lost_wake").iters(96),
        || {
            let n = Arc::new(Notifier::new(1));
            let stop = Arc::new(rustflow_check::atomic::AtomicBool::new(false));
            // Model atomic, like the queues it stands in for: the store
            // below is a scheduling point (the idler can register and park
            // between the spawn and the publication) and the protocol's
            // Release/Acquire queue traffic is modeled faithfully.
            let work = Arc::new(rustflow_check::atomic::AtomicUsize::new(0));
            let (n2, s2, w2) = (Arc::clone(&n), Arc::clone(&stop), Arc::clone(&work));
            let idler = rustflow_check::thread::spawn(move || {
                n2.wait(0, || w2.load(Ordering::Acquire) == 0, &s2)
            });
            work.store(1, Ordering::Release);
            rustflow_check::atomic::fence(Ordering::SeqCst);
            let _ = n.wake_one();
            // If the idler aborted its park (work already visible), `wait`
            // returned false and the join resolves immediately; if it
            // parked, the wake above must land — a lost wake deadlocks.
            let _ = idler.join().unwrap();
        },
    );
}

/// Re-arm vs. publish on iteration boundaries (`rearm_publish`): `run_n`
/// re-arms the frozen diamond between iterations; publishing the sources
/// before the re-arm lets a woken worker execute a node whose per-run
/// state is still being rewritten — a `SyncCell` race on node state, or a
/// wedged iteration.
#[test]
fn run_n_rearm_boundary() {
    sanitize(
        Some("rearm_publish"),
        Sanitizer::new("rearm").iters(96),
        || {
            let ex = ExecutorBuilder::new().workers(2).wake_ratio(1).build();
            let tf = Taskflow::with_executor(ex);
            let done = Arc::new(AtomicUsize::new(0));
            let mk = || {
                let d = Arc::clone(&done);
                tf.emplace(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                })
            };
            let (a, b, c, d) = (mk(), mk(), mk(), mk());
            a.precede([b, c]);
            b.precede(d);
            c.precede(d);
            tf.run_n(2).get().unwrap();
            assert_eq!(done.load(Ordering::Relaxed), 8);
        },
    );
}

/// Cancel handshake (`cancel_publish`): a concurrent `cancel` against a
/// running chain. The sound protocol records `RunError::Cancelled`
/// *before* publishing the skip flag, so a cancelled run can only resolve
/// `Ok` if every task actually executed; the mutation inverts the writes
/// and lets a partially-skipped run report success.
#[test]
fn concurrent_cancel_handshake() {
    sanitize(
        Some("cancel_publish"),
        Sanitizer::new("cancel").iters(96),
        || {
            let ex = ExecutorBuilder::new().workers(2).build();
            let tf = Taskflow::with_executor(ex);
            let ran = Arc::new(AtomicUsize::new(0));
            const CHAIN: usize = 4;
            let mut prev = None;
            for _ in 0..CHAIN {
                let r = Arc::clone(&ran);
                let t = tf.emplace(move || {
                    r.fetch_add(1, Ordering::Relaxed);
                });
                if let Some(p) = prev {
                    t.succeed(p);
                }
                prev = Some(t);
            }
            let handle = Arc::new(tf.run());
            let h = Arc::clone(&handle);
            let canceller = rustflow_check::thread::spawn(move || h.cancel());
            let cancelled = canceller.join().unwrap();
            let res = handle.get();
            if cancelled {
                assert!(
                    res.is_err() || ran.load(Ordering::Relaxed) == CHAIN,
                    "cancelled run resolved Ok with only {}/{CHAIN} tasks executed",
                    ran.load(Ordering::Relaxed)
                );
            } else {
                assert!(res.is_ok(), "uncancelled run must succeed: {res:?}");
                assert_eq!(ran.load(Ordering::Relaxed), CHAIN);
            }
        },
    );
}

/// Seeded plain race (`seed_plain_race`): the mutation adds an
/// unsynchronized scratch-cell write per executed task and a plain read on
/// the worker park path; the happens-before detector must flag the pair
/// with both access sites.
#[test]
fn park_vs_execute_scratch() {
    sanitize(
        Some("seed_plain_race"),
        Sanitizer::new("seed_race").iters(96),
        || {
            let ex = ExecutorBuilder::new().workers(2).wake_ratio(1).build();
            let tf = Taskflow::with_executor(ex);
            let done = Arc::new(AtomicUsize::new(0));
            fan_out_flow(&tf, 3, &done);
            tf.run().get().unwrap();
            assert_eq!(done.load(Ordering::Relaxed), 3);
        },
    );
}

/// Seeded lock-order inversion (`seed_lock_cycle`): the mutation takes
/// `Topology::error` before `pending` inside `cancel`, closing a cycle
/// against the crate-wide pending→error order. Lockdep flags the cycle on
/// the first cancel even though no explored schedule deadlocks.
#[test]
fn cancel_lock_order() {
    sanitize(
        Some("seed_lock_cycle"),
        Sanitizer::new("lock_cycle").iters(16),
        || {
            let ex = ExecutorBuilder::new().workers(1).build();
            let tf = Taskflow::with_executor(ex);
            tf.emplace(|| {});
            for _ in 0..3 {
                let handle = tf.run();
                let _ = handle.cancel();
                let _ = handle.get();
            }
        },
    );
}

// ---------------------------------------------------------------------------
// Replay determinism: same seed ⇒ byte-identical trace and reports
// ---------------------------------------------------------------------------

/// A deliberately racy pair of model threads on a raw `CheckedCell` — the
/// detector must fire, and fire *identically* on every run.
fn racy_pair() {
    let cell = Arc::new(rustflow_check::cell::CheckedCell::new(0u64));
    let c = Arc::clone(&cell);
    let t = rustflow_check::thread::spawn(move || {
        // SAFETY: deliberately WRONG — unordered with the read below; the
        // scenario exists to make the race detector fire.
        unsafe { c.with_mut(|p| *p += 1) };
    });
    // SAFETY: deliberately WRONG — see above.
    let _ = unsafe { cell.with(|p| std::ptr::read(p)) };
    t.join().unwrap();
}

fn tiny_clean_flow() {
    let ex = ExecutorBuilder::new().workers(2).build();
    let tf = Taskflow::with_executor(ex);
    let a = tf.emplace(|| {});
    let b = tf.emplace(|| {});
    a.precede(b);
    tf.run().get().unwrap();
}

/// Three runs with the same seed must produce byte-identical schedule
/// traces and byte-identical race reports (the replay contract the seed
/// printed with every finding relies on) — racy scenario.
#[test]
fn replay_determinism_racy() {
    if ACTIVE_WEAKEN.is_some() {
        eprintln!("skipped under mutation build");
        return;
    }
    let _guard = serial();
    let run = || {
        Sanitizer::new("det_racy")
            .iters(6)
            .seed(0x00c0_ffee_0000_0001)
            .run(racy_pair)
    };
    let first = run();
    assert!(
        !first.reports.is_empty(),
        "the racy scenario must produce a race report"
    );
    let both_sites = first
        .reports
        .iter()
        .any(|r| r.matches("sanitize.rs").count() >= 2);
    assert!(
        both_sites,
        "race report must name both access sites in this file: {:?}",
        first.reports
    );
    for _ in 0..2 {
        let again = run();
        assert_eq!(first.trace, again.trace, "schedule trace must be stable");
        assert_eq!(first.reports, again.reports, "reports must be stable");
        assert_eq!(first.schedules, again.schedules);
    }
}

/// Same determinism contract on a clean full-executor scenario: identical
/// traces, zero reports, across three runs.
#[test]
fn replay_determinism_clean() {
    if ACTIVE_WEAKEN.is_some() {
        eprintln!("skipped under mutation build");
        return;
    }
    let _guard = serial();
    let run = || {
        Sanitizer::new("det_clean")
            .iters(4)
            .seed(0x00c0_ffee_0000_0002)
            .run(tiny_clean_flow)
    };
    let first = run();
    assert!(
        first.failure.is_none(),
        "clean flow failed: {:?}",
        first.failure
    );
    assert!(
        first.reports.is_empty(),
        "clean flow raced: {:?}",
        first.reports
    );
    for _ in 0..2 {
        let again = run();
        assert_eq!(first.trace, again.trace, "schedule trace must be stable");
        assert_eq!(first.schedules, again.schedules);
    }
}

/// The forced-seed replay path: `RUSTFLOW_SANITIZE_SEED` pins a single
/// schedule; two runs with the same forced seed are byte-identical.
#[test]
fn forced_seed_replays_one_schedule() {
    if ACTIVE_WEAKEN.is_some() {
        eprintln!("skipped under mutation build");
        return;
    }
    // The `serial` lock keeps this process-global env mutation from being
    // observed by any other test's Sanitizer::run.
    let _guard = serial();
    std::env::set_var("RUSTFLOW_SANITIZE_SEED", "0xfeed5eed");
    let run = || Sanitizer::new("forced").run(racy_pair);
    let a = run();
    let b = run();
    std::env::remove_var("RUSTFLOW_SANITIZE_SEED");
    assert_eq!(a.schedules, 1, "forced seed must run exactly one schedule");
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.reports, b.reports);
    assert!(
        a.trace.contains("seed=0x00000000feed5eed"),
        "trace must carry the forced seed: {}",
        a.trace
    );
}
