//! Integration tests of the scheduler telemetry stack: per-worker event
//! rings under stress, lifecycle observer semantics (subflows, panics,
//! concurrent install/remove), Prometheus export, and Chrome-trace JSON
//! validity.

use rustflow::{
    Executor, ExecutorBuilder, ExecutorObserver, ExecutorStats, IntrospectConfig, SchedEventKind,
    SloSpec, TaskLabel, Taskflow, Tenant, TenantQos, Tracer,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Ring stress: 8 workers, 100k tasks, no shared-lock record path
// ---------------------------------------------------------------------------

#[test]
fn stress_eight_workers_hundred_k_tasks_accounted() {
    const TASKS: usize = 100_000;
    let ex = Executor::new(8);
    let tracer = Arc::new(Tracer::new(8));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);

    // Drain concurrently with recording, as a real exporter would.
    let stop = Arc::new(AtomicUsize::new(0));
    let drainer = {
        let tracer = Arc::clone(&tracer);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while stop.load(Ordering::Acquire) == 0 {
                tracer.collect();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };

    let counter = Arc::new(AtomicUsize::new(0));
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for _ in 0..TASKS {
        let c = Arc::clone(&counter);
        tf.emplace(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
    }
    tf.wait_for_all();
    stop.store(1, Ordering::Release);
    drainer.join().unwrap();

    assert_eq!(counter.load(Ordering::Relaxed), TASKS);
    let events = tracer.sched_events();
    let entries = events
        .iter()
        .filter(|e| matches!(e.kind, SchedEventKind::TaskBegin { .. }))
        .count();
    let exits = events
        .iter()
        .filter(|e| matches!(e.kind, SchedEventKind::TaskEnd { .. }))
        .count();
    let dropped = tracer.dropped() as usize;
    // Every task produced an entry and an exit; each was either collected
    // or counted as dropped when its ring was momentarily full.
    assert!(
        entries + exits + dropped >= 2 * TASKS,
        "lost events beyond ring capacity: {entries} entries + {exits} exits + {dropped} dropped < {}",
        2 * TASKS
    );
    assert!(entries <= TASKS && exits <= TASKS);
    if dropped == 0 {
        assert_eq!(entries, TASKS);
        assert_eq!(exits, TASKS);
    }
    // The executed counters are exact regardless of ring pressure.
    let total = ex.stats().total();
    assert_eq!(total.executed, TASKS as u64);
}

#[test]
fn small_rings_flush_instead_of_dropping() {
    const TASKS: usize = 5_000;
    let ex = Executor::new(4);
    let tracer = Arc::new(Tracer::with_capacity(4, 64));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(ex);
    for _ in 0..TASKS {
        tf.emplace(|| {});
    }
    tf.wait_for_all();
    // 64-slot rings overflow constantly here, but the record path drains
    // the full lane into the archive and retries instead of discarding, so
    // every begin/end pair survives.
    let events = tracer.sched_events();
    let begins = events
        .iter()
        .filter(|e| matches!(e.kind, SchedEventKind::TaskBegin { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e.kind, SchedEventKind::TaskEnd { .. }))
        .count();
    assert_eq!(tracer.dropped(), 0, "overflow must flush, not drop");
    assert_eq!(begins, TASKS);
    assert_eq!(ends, TASKS);
}

// ---------------------------------------------------------------------------
// Observer semantics
// ---------------------------------------------------------------------------

/// Records entry/exit label strings in order.
#[derive(Default)]
struct LogObserver {
    entries: parking_lot::Mutex<Vec<String>>,
    exits: parking_lot::Mutex<Vec<String>>,
}

impl ExecutorObserver for LogObserver {
    fn on_entry(&self, _worker: usize, label: &TaskLabel) {
        self.entries.lock().push(label.to_string());
    }
    fn on_exit(&self, _worker: usize, label: &TaskLabel) {
        self.exits.lock().push(label.to_string());
    }
}

#[test]
fn observers_see_joined_subflow_children() {
    let ex = Executor::new(4);
    let log = Arc::new(LogObserver::default());
    ex.observe(Arc::clone(&log) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(ex);
    tf.emplace_subflow(|sf| {
        for i in 0..4 {
            sf.emplace(|| {}).name(format!("child{i}"));
        }
        // joined by default
    })
    .name("parent");
    tf.wait_for_all();
    let entries = log.entries.lock().clone();
    let exits = log.exits.lock().clone();
    assert_eq!(entries.len(), 5, "parent + 4 children entered: {entries:?}");
    assert_eq!(exits.len(), 5);
    for i in 0..4 {
        let name = format!("child{i}");
        assert_eq!(entries.iter().filter(|e| **e == name).count(), 1);
        assert_eq!(exits.iter().filter(|e| **e == name).count(), 1);
    }
    // The parent's exit hook fires when its callable returns, before the
    // joined children run to completion — so the parent entry comes first
    // and every child entry follows it.
    assert_eq!(entries[0], "parent");
}

#[test]
fn observers_see_detached_subflow_children() {
    let ex = Executor::new(4);
    let log = Arc::new(LogObserver::default());
    ex.observe(Arc::clone(&log) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(ex);
    tf.emplace_subflow(|sf| {
        for i in 0..3 {
            sf.emplace(|| {}).name(format!("det{i}"));
        }
        sf.detach();
    })
    .name("parent");
    tf.wait_for_all();
    let entries = log.entries.lock().clone();
    let exits = log.exits.lock().clone();
    assert_eq!(
        entries.len(),
        4,
        "parent + 3 detached children: {entries:?}"
    );
    assert_eq!(exits.len(), 4);
    for i in 0..3 {
        assert!(entries.iter().any(|e| *e == format!("det{i}")));
    }
}

#[test]
fn on_exit_fires_even_when_task_panics() {
    let ex = Executor::new(2);
    let log = Arc::new(LogObserver::default());
    ex.observe(Arc::clone(&log) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(ex);
    tf.emplace(|| panic!("boom")).name("bomb");
    tf.emplace(|| {}).name("fine");
    assert!(tf.try_wait_for_all().is_err());
    let entries = log.entries.lock().clone();
    let exits = log.exits.lock().clone();
    assert_eq!(entries.len(), 2);
    assert_eq!(exits.len(), 2, "exit must fire for the panicking task too");
    assert!(exits.iter().any(|e| e == "bomb"));
}

#[test]
fn concurrent_observe_and_remove_does_not_deadlock() {
    let ex = Executor::new(4);
    let churn = {
        let ex = Arc::clone(&ex);
        std::thread::spawn(move || {
            for _ in 0..200 {
                ex.observe(Arc::new(LogObserver::default()) as Arc<dyn ExecutorObserver>);
                ex.observe(Arc::new(Tracer::new(4)) as Arc<dyn ExecutorObserver>);
                ex.remove_observers();
            }
        })
    };
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..20 {
        let tf = Taskflow::with_executor(Arc::clone(&ex));
        for _ in 0..500 {
            let c = Arc::clone(&counter);
            tf.emplace(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        tf.wait_for_all();
    }
    churn.join().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 10_000);
}

#[test]
fn lifecycle_events_cover_algorithm_one() {
    let ex = ExecutorBuilder::new().workers(4).build();
    let tracer = Arc::new(Tracer::new(4));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    // A fan-out of chains: sources come from the injector, chains hit the
    // cache slot, and the uneven shape provokes steals and parks.
    for c in 0..32 {
        let mut prev = tf.emplace(|| {}).name(format!("head{c}"));
        for _ in 0..50 {
            let next = tf.emplace(|| {
                std::hint::black_box(0u64);
            });
            prev.precede(next);
            prev = next;
        }
    }
    tf.wait_for_all();
    let events = tracer.sched_events();
    let has = |f: &dyn Fn(&SchedEventKind) -> bool| events.iter().any(|e| f(&e.kind));
    assert!(has(&|k| matches!(k, SchedEventKind::TaskBegin { .. })));
    assert!(has(&|k| matches!(k, SchedEventKind::TaskEnd { .. })));
    // Schema v2: begin events carry node identity and a live run id.
    assert!(has(&|k| matches!(
        k,
        SchedEventKind::TaskBegin { span } if span.node != 0 && span.run != 0
    )));
    assert!(has(
        &|k| matches!(k, SchedEventKind::TopologyDispatch { tasks, .. } if *tasks == 32 * 51)
    ));
    assert!(has(&|k| matches!(
        k,
        SchedEventKind::TopologyFinalize { .. }
    )));
    assert!(has(&|k| matches!(k, SchedEventKind::CacheHit)));
    assert!(has(&|k| matches!(k, SchedEventKind::InjectorPop)));

    let total = ex.stats().total();
    assert_eq!(total.executed, 32 * 51);
    assert!(total.cache_hits > 0, "chains must use the cache slot");
    assert!(total.injector_pops > 0, "sources arrive via the injector");
    assert!(total.parks > 0, "workers idled before dispatch");
    // Dispatch/finalize identities pair up (run id and stable uid alike).
    let dispatched: Vec<rustflow::IterationInfo> = events
        .iter()
        .filter_map(|e| match e.kind {
            SchedEventKind::TopologyDispatch { info, .. } => Some(info),
            _ => None,
        })
        .collect();
    for id in dispatched {
        assert!(has(
            &|k| matches!(k, SchedEventKind::TopologyFinalize { info } if *info == id)
        ));
    }
}

// ---------------------------------------------------------------------------
// Prometheus export on a live executor
// ---------------------------------------------------------------------------

#[test]
fn prometheus_text_from_live_executor_parses() {
    let ex = Executor::new(3);
    let before = ex.stats();
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for _ in 0..600 {
        tf.emplace(|| {});
    }
    tf.wait_for_all();
    let after = ex.stats();
    let delta = after.delta(&before);
    assert_eq!(delta.total().executed, 600);

    let text = after.prometheus_text();
    let mut families: Vec<String> = Vec::new();
    let mut executed_sum = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE name kind");
            assert_eq!(kind, "counter");
            families.push(name.to_string());
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        // name{worker="N"} value
        let open = line.find('{').expect("labels");
        let close = line.find('}').expect("labels close");
        let name = &line[..open];
        let labels = &line[open + 1..close];
        let worker: usize = labels
            .strip_prefix("worker=\"")
            .and_then(|l| l.strip_suffix('"'))
            .expect("worker label")
            .parse()
            .expect("worker id");
        assert!(worker < 3);
        let value: u64 = line[close + 1..].trim().parse().expect("sample value");
        if name == "rustflow_tasks_executed_total" {
            executed_sum += value;
        }
    }
    assert_eq!(executed_sum, 600);
    for family in [
        "rustflow_tasks_executed_total",
        "rustflow_cache_hits_total",
        "rustflow_steals_total",
        "rustflow_steal_attempts_total",
        "rustflow_steal_failures_total",
        "rustflow_injector_pops_total",
        "rustflow_parks_total",
        "rustflow_wakes_sent_total",
        "rustflow_tasks_skipped_total",
        "rustflow_task_retries_total",
    ] {
        assert!(families.iter().any(|f| f == family), "missing {family}");
    }
}

// ---------------------------------------------------------------------------
// Fault events (schema v3): skip / retry round-trip through the rings
// ---------------------------------------------------------------------------

#[test]
fn retry_events_round_trip_with_one_span_per_task() {
    assert_eq!(rustflow::SCHED_EVENT_SCHEMA_VERSION, 5);
    let ex = Executor::new(2);
    let tracer = Arc::new(Tracer::new(2));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    tf.emplace(move || {
        if a.fetch_add(1, Ordering::SeqCst) < 2 {
            panic!("flaky");
        }
    })
    .name("flaky")
    .retry(2);
    assert!(tf.try_wait_for_all().is_ok());
    let events = tracer.sched_events();
    // One retry event per re-execution, with monotonically rising attempt.
    let retry_attempts: Vec<u32> = events
        .iter()
        .filter(|e| e.label == "flaky")
        .filter_map(|e| match e.kind {
            SchedEventKind::TaskRetried { attempt } => Some(attempt),
            _ => None,
        })
        .collect();
    assert_eq!(retry_attempts, vec![1, 2]);
    // The begin/end pair brackets *all* attempts: exactly one span.
    let begins = events
        .iter()
        .filter(|e| e.label == "flaky" && matches!(e.kind, SchedEventKind::TaskBegin { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| e.label == "flaky" && matches!(e.kind, SchedEventKind::TaskEnd { .. }))
        .count();
    assert_eq!((begins, ends), (1, 1));
    // And the chrome trace renders the instants.
    let json = tracer.chrome_trace_json();
    assert!(json.contains("task-retried"));
    assert_eq!(ex.stats().total().retries, 2);
}

#[test]
fn skipped_tasks_emit_skip_events_and_no_span() {
    let ex = Executor::new(2);
    let tracer = Arc::new(Tracer::new(2));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let started = Arc::new(AtomicUsize::new(0));
    let s = Arc::clone(&started);
    let gate = tf
        .emplace(move || {
            s.store(1, Ordering::SeqCst);
            while !rustflow::this_task::is_cancelled() {
                std::thread::yield_now();
            }
        })
        .name("gate");
    for i in 0..64 {
        let t = tf.emplace(|| unreachable!("skipped")).name(format!("s{i}"));
        gate.precede(t);
    }
    let run = tf.run();
    // Cancel only once the gate is live, so exactly its 64 successors
    // (and not the gate itself) take the skip path.
    while started.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    run.cancel();
    assert!(run.get().unwrap_err().is_cancelled());
    let events = tracer.sched_events();
    let skipped: Vec<&str> = events
        .iter()
        .filter(|e| matches!(e.kind, SchedEventKind::TaskSkipped))
        .map(|e| e.label.as_str())
        .collect();
    assert_eq!(skipped.len(), 64, "every successor skipped: {skipped:?}");
    // A skipped task produces no begin/end span at all.
    for label in skipped {
        assert!(!events.iter().any(|e| e.label == label
            && matches!(
                e.kind,
                SchedEventKind::TaskBegin { .. } | SchedEventKind::TaskEnd { .. }
            )));
    }
    assert!(tracer.chrome_trace_json().contains("task-skipped"));
    assert_eq!(ex.stats().total().skipped, 64);
}

#[test]
fn stats_delta_isolates_a_run() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for _ in 0..100 {
        tf.emplace(|| {});
    }
    tf.wait_for_all();
    let mid = ex.stats();
    let tf2 = Taskflow::with_executor(Arc::clone(&ex));
    for _ in 0..40 {
        tf2.emplace(|| {});
    }
    tf2.wait_for_all();
    let end = ex.stats();
    assert_eq!(end.delta(&mid).total().executed, 40);
    assert_eq!(end.delta(&ExecutorStats::default()).total().executed, 140);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON round-trips through a real JSON parser
// ---------------------------------------------------------------------------

mod json {
    //! A minimal strict JSON parser — enough to prove the exporter's
    //! output is well-formed without pulling in a dependency.

    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => obj(b, i),
            Some(b'[') => arr(b, i),
            Some(b'"') => Ok(Value::Str(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(_) => num(b, i),
            None => Err("unexpected end".into()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {i}"))
        }
    }

    fn num(b: &[u8], i: &mut usize) -> Result<Value, String> {
        let start = *i;
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        if b[*i] != b'"' {
            return Err(format!("expected string at {i}"));
        }
        *i += 1;
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(&b[*i + 1..*i + 5])
                                .map_err(|_| "bad \\u".to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u".to_string())?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                            *i += 4;
                        }
                        _ => return Err(format!("bad escape at {i}")),
                    }
                    *i += 1;
                }
                c if c < 0x20 => return Err(format!("raw control char at {i}")),
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(&b[*i..]).map_err(|_| "bad utf8".to_string())?;
                    let ch = s.chars().next().ok_or("end")?;
                    out.push(ch);
                    *i += ch.len_utf8();
                }
            }
        }
        Err("unterminated string".into())
    }

    fn arr(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // [
        let mut items = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected , or ] at {i}")),
            }
        }
    }

    fn obj(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // {
        let mut items = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(Value::Obj(items));
        }
        loop {
            skip_ws(b, i);
            let key = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected : at {i}"));
            }
            *i += 1;
            items.push((key, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Obj(items));
                }
                _ => return Err(format!("expected , or }} at {i}")),
            }
        }
    }
}

#[test]
fn chrome_trace_round_trips_through_json_parser() {
    let ex = Executor::new(4);
    let tracer = Arc::new(Tracer::new(4));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(ex);
    // Hostile names exercise the escaper end to end.
    tf.emplace(|| {}).name("a\"b\n\t\\c");
    tf.emplace(|| {}).name("plain");
    let mut prev = tf.emplace(|| {}).name("chain");
    for _ in 0..20 {
        let next = tf.emplace(|| {});
        prev.precede(next);
        prev = next;
    }
    tf.wait_for_all();

    let text = tracer.chrome_trace_json();
    let parsed = json::parse(&text).expect("exporter must emit valid JSON");
    let events = match parsed {
        json::Value::Arr(items) => items,
        other => panic!("top level must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    let mut saw_nasty = false;
    for e in &events {
        let fields = match e {
            json::Value::Obj(fields) => fields,
            other => panic!("each event must be an object, got {other:?}"),
        };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let ph = match get("ph") {
            Some(json::Value::Str(s)) => s.clone(),
            other => panic!("missing ph: {other:?}"),
        };
        assert!(matches!(ph.as_str(), "X" | "i"), "unknown phase {ph}");
        assert!(matches!(get("ts"), Some(json::Value::Num(_))));
        assert!(matches!(get("pid"), Some(json::Value::Num(_))));
        assert!(matches!(get("tid"), Some(json::Value::Num(_))));
        if let Some(json::Value::Str(name)) = get("name") {
            if name == "a\"b\n\t\\c" {
                saw_nasty = true;
            }
        }
        if ph == "X" {
            assert!(matches!(get("dur"), Some(json::Value::Num(_))));
        }
    }
    assert!(
        saw_nasty,
        "the escaped hostile name must decode back to the original"
    );
}

// ---------------------------------------------------------------------------
// Latency histogram exposition (schema v5): cumulative buckets, +Inf == count,
// label escaping round-trip, and /status percentile JSON
// ---------------------------------------------------------------------------

/// Splits a Prometheus sample line into `(name, labels, value)`, decoding
/// the label-value escapes (`\\`, `\"`, `\n`) the exporter applies.
fn parse_sample(line: &str) -> (String, Vec<(String, String)>, f64) {
    let (head, value) = line.rsplit_once(' ').expect("sample line without value");
    let value: f64 = value.parse().expect("unparseable sample value");
    let Some((name, rest)) = head.split_once('{') else {
        return (head.to_string(), Vec::new(), value);
    };
    let body: Vec<char> = rest
        .strip_suffix('}')
        .expect("unterminated label set")
        .chars()
        .collect();
    let mut labels = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let mut key = String::new();
        while body[i] != '=' {
            key.push(body[i]);
            i += 1;
        }
        i += 2; // skip `="`
        let mut val = String::new();
        loop {
            match body[i] {
                '\\' => {
                    i += 1;
                    match body[i] {
                        'n' => val.push('\n'),
                        c => val.push(c),
                    }
                }
                '"' => break,
                c => val.push(c),
            }
            i += 1;
        }
        i += 1; // closing quote
        if i < body.len() && body[i] == ',' {
            i += 1;
        }
        labels.push((key, val));
    }
    (name.to_string(), labels, value)
}

/// Runs `runs` trivial one-task flows through `tenant` and waits until the
/// executor has *recorded* them (latency shards fold in just before the
/// completion counter bumps, after the promise resolves).
fn run_recorded(ex: &Arc<Executor>, tenant: &Tenant, runs: usize) {
    let before = tenant.stats().completed;
    for i in 0..runs {
        let tf = Taskflow::with_executor(Arc::clone(ex));
        tf.emplace(|| {}).name(format!("lat-{i}"));
        tf.run_on(tenant).expect("admitted").get().unwrap();
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while tenant.stats().completed < before + runs as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "latency records never folded in: {:?}",
            tenant.stats()
        );
        std::thread::yield_now();
    }
}

#[test]
fn tenant_latency_exposition_is_cumulative_and_escaped() {
    const RUNS: usize = 8;
    const PHASES: [&str; 5] = ["admission", "queue", "dispatch", "exec", "e2e"];
    let nasty = "q\"uote\\slash\nline";
    let ex = Executor::new(2);
    let handle = ex
        .start_introspection(IntrospectConfig::default())
        .expect("introspection starts");
    let tenant = ex.tenant(nasty);
    run_recorded(&ex, &tenant, RUNS);

    let metrics = handle.metrics_text();
    // Group the family's bucket samples by (tenant, phase), in exposition
    // order, which is `le` order within one series.
    type SeriesId = (String, String);
    let mut series: Vec<(SeriesId, Vec<(String, f64)>)> = Vec::new();
    let mut counts: Vec<((String, String), f64)> = Vec::new();
    for line in metrics.lines().filter(|l| !l.starts_with('#')) {
        if !line.starts_with("rustflow_tenant_latency_us") {
            continue;
        }
        let (name, labels, value) = parse_sample(line);
        let get = |k: &str| {
            labels
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing label {k} in {line}"))
        };
        let id = (get("tenant"), get("phase"));
        match name.as_str() {
            "rustflow_tenant_latency_us_bucket" => {
                match series.iter_mut().find(|(sid, _)| *sid == id) {
                    Some((_, buckets)) => buckets.push((get("le"), value)),
                    None => series.push((id, vec![(get("le"), value)])),
                }
            }
            "rustflow_tenant_latency_us_count" => counts.push((id, value)),
            "rustflow_tenant_latency_us_sum" => {}
            other => panic!("unexpected sample {other} in family"),
        }
    }
    assert_eq!(series.len(), PHASES.len(), "one series per phase");
    for ((tenant_label, phase), buckets) in &series {
        // Escaping round-trips: the decoded label is the original name.
        assert_eq!(tenant_label, nasty, "tenant label escape round-trip");
        assert!(PHASES.contains(&phase.as_str()), "unknown phase {phase}");
        // Buckets are cumulative: non-decreasing in `le` order, ending in
        // a `+Inf` bucket that equals the series' `_count`.
        for w in buckets.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "non-monotonic buckets for {phase}: {buckets:?}"
            );
        }
        let (last_le, last) = buckets.last().expect("series has buckets");
        assert_eq!(last_le, "+Inf", "last bucket is +Inf");
        let (_, count) = counts
            .iter()
            .find(|(cid, _)| cid == &(tenant_label.clone(), phase.clone()))
            .expect("every series has a _count");
        assert_eq!(last, count, "+Inf bucket equals _count for {phase}");
        assert_eq!(*count, RUNS as f64, "every run recorded in {phase}");
    }
    drop(handle);
}

#[test]
fn status_reports_interpolated_percentiles_and_slo() {
    const RUNS: usize = 16;
    let ex = Executor::new(2);
    let handle = ex
        .start_introspection(IntrospectConfig::default())
        .expect("introspection starts");
    let tenant = ex.tenant_with(
        "svc",
        TenantQos {
            slo: Some(SloSpec {
                p99_us: 250_000,
                window: std::time::Duration::from_secs(60),
            }),
            ..TenantQos::default()
        },
    );
    run_recorded(&ex, &tenant, RUNS);

    let status = handle.status_json();
    assert!(
        status.contains("\"slo\":{\"p99_us\":250000,\"window_ms\":60000}"),
        "SLO spec surfaced in /status: {status}"
    );
    let latency = status
        .split_once("\"latency_us\":{")
        .expect("tenant has a latency_us object")
        .1;
    for phase in ["admission", "queue", "dispatch", "exec", "e2e"] {
        let obj = latency
            .split_once(&format!("\"{phase}\":{{"))
            .unwrap_or_else(|| panic!("phase {phase} missing: {status}"))
            .1;
        let field = |key: &str| -> f64 {
            obj.split_once(&format!("\"{key}\":"))
                .unwrap_or_else(|| panic!("{phase} missing {key}"))
                .1
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect::<String>()
                .parse()
                .unwrap_or_else(|_| panic!("{phase} {key} not a number"))
        };
        assert_eq!(field("count"), RUNS as f64, "{phase} count");
        let (p50, p90, p99, p999) = (field("p50"), field("p90"), field("p99"), field("p999"));
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= p999,
            "{phase} percentiles out of order: {p50} {p90} {p99} {p999}"
        );
    }
    drop(handle);
}

#[test]
fn latency_pipeline_can_be_disabled() {
    let ex = ExecutorBuilder::new()
        .workers(2)
        .latency_histograms(false)
        .build();
    let handle = ex
        .start_introspection(IntrospectConfig::default())
        .expect("introspection starts");
    let tenant = ex.tenant("quiet");
    run_recorded(&ex, &tenant, 4);
    let metrics = handle.metrics_text();
    // The family renders (the front door is in use) but records nothing:
    // every series stays at zero.
    for line in metrics.lines().filter(|l| !l.starts_with('#')) {
        if line.starts_with("rustflow_tenant_latency_us") {
            let (_, _, value) = parse_sample(line);
            assert_eq!(value, 0.0, "disabled pipeline recorded a sample: {line}");
        }
    }
    drop(handle);
}
