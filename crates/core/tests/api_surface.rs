//! Small API-surface tests: macro forms, handle introspection, builder
//! defaults, future timeouts — the corners the big integration tests
//! don't touch.

use rustflow::{Executor, ExecutorBuilder, Taskflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn emplace_macro_single_and_many() {
    let tf = Taskflow::new();
    let only = rustflow::emplace!(tf, || {});
    only.name("solo");
    let (x, y, z) = rustflow::emplace!(tf, || {}, || {}, || {});
    x.precede([y, z]);
    assert_eq!(tf.num_nodes(), 4);
    tf.wait_for_all();
}

#[test]
fn task_handle_introspection() {
    let tf = Taskflow::new();
    let a = tf.emplace(|| {}).name("alpha");
    let b = tf.emplace(|| {});
    let c = tf.placeholder();
    a.precede([b, c]);
    c.succeed(b);
    assert_eq!(a.name_str(), "alpha");
    assert_eq!(b.name_str(), "");
    assert_eq!(a.num_successors(), 2);
    assert_eq!(a.num_dependents(), 0);
    assert_eq!(c.num_dependents(), 2);
    assert!(c.is_placeholder());
    assert!(!a.is_placeholder());
    let dbg = format!("{a:?}");
    assert!(dbg.contains("alpha"));
    c.work(|| {});
    tf.wait_for_all();
}

#[test]
#[should_panic(expected = "dispatched")]
fn mutating_task_after_dispatch_panics() {
    let ex = Executor::new(1);
    let tf = Taskflow::with_executor(ex);
    let a = tf.emplace(|| {});
    tf.wait_for_all();
    // The handle survives (the topology is retained), but mutation is a
    // caught logic error.
    a.name("too late");
}

#[test]
fn builder_defaults_and_overrides() {
    let default = ExecutorBuilder::new().build();
    assert!(default.num_workers() >= 1);
    let custom = ExecutorBuilder::new()
        .workers(3)
        .cache_slot(false)
        .wake_ratio(0)
        .build();
    assert_eq!(custom.num_workers(), 3);
    // And it still runs graphs correctly with both heuristics off.
    let tf = Taskflow::with_executor(custom);
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..100 {
        let c = Arc::clone(&counter);
        tf.emplace(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }
    tf.wait_for_all();
    assert_eq!(counter.load(Ordering::SeqCst), 100);
}

#[test]
fn zero_workers_clamps_to_one() {
    let ex = Executor::new(0);
    assert_eq!(ex.num_workers(), 1);
    let ex = ExecutorBuilder::new().workers(0).build();
    assert_eq!(ex.num_workers(), 1);
}

#[test]
fn future_timeout_paths() {
    let ex = Executor::new(1);
    let tf = Taskflow::with_executor(ex);
    let gate = Arc::new(AtomicUsize::new(0));
    let g = Arc::clone(&gate);
    tf.emplace(move || {
        while g.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
    });
    let handle = tf.dispatch();
    // Observing through the raw future never cancels: it just times out
    // while the task spins...
    let future = handle.future();
    assert!(future.get_timeout(Duration::from_millis(20)).is_none());
    gate.store(1, Ordering::Release);
    // ...and resolves after release.
    let result = future.get_timeout(Duration::from_secs(5));
    assert!(matches!(result, Some(Ok(()))));
}

#[test]
fn executor_debug_and_idlers() {
    let ex = Executor::new(2);
    // Give workers a moment to park.
    std::thread::sleep(Duration::from_millis(50));
    let s = format!("{ex:?}");
    assert!(s.contains("workers: 2"));
    assert!(ex.num_idlers() <= 2);
    assert_eq!(ex.num_running_topologies(), 0);
}

#[test]
fn taskflow_default_uses_shared_executor() {
    let a = Taskflow::default();
    let b = Taskflow::new();
    assert!(Arc::ptr_eq(&a.executor(), &b.executor()));
}

#[test]
fn subflow_api_surface() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let observed = Arc::new(AtomicUsize::new(0));
    let o = Arc::clone(&observed);
    tf.emplace_subflow(move |sf| {
        assert_eq!(sf.num_tasks(), 0);
        let t = sf.placeholder().name("child");
        assert!(t.is_placeholder());
        let o2 = Arc::clone(&o);
        t.work(move || {
            o2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(sf.num_tasks(), 1);
        assert!(!sf.is_detached());
        sf.detach();
        assert!(sf.is_detached());
        sf.join();
        assert!(!sf.is_detached());
    });
    tf.wait_for_all();
    assert_eq!(observed.load(Ordering::SeqCst), 1);
}
