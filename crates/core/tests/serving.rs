//! Multi-tenant serving-path tests: many client threads hammering one
//! executor through the tenant front door (`run_on`/`try_run_on`),
//! weighted-fair dispatch ordering, admission backpressure, and the
//! shutdown race — no submission may ever be silently lost.

use rustflow::{
    AdmissionError, ExecutorBuilder, ExecutorObserver, IterationInfo, RunError, Taskflow, Tenant,
    TenantQos,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Builds a taskflow of one of three shapes (chain, diamond, fan-out),
/// each task bumping `done` — mixed-size submissions, as a real serving
/// mix would produce.
fn mixed_flow(
    ex: std::sync::Arc<rustflow::Executor>,
    shape: usize,
    done: &Arc<AtomicUsize>,
) -> (Taskflow, usize) {
    let tf = Taskflow::with_executor(ex);
    let mk = || {
        let d = Arc::clone(done);
        tf.emplace(move || {
            d.fetch_add(1, Ordering::Relaxed);
        })
    };
    let tasks = match shape % 3 {
        0 => {
            // chain a -> b -> c
            let (a, b, c) = (mk(), mk(), mk());
            a.precede(b);
            b.precede(c);
            3
        }
        1 => {
            // diamond a -> {b, c} -> d
            let (a, b, c, d) = (mk(), mk(), mk(), mk());
            a.precede([b, c]);
            b.precede(d);
            c.precede(d);
            4
        }
        _ => {
            // fan-out a -> {b1..b4}
            let a = mk();
            for _ in 0..4 {
                a.precede(mk());
            }
            5
        }
    };
    (tf, tasks)
}

/// Waits until the tenant's ledger has settled (`in_flight == 0` with
/// nothing queued) and returns the final snapshot. A resolved handle
/// proves the run's promise was set, but the finalizing worker updates
/// the tenant counters just after — a benign snapshot race the tests
/// must not trip on.
fn settled(tenant: &Tenant) -> rustflow::TenantStats {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let s = tenant.stats();
        if (s.in_flight == 0 && s.queued == 0) || std::time::Instant::now() > deadline {
            return s;
        }
        std::thread::yield_now();
    }
}

/// N client threads per tenant, each submitting a stream of mixed-size
/// topologies and waiting each one out. Every submission must complete,
/// and every tenant's counters must conserve:
/// `submitted == dispatched + coalesced + rejected` and
/// `completed == dispatched`.
#[test]
fn concurrent_clients_conserve_submissions() {
    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 20;
    let ex = ExecutorBuilder::new().workers(4).build();
    let hi = ex.tenant_with(
        "hi",
        TenantQos {
            weight: 4,
            max_queued: 64,
            ..TenantQos::default()
        },
    );
    let lo = ex.tenant("lo");
    let done = Arc::new(AtomicUsize::new(0));
    let mut expected_tasks = 0usize;
    let mut clients = Vec::new();
    for (t, tenant) in [hi.clone(), lo.clone()].into_iter().enumerate() {
        for c in 0..CLIENTS {
            let ex = ex.clone();
            let done = Arc::clone(&done);
            let tenant = tenant.clone();
            clients.push(std::thread::spawn(move || {
                let mut tasks = 0usize;
                for i in 0..PER_CLIENT {
                    let (tf, n) = mixed_flow(ex.clone(), t + c + i, &done);
                    tasks += n;
                    // Alternate blocking and non-blocking admission; a
                    // saturated try_run_on falls back to the blocking
                    // path so nothing is dropped client-side.
                    let handle = if i % 2 == 0 {
                        tf.run_on(&tenant).expect("no shutdown in flight")
                    } else {
                        match tf.try_run_on(&tenant) {
                            Ok(h) => h,
                            Err(AdmissionError::Saturated { .. }) => {
                                tf.run_on(&tenant).expect("no shutdown in flight")
                            }
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    };
                    handle.get().unwrap();
                }
                tasks
            }));
        }
    }
    for c in clients {
        expected_tasks += c.join().unwrap();
    }
    assert_eq!(done.load(Ordering::Relaxed), expected_tasks);
    for tenant in [&hi, &lo] {
        let s = settled(tenant);
        assert_eq!(
            s.submitted,
            (CLIENTS * PER_CLIENT) as u64,
            "tenant {} admission count",
            s.name
        );
        assert_eq!(
            s.submitted,
            s.dispatched + s.coalesced + s.rejected_saturated + s.rejected_shutdown,
            "tenant {} conservation: {s:?}",
            s.name
        );
        assert_eq!(
            s.completed, s.dispatched,
            "tenant {} completion: {s:?}",
            s.name
        );
        assert_eq!(s.queued, 0, "tenant {} queue drained", s.name);
        assert_eq!(s.in_flight, 0, "tenant {} nothing left in flight", s.name);
    }
    let stats = ex.stats();
    assert_eq!(stats.tenants.len(), 2, "both tenants appear in stats");
}

/// Records the tenant id of every topology dispatch, in order.
#[derive(Default)]
struct DispatchOrder {
    order: Mutex<Vec<u64>>,
}

impl ExecutorObserver for DispatchOrder {
    fn on_topology_start(&self, info: IterationInfo, _num_tasks: usize) {
        self.order.lock().unwrap().push(info.tenant);
    }
}

/// Spins until `gate` is released; parks the executor's whole tenant
/// dispatch budget behind it.
fn gate_flow(ex: std::sync::Arc<rustflow::Executor>, gate: &Arc<AtomicBool>) -> Taskflow {
    let tf = Taskflow::with_executor(ex);
    let g = Arc::clone(gate);
    tf.emplace(move || {
        while !g.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    });
    tf
}

/// Weighted fair queueing: with a 4:1 weight ratio and both backlogs
/// deep, the high-weight tenant must receive the lion's share of the
/// first dispatch slots once the budget frees up. A one-slot in-flight
/// budget serializes dispatch so the WFQ order is observable.
#[test]
fn weighted_fairness_orders_dispatch() {
    const K_HI: usize = 16;
    const K_LO: usize = 2;
    let ex = ExecutorBuilder::new().workers(2).max_inflight(1).build();
    let order = Arc::new(DispatchOrder::default());
    ex.observe(order.clone());
    let hi = ex.tenant_with(
        "hi",
        TenantQos {
            weight: 4,
            max_queued: K_HI,
            ..TenantQos::default()
        },
    );
    let lo = ex.tenant_with(
        "lo",
        TenantQos {
            weight: 1,
            max_queued: K_LO,
            ..TenantQos::default()
        },
    );
    let blocker = ex.tenant("blocker");
    // Occupy the single dispatch slot so every later submission queues.
    let gate = Arc::new(AtomicBool::new(false));
    let gate_tf = gate_flow(ex.clone(), &gate);
    let gate_handle = gate_tf.run_on(&blocker).unwrap();
    while blocker.stats().dispatched == 0 {
        std::thread::yield_now();
    }
    // Queue both backlogs while dispatch is parked: the WFQ decision now
    // sees the full picture and the resulting order is deterministic.
    let noop = Arc::new(AtomicUsize::new(0));
    let mut flows = Vec::new();
    for (tenant, k) in [(&hi, K_HI), (&lo, K_LO)] {
        for i in 0..k {
            let (tf, _) = mixed_flow(ex.clone(), i, &noop);
            let handle = tf.try_run_on(tenant).expect("backlog fits max_queued");
            flows.push((tf, handle));
        }
    }
    assert_eq!(hi.stats().queued as usize, K_HI);
    assert_eq!(lo.stats().queued as usize, K_LO);
    gate.store(true, Ordering::Release);
    gate_handle.get().unwrap();
    for (_, handle) in &flows {
        handle.get().unwrap();
    }
    // First recorded dispatch is the gate; of the next nine, WFQ at 4:1
    // owes hi at least seven (exact order: hi lo hi hi hi hi ... with lo
    // resurfacing once per four hi dispatches).
    let recorded = order.order.lock().unwrap().clone();
    let hi_id = recorded[1..]
        .iter()
        .copied()
        .find(|&t| {
            // hi got the first post-gate slot (lowest virtual time, first
            // in the tenant scan): its id is the first non-gate entry.
            t != recorded[0]
        })
        .expect("post-gate dispatches recorded");
    let first9 = &recorded[1..10];
    let hi_share = first9.iter().filter(|&&t| t == hi_id).count();
    assert!(
        hi_share >= 7,
        "4:1 WFQ must give hi >= 7 of the first 9 slots, got {hi_share}: {recorded:?}"
    );
    assert_eq!(settled(&hi).completed as usize, K_HI);
    assert_eq!(settled(&lo).completed as usize, K_LO);
}

/// Backpressure: a full tenant queue rejects `try_run_on` with
/// `Saturated` (naming the tenant and its capacity) while the blocking
/// path waits for space instead.
#[test]
fn saturation_rejects_nonblocking_submissions() {
    let ex = ExecutorBuilder::new().workers(2).max_inflight(1).build();
    let tenant = ex.tenant_with(
        "narrow",
        TenantQos {
            weight: 1,
            max_queued: 2,
            ..TenantQos::default()
        },
    );
    let gate = Arc::new(AtomicBool::new(false));
    let gate_tf = gate_flow(ex.clone(), &gate);
    let gate_handle = gate_tf.run_on(&tenant).unwrap();
    while tenant.stats().dispatched == 0 {
        std::thread::yield_now();
    }
    // Fill the queue to capacity, then overflow it.
    let noop = Arc::new(AtomicUsize::new(0));
    let mut flows = Vec::new();
    for i in 0..2 {
        let (tf, _) = mixed_flow(ex.clone(), i, &noop);
        let handle = tf.try_run_on(&tenant).expect("queue has space");
        flows.push((tf, handle));
    }
    let (overflow_tf, _) = mixed_flow(ex.clone(), 0, &noop);
    match overflow_tf.try_run_on(&tenant) {
        Err(AdmissionError::Saturated { tenant, capacity }) => {
            assert_eq!(tenant, "narrow");
            assert_eq!(capacity, 2);
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    assert_eq!(tenant.stats().rejected_saturated, 1);
    gate.store(true, Ordering::Release);
    gate_handle.get().unwrap();
    for (_, handle) in &flows {
        handle.get().unwrap();
    }
}

/// The shutdown race: submissions queued behind a long-running topology
/// when `close()` lands must resolve with a typed rejection — and late
/// submissions after `close()` are refused — while everything already
/// admitted for dispatch still completes. Nothing hangs, nothing is
/// silently dropped.
#[test]
fn close_rejects_queued_and_late_submissions() {
    let ex = ExecutorBuilder::new().workers(2).max_inflight(1).build();
    let tenant = ex.tenant_with(
        "t",
        TenantQos {
            weight: 1,
            max_queued: 16,
            ..TenantQos::default()
        },
    );
    let gate = Arc::new(AtomicBool::new(false));
    let gate_tf = gate_flow(ex.clone(), &gate);
    let gate_handle = gate_tf.run_on(&tenant).unwrap();
    while tenant.stats().dispatched == 0 {
        std::thread::yield_now();
    }
    let noop = Arc::new(AtomicUsize::new(0));
    let mut queued = Vec::new();
    for i in 0..6 {
        let (tf, _) = mixed_flow(ex.clone(), i, &noop);
        let handle = tf.try_run_on(&tenant).expect("queue has space");
        queued.push((tf, handle));
    }
    ex.close();
    gate.store(true, Ordering::Release);
    gate_handle.get().unwrap();
    let mut ok = 0u64;
    let mut rejected = 0u64;
    for (_, handle) in &queued {
        match handle.get() {
            Ok(()) => ok += 1,
            Err(RunError::Rejected(AdmissionError::ShuttingDown)) => rejected += 1,
            Err(e) => panic!("queued run must resolve Ok or ShuttingDown, got {e}"),
        }
    }
    assert_eq!(ok + rejected, 6, "every queued handle resolves");
    // Late tenant submission: typed refusal, not a hang or a drop.
    let (late_tf, _) = mixed_flow(ex.clone(), 0, &noop);
    match late_tf.try_run_on(&tenant) {
        Err(AdmissionError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    // Late direct submission (no tenant): rejected through the handle.
    let (direct_tf, _) = mixed_flow(ex.clone(), 0, &noop);
    let res = direct_tf.run().get();
    match res {
        Err(ref e) if e.as_rejected() == Some(&AdmissionError::ShuttingDown) => {}
        other => panic!("expected rejected run, got {other:?}"),
    }
    let s = settled(&tenant);
    assert_eq!(
        s.submitted,
        s.dispatched + s.coalesced + s.rejected_saturated + s.rejected_shutdown,
        "conservation across shutdown: {s:?}"
    );
    assert_eq!(s.completed, s.dispatched, "admitted work completed: {s:?}");
}

/// Cancel and panic/retry interleavings through the tenant path: every
/// handle resolves to a definite outcome and the per-tenant ledger still
/// balances afterwards.
#[test]
fn cancel_and_chaos_interleavings_conserve() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 12;
    let ex = ExecutorBuilder::new().workers(4).build();
    let tenant = ex.tenant_with(
        "chaos",
        TenantQos {
            weight: 2,
            max_queued: 64,
            ..TenantQos::default()
        },
    );
    let resolved = Arc::new(AtomicUsize::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let ex = ex.clone();
            let tenant = tenant.clone();
            let resolved = Arc::clone(&resolved);
            std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    let tf = Taskflow::with_executor(ex.clone());
                    match (c + i) % 3 {
                        0 => {
                            // Flaky task rescued by one retry.
                            let attempts = Arc::new(AtomicUsize::new(0));
                            let a = Arc::clone(&attempts);
                            tf.emplace(move || {
                                if a.fetch_add(1, Ordering::Relaxed) == 0 {
                                    panic!("flaky once");
                                }
                            })
                            .retry(1);
                            let h = tf.run_on(&tenant).unwrap();
                            h.get().unwrap();
                            assert_eq!(attempts.load(Ordering::Relaxed), 2);
                        }
                        1 => {
                            // Slow chain cancelled mid-flight: Ok (it
                            // outran the cancel) or Cancelled, never a hang.
                            let a = tf.emplace(|| {
                                std::thread::sleep(Duration::from_micros(50));
                            });
                            let b = tf.emplace(|| {});
                            a.precede(b);
                            let h = tf.run_on(&tenant).unwrap();
                            h.cancel();
                            match h.get() {
                                Ok(()) => {}
                                Err(e) if e.is_cancelled() => {}
                                Err(e) => panic!("cancel race must not produce {e}"),
                            }
                        }
                        _ => {
                            // Unrescued panic surfaces as an error.
                            tf.emplace(|| panic!("planned fault"));
                            let h = tf.run_on(&tenant).unwrap();
                            let err = h.get().expect_err("planned fault must surface");
                            assert!(format!("{err}").contains("planned fault"));
                        }
                    }
                    resolved.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    assert_eq!(resolved.load(Ordering::Relaxed), CLIENTS * PER_CLIENT);
    let s = settled(&tenant);
    assert_eq!(s.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(
        s.submitted,
        s.dispatched + s.coalesced + s.rejected_saturated + s.rejected_shutdown,
        "conservation under chaos: {s:?}"
    );
    assert_eq!(s.completed, s.dispatched, "every dispatch finalized: {s:?}");
    assert_eq!(s.queued, 0);
    assert_eq!(s.in_flight, 0);
}

/// The ablation switch: the mutexed injector must behave identically
/// (it reproduces the seed's submission path), so the same client storm
/// conserves submissions with `mutexed_injector(true)`.
#[test]
fn mutexed_injector_ablation_behaves_identically() {
    let ex = ExecutorBuilder::new()
        .workers(2)
        .mutexed_injector(true)
        .injector_capacity(8)
        .build();
    let tenant = ex.tenant("ablation");
    let done = Arc::new(AtomicUsize::new(0));
    let mut expected = 0usize;
    for i in 0..10 {
        let (tf, n) = mixed_flow(ex.clone(), i, &done);
        expected += n;
        tf.run_on(&tenant).unwrap().get().unwrap();
    }
    assert_eq!(done.load(Ordering::Relaxed), expected);
    let s = settled(&tenant);
    assert_eq!(s.submitted, 10);
    assert_eq!(s.completed, s.dispatched);
}

/// `Tenant` accessors and find-or-create semantics: asking for the same
/// name returns a handle to the same tenant; QoS on first creation wins.
#[test]
fn tenant_handles_are_stable() {
    let ex = ExecutorBuilder::new().workers(1).build();
    let a = ex.tenant_with(
        "svc",
        TenantQos {
            weight: 3,
            max_queued: 7,
            ..TenantQos::default()
        },
    );
    let b = ex.tenant("svc");
    assert_eq!(a.name(), "svc");
    assert_eq!(b.weight(), 3, "second lookup sees the original QoS");
    assert_eq!(b.max_queued(), 7);
    let other = ex.tenant("other");
    assert_eq!(other.weight(), 1, "default weight");
    assert_eq!(ex.stats().tenants.len(), 2);
}

/// Keeps `Tenant: Send + Clone` and the admission errors exported — the
/// client-facing surface a serving integration depends on.
#[test]
fn serving_surface_is_send() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tenant>();
    assert_send_sync::<AdmissionError>();
}
