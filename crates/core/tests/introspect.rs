//! Live-introspection service tests: the three endpoints over real HTTP
//! against a running executor, concurrent scrapes under chaos, watchdog
//! precision (trips on a planted stall, silent on legitimate work), the
//! flight-recorder window, and per-worker ring-drop accounting.

use rustflow::chaos::{ChaosSpec, Fault};
use rustflow::{this_task, Executor, IntrospectConfig, Taskflow, WatchdogDiagnostic};
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// --- Minimal validating JSON parser (no deps): accepts or rejects. ------

struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn check(s: &str) -> Result<(), String> {
        let mut p = Json {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at {}", p.i));
        }
        Ok(())
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at {}", self.i)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|_| ())
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or("eof in escape")?;
                    self.i += 1;
                    if esc == b'u' {
                        for _ in 0..4 {
                            let h = self.peek().ok_or("eof in \\u")?;
                            if !h.is_ascii_hexdigit() {
                                return Err(format!("bad \\u at {}", self.i));
                            }
                            self.i += 1;
                        }
                    } else if !matches!(esc, b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')
                    {
                        return Err(format!("bad escape at {}", self.i));
                    }
                }
                0x00..=0x1f => return Err(format!("raw control char at {}", self.i - 1)),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object sep {other:?} at {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array sep {other:?} at {}", self.i)),
            }
        }
    }
}

fn assert_json(s: &str) {
    if let Err(e) = Json::check(s) {
        panic!("invalid JSON ({e}): {}", &s[..s.len().min(400)]);
    }
}

// --- Strict-ish Prometheus text checker: families must be contiguous. ---

fn check_prometheus(text: &str) {
    let mut current: Option<String> = None;
    let mut finished: HashSet<String> = HashSet::new();
    let mut seen_samples: HashSet<String> = HashSet::new();
    let enter = |name: &str, current: &mut Option<String>, finished: &mut HashSet<String>| {
        if current.as_deref() != Some(name) {
            if let Some(prev) = current.take() {
                finished.insert(prev);
            }
            assert!(
                !finished.contains(name),
                "family {name} reopened after another family started (torn exposition)"
            );
            *current = Some(name.to_string());
        }
    };
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            assert!(
                kind == "HELP" || kind == "TYPE",
                "unknown comment line: {line}"
            );
            assert!(!name.is_empty(), "comment without metric name: {line}");
            enter(name, &mut current, &mut finished);
            continue;
        }
        // Sample line: name{labels} value  |  name value
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample without value");
        value.parse::<f64>().unwrap_or_else(|_| {
            panic!("unparseable sample value in line: {line}");
        });
        let name = name_and_labels
            .split('{')
            .next()
            .expect("sample without name");
        if let Some(l) = name_and_labels.strip_prefix(name) {
            if !l.is_empty() {
                assert!(
                    l.starts_with('{') && l.ends_with('}'),
                    "malformed labels in line: {line}"
                );
            }
        }
        let family = current
            .as_deref()
            .unwrap_or_else(|| panic!("sample before any HELP/TYPE: {line}"));
        let base_ok = name == family
            || [("_bucket"), ("_sum"), ("_count")]
                .iter()
                .any(|suf| name.strip_suffix(suf) == Some(family));
        assert!(
            base_ok,
            "sample {name} outside its family {family} (torn exposition)"
        );
        assert!(
            seen_samples.insert(name_and_labels.to_string()),
            "duplicate sample {name_and_labels}"
        );
    }
}

// --- Tiny HTTP client. --------------------------------------------------

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("no header terminator");
    let code: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let clen: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(|v| v.trim().parse().unwrap())
        })
        .expect("content-length");
    assert_eq!(body.len(), clen, "body length vs Content-Length");
    (code, body.to_string())
}

/// Extracts the integer value of `"key":` occurrences in a JSON string
/// (good enough for our own fixed-shape payloads).
fn json_u64s(body: &str, key: &str) -> Vec<u64> {
    let pat = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(pos) = rest.find(&pat) {
        rest = &rest[pos + pat.len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty() {
            out.push(digits.parse().unwrap());
        }
    }
    out
}

/// A fast introspection config for tests.
fn fast_config() -> IntrospectConfig {
    let mut cfg = IntrospectConfig::default();
    cfg.collect_period = Duration::from_millis(10);
    cfg.stall_threshold = Duration::from_millis(200);
    cfg
}

/// A config whose background collector effectively never runs, so tests
/// drive passes deterministically via `force_collect`.
fn manual_config() -> IntrospectConfig {
    let mut cfg = IntrospectConfig::default();
    cfg.collect_period = Duration::from_secs(3600);
    cfg
}

// --- Endpoint acceptance: observe a workload that is still running. -----

#[test]
fn endpoints_observe_a_running_workload() {
    let ex = Executor::new(4);
    let handle = ex
        .serve_introspection_with("127.0.0.1:0", fast_config())
        .expect("bind");
    let addr = handle.local_addr().expect("ephemeral addr");

    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for i in 0..16 {
        tf.emplace(|| std::thread::sleep(Duration::from_millis(1)))
            .name(format!("live-{i}"));
    }
    let fut = tf.run_n(150);

    // While the batch is in flight, all three endpoints must answer with
    // parseable payloads that show the work happening.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (mut saw_running, mut saw_trace) = (false, false);
    while Instant::now() < deadline && !(saw_running && saw_trace) {
        let (code, status) = http_get(addr, "/status");
        assert_eq!(code, 200);
        assert_json(&status);
        if status.contains("\"running\":{") && status.contains("\"state\":\"running\"") {
            saw_running = true;
        }
        let (code, metrics) = http_get(addr, "/metrics");
        assert_eq!(code, 200);
        check_prometheus(&metrics);
        let (code, trace) = http_get(addr, "/trace?last_ms=500");
        assert_eq!(code, 200);
        assert_json(&trace);
        if trace.contains("\"name\":\"live-") {
            saw_trace = true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_running, "/status never showed a live worker + topology");
    assert!(saw_trace, "/trace never showed a task from the live batch");

    fut.get().unwrap();

    // Routing edges.
    let (code, _) = http_get(addr, "/nope");
    assert_eq!(code, 404);
    let (code, metrics) = http_get(addr, "/metrics");
    assert_eq!(code, 200);
    for family in [
        "rustflow_tasks_executed_total",
        "rustflow_ring_dropped_events_total",
        "rustflow_queue_depth",
        "rustflow_parked_workers",
        "rustflow_inflight_topologies",
        "rustflow_flight_recorder_events",
        "rustflow_flight_recorder_dropped_total",
        "rustflow_watchdog_stalled_workers_total",
        "rustflow_watchdog_stalled_topologies_total",
        "rustflow_watchdog_ring_saturation_total",
    ] {
        assert!(metrics.contains(family), "missing family {family}");
    }
}

#[test]
fn second_introspection_start_is_rejected() {
    let ex = Executor::new(2);
    let _h = ex.start_introspection(manual_config()).unwrap();
    let err = ex.start_introspection(manual_config()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    let err = ex.serve_introspection("127.0.0.1:0").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
}

// --- Satellite 3: concurrent scrapes while chaos runs. ------------------

#[test]
fn concurrent_scrapes_under_chaos_keep_parsing() {
    let ex = Executor::new(8);
    let handle = ex
        .serve_introspection_with("127.0.0.1:0", fast_config())
        .expect("bind");
    let addr = handle.local_addr().unwrap();

    // A wavefront grid with transient first-attempt panics rescued by
    // per-task retry: every (node, iteration) the chaos stream selects
    // panics exactly once, so the whole batch still succeeds.
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let spec = ChaosSpec::new(0xC0FFEE).panic_permille(120);
    let dim = 6;
    let iters = 60;
    let completed = Arc::new(AtomicUsize::new(0));
    let fired: Arc<Mutex<HashSet<(u64, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let mut grid = Vec::new();
    for r in 0..dim {
        let mut row = Vec::new();
        for c in 0..dim {
            let node = (r * dim + c) as u64;
            let completed = Arc::clone(&completed);
            let fired = Arc::clone(&fired);
            let t = tf
                .emplace(move || {
                    let it = this_task::iteration().unwrap_or(0);
                    if matches!(spec.fault(node, it), Fault::Panic)
                        && fired.lock().unwrap().insert((node, it))
                    {
                        panic!("transient chaos");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                })
                .name(format!("w{r}-{c}"))
                .retry(1);
            row.push(t);
        }
        grid.push(row);
    }
    for r in 0..dim {
        for c in 0..dim {
            if c + 1 < dim {
                grid[r][c].precede(grid[r][c + 1]);
            }
            if r + 1 < dim {
                grid[r][c].precede(grid[r + 1][c]);
            }
        }
    }

    let before = ex.stats();
    let done = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..4)
        .map(|k| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut scrapes = 0usize;
                while !done.load(Ordering::Relaxed) {
                    match scrapes % 3 {
                        0 => {
                            let (code, body) = http_get(addr, "/metrics");
                            assert_eq!(code, 200);
                            check_prometheus(&body);
                        }
                        1 => {
                            let (code, body) = http_get(addr, "/status");
                            assert_eq!(code, 200);
                            assert_json(&body);
                        }
                        _ => {
                            let (code, body) =
                                http_get(addr, &format!("/trace?last_ms={}", 100 + k));
                            assert_eq!(code, 200);
                            assert_json(&body);
                        }
                    }
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    let fut = tf.run_n(iters);
    fut.get().expect("transient chaos must be rescued by retry");
    done.store(true, Ordering::Relaxed);
    for s in scrapers {
        let scrapes = s.join().expect("scraper panicked (torn response)");
        assert!(scrapes >= 3, "scraper barely ran ({scrapes} scrapes)");
    }

    // The workload itself was unharmed: every task of every iteration
    // completed, and the counter deltas agree with the plan.
    let delta = ex.stats().delta(&before);
    let total_tasks = dim * dim * iters as usize;
    assert_eq!(completed.load(Ordering::Relaxed), total_tasks);
    assert_eq!(delta.total().retries as usize, fired.lock().unwrap().len());
    assert!(delta.total().executed as usize >= total_tasks);
}

// --- Satellite 4: watchdog precision. -----------------------------------

#[test]
fn watchdog_trips_on_blocked_worker_within_two_passes() {
    let ex = Executor::new(2);
    let mut cfg = manual_config();
    cfg.stall_threshold = Duration::from_millis(40);
    let handle = ex.start_introspection(cfg).unwrap();

    let reports: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    handle.subscribe_watchdog(move |d| {
        if let WatchdogDiagnostic::StalledWorker { worker, label, .. } = d {
            sink.lock().unwrap().push((*worker, label.clone()));
        }
    });

    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let (s, r) = (Arc::clone(&started), Arc::clone(&release));
    tf.emplace(move || {
        s.store(true, Ordering::SeqCst);
        while !r.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
    })
    .name("stuck");
    let fut = tf.run();
    while !started.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }

    // First pass inside the threshold: nothing fires.
    handle.force_collect();
    assert_eq!(handle.watchdog_counts().stalled_workers, 0);

    // Past the threshold, the second pass must report the stall.
    std::thread::sleep(Duration::from_millis(60));
    handle.force_collect();
    assert_eq!(handle.watchdog_counts().stalled_workers, 1);
    {
        let got = reports.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].0 < 2, "worker index out of range");
        assert_eq!(got[0].1, "stuck");
    }

    // Same stuck invocation: no re-report, however many passes run.
    std::thread::sleep(Duration::from_millis(50));
    handle.force_collect();
    handle.force_collect();
    assert_eq!(handle.watchdog_counts().stalled_workers, 1);

    release.store(true, Ordering::SeqCst);
    fut.get().unwrap();
    handle.force_collect();
    assert_eq!(handle.watchdog_counts().stalled_workers, 1);
}

#[test]
fn watchdog_stays_silent_on_legit_work_and_cancelled_drains() {
    let ex = Executor::new(4);
    let mut cfg = manual_config();
    cfg.stall_threshold = Duration::from_millis(300);
    let handle = ex.start_introspection(cfg).unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    handle.subscribe_watchdog(move |_| {
        f.fetch_add(1, Ordering::SeqCst);
    });

    // A long-but-legit under-threshold task must not trip anything.
    {
        let tf = Taskflow::with_executor(Arc::clone(&ex));
        tf.emplace(|| std::thread::sleep(Duration::from_millis(80)))
            .name("slow-but-fine");
        let fut = tf.run();
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(10));
            handle.force_collect();
        }
        fut.get().unwrap();
    }

    // A cancelled topology draining its skipped tasks is not a stall.
    {
        let tf = Taskflow::with_executor(Arc::clone(&ex));
        let started = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&started);
        let gate = tf
            .emplace(move || {
                s.fetch_add(1, Ordering::SeqCst);
                while !this_task::is_cancelled() {
                    std::thread::yield_now();
                }
            })
            .name("gate");
        for i in 0..64 {
            let t = tf.emplace(|| {}).name(format!("queued-{i}"));
            gate.precede(t);
        }
        let run = tf.run();
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        handle.force_collect();
        assert!(run.cancel());
        for _ in 0..5 {
            handle.force_collect();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(run.get().unwrap_err().is_cancelled());
        handle.force_collect();
    }

    // 100 seeded chaos runs (delays perturb scheduling; some seeds panic
    // without retry) with collection passes interleaved: no false alarm.
    for seed in 0..100u64 {
        let tf = Taskflow::with_executor(Arc::clone(&ex));
        let spec = ChaosSpec::new(seed)
            .delay_permille(250, 300)
            .panic_permille(if seed % 4 == 0 { 60 } else { 0 });
        let dim = 4;
        let mut grid = Vec::new();
        for r in 0..dim {
            let mut row = Vec::new();
            for c in 0..dim {
                let node = (r * dim + c) as u64;
                row.push(tf.emplace(spec.wrap(node, || {})));
            }
            grid.push(row);
        }
        for r in 0..dim {
            for c in 0..dim {
                if c + 1 < dim {
                    grid[r][c].precede(grid[r][c + 1]);
                }
                if r + 1 < dim {
                    grid[r][c].precede(grid[r + 1][c]);
                }
            }
        }
        let fut = tf.run_n(3);
        handle.force_collect();
        let _ = fut.get(); // seeds with panics fail the run; that's fine
        handle.force_collect();
    }

    assert_eq!(
        fired.load(Ordering::SeqCst),
        0,
        "watchdog false positive: {:?}",
        handle.watchdog_counts()
    );
    let wd = handle.watchdog_counts();
    assert_eq!((wd.stalled_workers, wd.stalled_topologies), (0, 0));
}

// --- Flight-recorder window scoping. ------------------------------------

#[test]
fn trace_window_is_scoped_to_recent_activity() {
    let ex = Executor::new(2);
    let handle = ex.start_introspection(manual_config()).unwrap();

    let early = Taskflow::with_executor(Arc::clone(&ex));
    for _ in 0..4 {
        early.emplace(|| {}).name("early-task");
    }
    early.run().get().unwrap();
    handle.force_collect();

    std::thread::sleep(Duration::from_millis(120));

    let late = Taskflow::with_executor(Arc::clone(&ex));
    for _ in 0..4 {
        late.emplace(|| {}).name("late-task");
    }
    late.run().get().unwrap();

    // A 60 ms window sees only the late batch...
    let now = ex.now_us();
    let recent = handle.trace_json(Duration::from_millis(60));
    assert_json(&recent);
    assert!(recent.contains("late-task"), "missing recent events");
    assert!(
        !recent.contains("early-task"),
        "window leaked events older than requested"
    );
    for ts in json_u64s(&recent, "ts") {
        assert!(
            ts + 70_000 >= now,
            "event at {ts}µs is outside the 60ms window ending at {now}µs"
        );
    }

    // ...while an unbounded query still has both.
    let full = handle.trace_json(Duration::MAX);
    assert_json(&full);
    assert!(full.contains("early-task") && full.contains("late-task"));
}

// --- Satellite 1: per-worker ring-drop accounting. ----------------------

#[test]
fn ring_drops_surface_per_worker_and_in_endpoints() {
    let ex = Executor::new(2);
    let mut cfg = manual_config();
    cfg.ring_capacity = 2; // guarantee overflow between passes
    let handle = ex.start_introspection(cfg).unwrap();

    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for _ in 0..64 {
        tf.emplace(|| {});
    }
    tf.run_n(8).get().unwrap();
    handle.force_collect();

    let total = handle.ring_dropped();
    assert!(total > 0, "tiny rings must have overflowed");
    let per_worker: u64 = ex.stats().workers.iter().map(|w| w.ring_dropped).sum();
    assert!(per_worker > 0, "drops must be attributed to workers");
    assert!(per_worker <= total, "worker drops cannot exceed the total");

    let metrics = handle.metrics_text();
    check_prometheus(&metrics);
    assert!(metrics.contains("rustflow_ring_dropped_events_total{worker=\"0\"}"));

    let status = handle.status_json();
    assert_json(&status);
    let reported = json_u64s(&status, "ring_dropped_total");
    assert_eq!(reported.len(), 1);
    assert!(reported[0] >= total, "status lags the handle reading");

    // Overflow between passes is exactly what the saturation signal is.
    assert!(handle.watchdog_counts().ring_saturation >= 1);
}

// --- Satellite 2: one clock domain across executors and endpoints. ------

#[test]
fn timestamps_share_one_monotonic_domain() {
    let ex1 = Executor::new(2);
    let ex2 = Executor::new(2);
    let a = ex1.now_us();
    let b = ex2.now_us();
    assert!(b >= a, "different executors must share one clock origin");

    // The bracket must open before the observer is installed (eagerly
    // spawned workers may record steal-fails/parks the moment it is)
    // and close after the trace query (whose own collect pass can pull
    // in events recorded since force_collect).
    let t0 = ex1.now_us();
    let handle = ex1.start_introspection(manual_config()).unwrap();
    let tf = Taskflow::with_executor(Arc::clone(&ex1));
    tf.emplace(|| {}).name("stamp");
    tf.run().get().unwrap();
    handle.force_collect();
    let trace = handle.trace_json(Duration::MAX);
    let t1 = ex1.now_us();

    // Every event the introspection tracer recorded is stamped inside
    // [t0, t1] of the same domain, and /status's now_us agrees.
    let stamps = json_u64s(&trace, "ts");
    assert!(!stamps.is_empty());
    for ts in stamps {
        assert!(ts >= t0 && ts <= t1, "ts {ts} outside [{t0}, {t1}]");
    }
    let now = json_u64s(&handle.status_json(), "now_us");
    assert_eq!(now.len(), 1);
    assert!(now[0] >= t1);
}
