//! Source audits, run by CI so violations fail the build with file:line.
//!
//! * Every `unsafe` block or `unsafe impl` in the core and checker crates
//!   must carry a `// SAFETY:` comment immediately above it (or trailing
//!   on the same line) stating the proof obligation it discharges.
//! * Every atomic operation in the core that names a non-Relaxed memory
//!   ordering (`Acquire`/`Release`/`AcqRel`/`SeqCst`) must carry a
//!   `// ORDERING:` comment stating what the ordering synchronizes — the
//!   happens-before edge it creates, or the fence protocol it belongs to.
//!   These comments are the human-readable counterpart of the sanitizer's
//!   vector-clock evidence (`crates/check/src/sanitize.rs`): a reviewer
//!   weakening an ordering must now contradict a written claim, not just
//!   delete an argument that was never recorded.

use std::fs;
use std::path::{Path, PathBuf};

/// A code line that opens an unsafe region and therefore needs a nearby
/// SAFETY comment: an `unsafe {` block or an `unsafe impl` item.
/// (`unsafe fn` declarations are excluded — their obligation is the
/// `# Safety` doc section, which clippy's `missing_safety_doc` enforces.)
fn opens_unsafe_region(code: &str) -> bool {
    code.contains("unsafe {") || code.trim_start().starts_with("unsafe impl")
}

/// Lines the upward scan may step over between an unsafe site and its
/// SAFETY comment: attributes, a sibling unsafe site (one comment may
/// head a cluster, e.g. a Send/Sync impl pair or adjacent field inits),
/// and the `let x =` head of the same statement after rustfmt wraps it.
fn scannable(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("//") || t.starts_with("#[") || t.ends_with('=') || opens_unsafe_region(code)
}

fn audit_file(path: &Path, violations: &mut Vec<String>) {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        // The audit covers production code; in-file `#[cfg(test)]` modules
        // (conventionally the tail of the file) are exempt.
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || !opens_unsafe_region(line) {
            continue;
        }
        if line.contains("// SAFETY") {
            continue;
        }
        let mut documented = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let above = lines[j];
            if above.trim_start().starts_with("//") && above.contains("SAFETY") {
                documented = true;
                break;
            }
            if !scannable(above) {
                break;
            }
        }
        if !documented {
            violations.push(format!("{}:{}: {}", path.display(), i + 1, trimmed));
        }
    }
}

fn audit_dir(dir: &Path, violations: &mut Vec<String>) {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read dir {dir:?}: {e}"))
        .map(|entry| entry.expect("dir entry").path())
        .collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            audit_dir(&path, violations);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            audit_file(&path, violations);
        }
    }
}

/// A non-comment code line that names a non-Relaxed memory ordering.
fn uses_nonrelaxed_ordering(code: &str) -> bool {
    let t = code.trim_start();
    if t.starts_with("//") {
        return false;
    }
    // Strip a trailing comment so the tokens are matched in code only.
    let code_part = match t.find("//") {
        Some(idx) => &t[..idx],
        None => t,
    };
    ["Acquire", "Release", "AcqRel", "SeqCst"]
        .iter()
        .any(|tok| code_part.contains(tok))
}

/// Lines the upward scan may step over between an ordering use and its
/// ORDERING comment: comments, attributes (`#[cfg(...)]` mutation gates),
/// and earlier lines of the same rustfmt-wrapped statement or item (a
/// `const X: Ordering = if cfg!(..) { .. }` weaken gate spans several).
/// The scan stops at a statement boundary — a blank line or a line ending
/// in `;` or `}` — so a comment can only document the statement it heads.
fn ordering_scannable(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("//")
        || t.starts_with("#[")
        || (!t.is_empty() && !t.ends_with(';') && !t.ends_with('}'))
        || uses_nonrelaxed_ordering(code)
}

fn audit_orderings(path: &Path, violations: &mut Vec<String>) {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        // Production code only; `#[cfg(test)]` tail modules are exempt.
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        if !uses_nonrelaxed_ordering(line) {
            continue;
        }
        if line.contains("// ORDERING") {
            continue;
        }
        let mut documented = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let above = lines[j];
            if above.trim_start().starts_with("//") && above.contains("ORDERING") {
                documented = true;
                break;
            }
            if !ordering_scannable(above) {
                break;
            }
        }
        if !documented {
            violations.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
        }
    }
}

fn audit_orderings_dir(dir: &Path, violations: &mut Vec<String>) {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read dir {dir:?}: {e}"))
        .map(|entry| entry.expect("dir entry").path())
        .collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            audit_orderings_dir(&path, violations);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            audit_orderings(&path, violations);
        }
    }
}

#[test]
fn every_unsafe_block_has_a_safety_comment() {
    let core_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let check_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("../check/src");
    let mut violations = Vec::new();
    audit_dir(&core_src, &mut violations);
    audit_dir(&check_src, &mut violations);
    assert!(
        violations.is_empty(),
        "unsafe sites missing a // SAFETY: comment:\n{}",
        violations.join("\n")
    );
}

#[test]
fn every_nonrelaxed_atomic_op_documents_its_ordering() {
    let core_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut violations = Vec::new();
    audit_orderings_dir(&core_src, &mut violations);
    assert!(
        violations.is_empty(),
        "non-Relaxed atomic ops missing a // ORDERING: comment:\n{}",
        violations.join("\n")
    );
}
