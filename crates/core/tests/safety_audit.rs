//! Source audit: every `unsafe` block or `unsafe impl` in the core and
//! checker crates must carry a `// SAFETY:` comment immediately above it
//! (or trailing on the same line) stating the proof obligation it
//! discharges. CI runs this test, so an unannotated unsafe site fails the
//! build with its file and line.

use std::fs;
use std::path::{Path, PathBuf};

/// A code line that opens an unsafe region and therefore needs a nearby
/// SAFETY comment: an `unsafe {` block or an `unsafe impl` item.
/// (`unsafe fn` declarations are excluded — their obligation is the
/// `# Safety` doc section, which clippy's `missing_safety_doc` enforces.)
fn opens_unsafe_region(code: &str) -> bool {
    code.contains("unsafe {") || code.trim_start().starts_with("unsafe impl")
}

/// Lines the upward scan may step over between an unsafe site and its
/// SAFETY comment: attributes, a sibling unsafe site (one comment may
/// head a cluster, e.g. a Send/Sync impl pair or adjacent field inits),
/// and the `let x =` head of the same statement after rustfmt wraps it.
fn scannable(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("//") || t.starts_with("#[") || t.ends_with('=') || opens_unsafe_region(code)
}

fn audit_file(path: &Path, violations: &mut Vec<String>) {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        // The audit covers production code; in-file `#[cfg(test)]` modules
        // (conventionally the tail of the file) are exempt.
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || !opens_unsafe_region(line) {
            continue;
        }
        if line.contains("// SAFETY") {
            continue;
        }
        let mut documented = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let above = lines[j];
            if above.trim_start().starts_with("//") && above.contains("SAFETY") {
                documented = true;
                break;
            }
            if !scannable(above) {
                break;
            }
        }
        if !documented {
            violations.push(format!("{}:{}: {}", path.display(), i + 1, trimmed));
        }
    }
}

fn audit_dir(dir: &Path, violations: &mut Vec<String>) {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read dir {dir:?}: {e}"))
        .map(|entry| entry.expect("dir entry").path())
        .collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            audit_dir(&path, violations);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            audit_file(&path, violations);
        }
    }
}

#[test]
fn every_unsafe_block_has_a_safety_comment() {
    let core_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let check_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("../check/src");
    let mut violations = Vec::new();
    audit_dir(&core_src, &mut violations);
    audit_dir(&check_src, &mut violations);
    assert!(
        violations.is_empty(),
        "unsafe sites missing a // SAFETY: comment:\n{}",
        violations.join("\n")
    );
}
