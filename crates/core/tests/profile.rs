//! Integration tests of the causal profiler: exact work/span/critical-path
//! values on a diamond DAG with known durations, detached-subflow spans
//! outliving their parent iteration, iteration roll-up across `run_n`
//! re-arms, flush-on-finalize visibility, and a real-execution smoke test
//! joining traced spans to the frozen graph.

use rustflow::profile::{GraphSnapshot, SnapshotNode};
use rustflow::{
    Executor, ExecutorObserver, ProfileReport, SchedEvent, SchedEventKind, TaskLabel, TaskSpanInfo,
    Taskflow, TopologyRollup, Tracer,
};
use std::sync::Arc;

fn begin(worker: usize, ts: u64, node: u64, parent: u64, run: u64, label: &str) -> SchedEvent {
    SchedEvent {
        worker,
        ts_us: ts,
        label: TaskLabel::new(label),
        kind: SchedEventKind::TaskBegin {
            span: TaskSpanInfo { node, parent, run },
        },
    }
}

fn end(worker: usize, ts: u64, node: u64, parent: u64, run: u64, label: &str) -> SchedEvent {
    SchedEvent {
        worker,
        ts_us: ts,
        label: TaskLabel::new(label),
        kind: SchedEventKind::TaskEnd {
            span: TaskSpanInfo { node, parent, run },
        },
    }
}

fn snapshot(nodes: &[(u64, &str)], edges: &[(u64, u64)]) -> GraphSnapshot {
    GraphSnapshot {
        nodes: nodes
            .iter()
            .enumerate()
            .map(|(i, &(id, label))| SnapshotNode {
                id,
                label: label.to_string(),
                successors: edges
                    .iter()
                    .filter(|&&(f, _)| f == id)
                    .map(|&(_, t)| t)
                    .collect(),
                static_index: Some(i),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Diamond DAG with known durations: exact work / span / critical path
// ---------------------------------------------------------------------------

/// a(10) → {b(20), c(40)} → d(10) on two workers:
/// work = 80, span = a+c+d = 60, parallelism = 4/3, critical path a→c→d.
#[test]
fn diamond_exact_work_span_and_critical_path() {
    let snap = snapshot(
        &[(1, "a"), (2, "b"), (3, "c"), (4, "d")],
        &[(1, 2), (1, 3), (2, 4), (3, 4)],
    );
    let events = vec![
        begin(0, 0, 1, 0, 7, "a"),
        end(0, 10, 1, 0, 7, "a"),
        begin(0, 10, 2, 0, 7, "b"),
        begin(1, 10, 3, 0, 7, "c"),
        end(0, 30, 2, 0, 7, "b"),
        end(1, 50, 3, 0, 7, "c"),
        begin(1, 50, 4, 0, 7, "d"),
        end(1, 60, 4, 0, 7, "d"),
    ];
    let r = ProfileReport::build(&snap, &events, 2, 0);

    assert_eq!(r.iterations.len(), 1);
    let it = &r.iterations[0];
    assert_eq!(it.tasks, 4);
    assert_eq!(it.work_us, 80);
    assert_eq!(it.span_us, 60);
    assert_eq!(it.wall_us, 60);
    assert_eq!(it.critical_path, vec!["a", "c", "d"]);
    assert_eq!(it.critical_nodes, vec![1, 3, 4]);
    assert!((it.parallelism - 80.0 / 60.0).abs() < 1e-9);
    assert!((it.achieved_speedup - 80.0 / 60.0).abs() < 1e-9);
    // Brent: min(P, T1/T∞) = min(2, 1.333) = 1.333.
    assert!((it.brent_speedup - 80.0 / 60.0).abs() < 1e-9);

    // Critical edges feed the DOT annotation, in path order.
    assert_eq!(r.critical_edges, vec![(1, 3), (3, 4)]);

    // Per-node aggregates: single iteration, heaviest (c) first.
    assert_eq!(r.nodes.len(), 4);
    assert_eq!(r.nodes[0].identity, "c");
    assert_eq!(r.nodes[0].total_us, 40);
    assert_eq!(r.nodes[0].critical_appearances, 1);
    let b = r.nodes.iter().find(|n| n.identity == "b").unwrap();
    assert_eq!(b.critical_appearances, 0);

    // The JSON artifact carries the same numbers.
    let json = r.to_json();
    assert!(json.contains("\"work_us\": 80"));
    assert!(json.contains("\"span_us\": 60"));
    assert!(json.contains("\"critical_path\": [\"a\", \"c\", \"d\"]"));
}

/// A task whose begin event was lost (ring pressure) degrades to a
/// zero-length span instead of corrupting the pairing.
#[test]
fn missing_begin_degrades_to_zero_length_span() {
    let snap = snapshot(&[(1, "a"), (2, "b")], &[(1, 2)]);
    let events = vec![
        // No begin for a.
        end(0, 10, 1, 0, 7, "a"),
        begin(0, 10, 2, 0, 7, "b"),
        end(0, 25, 2, 0, 7, "b"),
    ];
    let r = ProfileReport::build(&snap, &events, 2, 3);
    let it = &r.iterations[0];
    assert_eq!(it.tasks, 2);
    assert_eq!(it.work_us, 15);
    assert_eq!(it.span_us, 15);
    assert_eq!(r.dropped_events, 3, "drop count must reach the report");
}

// ---------------------------------------------------------------------------
// Subflow spans: joined children on the critical path, detached children
// outliving the parent iteration
// ---------------------------------------------------------------------------

/// Joined subflow child sits between its parent and the parent's
/// successor on the critical path: a(10) spawns s(20), then b(5).
/// Span = 10+20+5 = 35 through the spawn and join edges even though the
/// child is absent from the frozen structure.
#[test]
fn joined_subflow_child_extends_critical_path() {
    let snap = snapshot(&[(1, "a"), (2, "b")], &[(1, 2)]);
    let events = vec![
        begin(0, 0, 1, 0, 9, "a"),
        end(0, 10, 1, 0, 9, "a"),
        // Dynamic child, id unknown to the snapshot, parent = a.
        begin(1, 10, 100, 1, 9, ""),
        end(1, 30, 100, 1, 9, ""),
        begin(0, 30, 2, 0, 9, "b"),
        end(0, 35, 2, 0, 9, "b"),
    ];
    let r = ProfileReport::build(&snap, &events, 2, 0);
    let it = &r.iterations[0];
    assert_eq!(it.work_us, 35);
    assert_eq!(it.span_us, 35);
    assert_eq!(it.critical_path, vec!["a", "(subflow)", "b"]);
    // The dynamic child aggregates into the unnamed-subflow bucket.
    let sub = r.nodes.iter().find(|n| n.identity == "(subflow)").unwrap();
    assert_eq!(sub.count, 1);
    assert_eq!(sub.total_us, 20);
}

/// A detached child keeps running after the parent iteration's last
/// static task ended: its span still counts toward the iteration's work
/// and extends the observed wall clock.
#[test]
fn detached_subflow_span_outlives_parent_iteration() {
    let snap = snapshot(&[(1, "p")], &[]);
    let events = vec![
        begin(0, 0, 1, 0, 11, "p"),
        end(0, 10, 1, 0, 11, "p"),
        // Detached child (parent = 0): begins inside the iteration but
        // ends well after the parent topology finalized at t=10.
        begin(1, 5, 200, 0, 11, "det"),
        end(1, 40, 200, 0, 11, "det"),
    ];
    let r = ProfileReport::build(&snap, &events, 2, 0);
    let it = &r.iterations[0];
    assert_eq!(it.tasks, 2);
    assert_eq!(it.work_us, 10 + 35);
    assert_eq!(it.wall_us, 40, "wall extends to the detached span's end");
    assert_eq!(it.span_us, 35, "independent spans: span = longest one");
    assert_eq!(it.critical_path, vec!["det"]);
}

/// Spans from different run ids never fuse into one iteration, even when
/// node ids repeat (static storage is re-armed across `run_n` iterations).
#[test]
fn iterations_are_split_by_run_id() {
    let snap = snapshot(&[(1, "a"), (2, "b")], &[(1, 2)]);
    let mut events = Vec::new();
    for (run, base) in [(21u64, 0u64), (22, 100), (23, 200)] {
        events.push(begin(0, base, 1, 0, run, "a"));
        events.push(end(0, base + 10, 1, 0, run, "a"));
        events.push(begin(0, base + 10, 2, 0, run, "b"));
        events.push(end(0, base + 40, 2, 0, run, "b"));
    }
    let r = ProfileReport::build(&snap, &events, 2, 0);
    assert_eq!(r.iterations.len(), 3);
    for it in &r.iterations {
        assert_eq!(it.work_us, 40);
        assert_eq!(it.span_us, 40);
        assert_eq!(it.critical_path, vec!["a", "b"]);
    }
    // Aggregates fold across iterations by stable node id.
    let a = r.nodes.iter().find(|n| n.identity == "a").unwrap();
    assert_eq!(a.count, 3);
    assert_eq!(a.total_us, 30);
    assert_eq!(a.critical_appearances, 3);
    assert_eq!(r.total_work_us, 120);
}

// ---------------------------------------------------------------------------
// Real execution: spans joined to the frozen graph, roll-up across
// re-arms, finalize flush visibility
// ---------------------------------------------------------------------------

/// End-to-end: trace a diamond across `run_n(3)`, join spans to
/// `profile_snapshot`, and check counts, per-node aggregates, and the
/// iteration roll-up all agree.
#[test]
fn traced_run_n_profiles_three_iterations() {
    let ex = Executor::new(4);
    let tracer = Arc::new(Tracer::new(4));
    let rollup = Arc::new(TopologyRollup::new());
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    ex.observe(Arc::clone(&rollup) as Arc<dyn ExecutorObserver>);

    let tf = Taskflow::with_executor(ex);
    let (a, b, c, d) = rustflow::emplace!(
        tf,
        || std::thread::sleep(std::time::Duration::from_micros(200)),
        || std::thread::sleep(std::time::Duration::from_micros(200)),
        || std::thread::sleep(std::time::Duration::from_micros(200)),
        || std::thread::sleep(std::time::Duration::from_micros(200)),
    );
    let (a, b, c, d) = (a.name("a"), b.name("b"), c.name("c"), d.name("d"));
    a.precede([b, c]);
    d.succeed([b, c]);
    tf.run_n(3).get().unwrap();

    let snap = tf.profile_snapshot();
    assert_eq!(snap.len(), 4);
    let report = ProfileReport::build(&snap, &tracer.sched_events(), 4, tracer.dropped());

    assert_eq!(report.iterations.len(), 3);
    for it in &report.iterations {
        assert_eq!(it.tasks, 4);
        assert!(it.work_us >= it.span_us);
        assert!(it.span_us > 0);
        // The sink runs last: it ends every critical path.
        assert_eq!(it.critical_path.last().unwrap(), "d");
        assert_eq!(it.critical_path.first().unwrap(), "a");
    }
    // Iteration indices are 0..3 on one stable topology id.
    let topo_ids: Vec<u64> = report.iterations.iter().map(|it| it.topology).collect();
    assert!(topo_ids.iter().all(|&t| t != 0 && t == topo_ids[0]));
    let mut iters: Vec<u64> = report.iterations.iter().map(|it| it.iteration).collect();
    iters.sort_unstable();
    assert_eq!(iters, vec![0, 1, 2]);

    // Static nodes aggregate by id across re-arms: 4 nodes × 3 runs.
    assert_eq!(report.nodes.len(), 4);
    for n in &report.nodes {
        assert_eq!(n.count, 3, "{} must fold across iterations", n.identity);
    }

    // Satellite: the roll-up folds all iterations under the stable uid.
    let aggs = rollup.topologies();
    assert_eq!(aggs.len(), 1, "one topology despite three run ids");
    assert_eq!(aggs[0].dispatched, 3);
    assert_eq!(aggs[0].completed, 3);
    assert_eq!(aggs[0].tasks_dispatched, 12);

    // Utilization timelines exist for every worker and stay within [0, 1].
    assert_eq!(report.utilization.len(), 4);
    assert!(report
        .utilization
        .iter()
        .all(|t| t.busy.iter().all(|&b| (0.0..=1.0).contains(&b))));

    // Artifacts render.
    let json = report.to_json();
    assert!(json.contains("\"schema_version\": 1"));
    let prom = report.prometheus_text();
    assert!(prom.contains("rustflow_task_duration_us_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("rustflow_task_total_us{task=\"a\"}"));
    let dot = tf.dump_profiled(&report);
    assert!(dot.contains("fillcolor="));
    assert!(dot.contains("color=red, penwidth=2"), "critical path bold");
}

/// Finalize flushes the rings: after a run resolves, a reader that only
/// looks at the archive (no collect) still sees the topology's final
/// task-end and the finalize event — dropping the executor can never
/// truncate a completed iteration's schedule.
#[test]
fn finalize_flush_makes_last_task_end_visible_without_collect() {
    let ex = Executor::new(2);
    let tracer = Arc::new(Tracer::new(2));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(ex);
    let first = tf.emplace(|| {}).name("first");
    let last = tf.emplace(|| {}).name("last");
    first.precede(last);
    tf.run().get().unwrap();
    drop(tf);

    // No tracer.collect() here: only what finalize flushed is visible.
    let archived = tracer.archived_events();
    assert!(
        archived.iter().any(|e| matches!(
            &e.kind,
            SchedEventKind::TaskEnd { .. } if e.label == "last"
        )),
        "final task-end must be in the archive after the run resolves"
    );
    assert!(archived
        .iter()
        .any(|e| matches!(e.kind, SchedEventKind::TopologyFinalize { .. })));
}

/// Subflow children spawned at runtime are profiled: the snapshot includes
/// the residue of the last iteration and per-label aggregation groups the
/// dynamic spans.
#[test]
fn subflow_children_appear_in_profile() {
    let ex = Executor::new(2);
    let tracer = Arc::new(Tracer::new(2));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(ex);
    tf.emplace_subflow(|sf| {
        let x = sf.emplace(|| {}).name("child_x");
        let y = sf.emplace(|| {}).name("child_y");
        x.precede(y);
    })
    .name("parent");
    tf.run().get().unwrap();

    let snap = tf.profile_snapshot();
    assert_eq!(snap.len(), 3, "parent plus two spawned children");
    let report = ProfileReport::build(&snap, &tracer.sched_events(), 2, tracer.dropped());
    assert_eq!(report.iterations[0].tasks, 3);
    for name in ["parent", "child_x", "child_y"] {
        assert!(
            report.nodes.iter().any(|n| n.identity == name),
            "{name} missing from profile"
        );
    }
}
