//! Integration tests of the rustflow executor through the public API:
//! dependency ordering, dynamic tasking semantics, dispatch/future
//! behaviour, panic handling, observers, and executor sharing.

use rustflow::{BusyCounter, Executor, ExecutorBuilder, ExecutorObserver, Taskflow, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shared logical clock for stamping execution order.
fn clock() -> Arc<AtomicUsize> {
    Arc::new(AtomicUsize::new(0))
}

fn stamp(clock: &Arc<AtomicUsize>, slot: &Arc<AtomicUsize>) -> impl FnMut() + Send + 'static {
    let clock = Arc::clone(clock);
    let slot = Arc::clone(slot);
    move || {
        slot.store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
    }
}

#[test]
fn diamond_ordering() {
    for workers in [1, 2, 4, 8] {
        let ex = Executor::new(workers);
        let tf = Taskflow::with_executor(ex);
        let clk = clock();
        let stamps: Vec<Arc<AtomicUsize>> = (0..4).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let a = tf.emplace(stamp(&clk, &stamps[0]));
        let b = tf.emplace(stamp(&clk, &stamps[1]));
        let c = tf.emplace(stamp(&clk, &stamps[2]));
        let d = tf.emplace(stamp(&clk, &stamps[3]));
        a.precede([b, c]);
        d.succeed([b, c]);
        tf.wait_for_all();
        let s: Vec<usize> = stamps.iter().map(|s| s.load(Ordering::SeqCst)).collect();
        assert!(s.iter().all(|&x| x > 0), "not all tasks ran: {s:?}");
        assert!(s[0] < s[1] && s[0] < s[2], "{s:?}");
        assert!(s[3] > s[1] && s[3] > s[2], "{s:?}");
    }
}

#[test]
fn large_random_dag_respects_every_edge() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    const N: usize = 5_000;
    let mut rng = StdRng::seed_from_u64(42);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 1..N {
        for _ in 0..rng.gen_range(0..3) {
            edges.push((rng.gen_range(v.saturating_sub(50)..v), v));
        }
    }
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let clk = clock();
    let stamps: Vec<Arc<AtomicUsize>> = (0..N).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let tasks: Vec<_> = (0..N)
        .map(|i| tf.emplace(stamp(&clk, &stamps[i])))
        .collect();
    for &(u, v) in &edges {
        tasks[u].precede(tasks[v]);
    }
    tf.wait_for_all();
    let s: Vec<usize> = stamps.iter().map(|s| s.load(Ordering::SeqCst)).collect();
    assert!(s.iter().all(|&x| x > 0));
    for &(u, v) in &edges {
        assert!(s[u] < s[v], "edge ({u},{v}) violated: {} !< {}", s[u], s[v]);
    }
}

#[test]
fn linear_chain_runs_in_order() {
    // Exercises the cache-slot fast path: a 10k chain on one worker.
    let ex = ExecutorBuilder::new().workers(1).build();
    let tf = Taskflow::with_executor(ex);
    let counter = Arc::new(AtomicUsize::new(0));
    let mut prev: Option<rustflow::Task<'_>> = None;
    for i in 0..10_000 {
        let c = Arc::clone(&counter);
        let t = tf.emplace(move || {
            let seen = c.fetch_add(1, Ordering::SeqCst);
            assert_eq!(seen, i, "chain executed out of order");
        });
        if let Some(p) = prev {
            p.precede(t);
        }
        prev = Some(t);
    }
    tf.wait_for_all();
    assert_eq!(counter.load(Ordering::SeqCst), 10_000);
}

#[test]
fn cache_slot_disabled_still_correct() {
    let ex = ExecutorBuilder::new().workers(2).cache_slot(false).build();
    let tf = Taskflow::with_executor(ex);
    let counter = Arc::new(AtomicUsize::new(0));
    let mut prev: Option<rustflow::Task<'_>> = None;
    for _ in 0..1_000 {
        let c = Arc::clone(&counter);
        let t = tf.emplace(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        if let Some(p) = prev {
            p.precede(t);
        }
        prev = Some(t);
    }
    tf.wait_for_all();
    assert_eq!(counter.load(Ordering::SeqCst), 1_000);
}

#[test]
fn subflow_join_blocks_successor() {
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let children_done = Arc::new(AtomicUsize::new(0));
    let cd = Arc::clone(&children_done);
    let parent = tf.emplace_subflow(move |sf| {
        for _ in 0..16 {
            let cd = Arc::clone(&cd);
            sf.emplace(move || {
                std::thread::sleep(Duration::from_millis(1));
                cd.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    let cd2 = Arc::clone(&children_done);
    let after = tf.emplace(move || {
        assert_eq!(
            cd2.load(Ordering::SeqCst),
            16,
            "successor ran before the joined subflow finished"
        );
    });
    parent.precede(after);
    tf.wait_for_all();
    assert_eq!(children_done.load(Ordering::SeqCst), 16);
}

#[test]
fn subflow_detach_does_not_block_successor_but_topology_waits() {
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let children_done = Arc::new(AtomicUsize::new(0));
    let cd = Arc::clone(&children_done);
    let parent = tf.emplace_subflow(move |sf| {
        for _ in 0..8 {
            let cd = Arc::clone(&cd);
            sf.emplace(move || {
                std::thread::sleep(Duration::from_millis(2));
                cd.fetch_add(1, Ordering::SeqCst);
            });
        }
        sf.detach();
    });
    let after = tf.emplace(|| {});
    parent.precede(after);
    tf.wait_for_all();
    // wait_for_all covers detached children ("a detached subflow will
    // eventually join the end of the topology").
    assert_eq!(children_done.load(Ordering::SeqCst), 8);
}

#[test]
fn nested_subflows_complete_bottom_up() {
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let total = Arc::new(AtomicUsize::new(0));
    let t0 = Arc::clone(&total);
    tf.emplace_subflow(move |sf| {
        for _ in 0..4 {
            let t1 = Arc::clone(&t0);
            sf.emplace_subflow(move |inner| {
                for _ in 0..4 {
                    let t2 = Arc::clone(&t1);
                    inner.emplace(move || {
                        t2.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
    });
    tf.wait_for_all();
    assert_eq!(total.load(Ordering::SeqCst), 16);
}

#[test]
fn deeply_nested_subflows() {
    // Recursion: depth-20 chain of nested subflows.
    fn spawn(sf: &rustflow::Subflow<'_>, depth: usize, counter: Arc<AtomicUsize>) {
        counter.fetch_add(1, Ordering::SeqCst);
        if depth > 0 {
            let c = Arc::clone(&counter);
            sf.emplace_subflow(move |inner| {
                spawn(inner, depth - 1, Arc::clone(&c));
            });
        }
    }
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let counter = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&counter);
    tf.emplace_subflow(move |sf| {
        spawn(sf, 20, Arc::clone(&c));
    });
    tf.wait_for_all();
    assert_eq!(counter.load(Ordering::SeqCst), 21);
}

#[test]
fn dispatch_future_and_silent_dispatch() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let flag = Arc::new(AtomicUsize::new(0));
    let f1 = Arc::clone(&flag);
    tf.emplace(move || {
        f1.store(1, Ordering::SeqCst);
    });
    let future = tf.dispatch();
    future.wait();
    assert_eq!(flag.load(Ordering::SeqCst), 1);
    assert!(future.is_ready());
    assert!(future.get().is_ok());

    // After dispatch the present graph is empty; a new graph can be built.
    assert!(tf.is_empty());
    let f2 = Arc::clone(&flag);
    tf.emplace(move || {
        f2.store(2, Ordering::SeqCst);
    });
    tf.silent_dispatch();
    tf.wait_for_all();
    assert_eq!(flag.load(Ordering::SeqCst), 2);
    assert_eq!(tf.num_topologies(), 2);
}

#[test]
fn empty_graph_wait_is_immediate() {
    let tf = Taskflow::new();
    tf.wait_for_all(); // must not hang
    let future = tf.dispatch();
    assert!(future.is_ready());
}

#[test]
fn panic_is_reported_not_hung() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let ran_after = Arc::new(AtomicUsize::new(0));
    let boom = tf.emplace(|| panic!("boom in task")).name("boomer");
    let r = Arc::clone(&ran_after);
    let after = tf.emplace(move || {
        r.store(1, Ordering::SeqCst);
    });
    boom.precede(after);
    let err = tf.try_wait_for_all().expect_err("panic not reported");
    let panic = err.as_panic().expect("panic, not a graph error");
    assert_eq!(panic.task, "boomer");
    assert!(panic.message.contains("boom in task"));
    // The graph keeps running past the panicked task.
    assert_eq!(ran_after.load(Ordering::SeqCst), 1);
}

#[test]
#[should_panic(expected = "boom")]
fn wait_for_all_propagates_panic() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    tf.emplace(|| panic!("boom"));
    tf.wait_for_all();
}

#[test]
fn shared_executor_across_taskflows() {
    // §III-E: "sharing an executor among multiple taskflow objects ...
    // avoiding the problem of thread over-subscription".
    let ex = Executor::new(4);
    let counter = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let ex = Arc::clone(&ex);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                let tf = Taskflow::with_executor(ex);
                for _ in 0..500 {
                    let c = Arc::clone(&counter);
                    tf.emplace(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
                tf.wait_for_all();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("taskflow thread panicked");
    }
    assert_eq!(counter.load(Ordering::SeqCst), 4_000);
    assert_eq!(ex.num_workers(), 4);
}

#[test]
fn observers_see_every_task() {
    let ex = Executor::new(2);
    let counter = Arc::new(BusyCounter::new());
    ex.observe(Arc::clone(&counter) as Arc<dyn ExecutorObserver>);
    let tracer = Arc::new(Tracer::new(2));
    ex.observe(Arc::clone(&tracer) as Arc<dyn ExecutorObserver>);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for i in 0..50 {
        tf.emplace(|| {}).name(format!("t{i}"));
    }
    tf.wait_for_all();
    assert_eq!(counter.executed(), 50);
    assert_eq!(counter.busy(), 0);
    let events = tracer.take_events();
    assert_eq!(events.len(), 50);
    assert!(events.iter().any(|e| e.name == "t0"));
    ex.remove_observers();
    let tf2 = Taskflow::with_executor(ex);
    tf2.emplace(|| {});
    tf2.wait_for_all();
    assert_eq!(counter.executed(), 50, "observer fired after removal");
}

#[test]
fn worker_stats_accumulate() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for _ in 0..200 {
        tf.emplace(|| {});
    }
    tf.wait_for_all();
    let stats = ex.worker_stats();
    assert_eq!(stats.len(), 2);
    let executed: u64 = stats.iter().map(|s| s.executed).sum();
    assert_eq!(executed, 200);
}

#[test]
fn gc_reclaims_finished_topologies() {
    let ex = Executor::new(2);
    let mut tf = Taskflow::with_executor(ex);
    for _ in 0..5 {
        tf.emplace(|| {});
        tf.silent_dispatch();
    }
    tf.wait_for_all();
    assert_eq!(tf.num_topologies(), 5);
    assert_eq!(tf.gc(), 5);
    assert_eq!(tf.num_topologies(), 0);
}

#[test]
fn placeholder_work_assigned_late() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let flag = Arc::new(AtomicUsize::new(0));
    let p = tf.placeholder().name("late");
    assert!(p.is_placeholder());
    let before = tf.emplace(|| {});
    before.precede(p);
    let f = Arc::clone(&flag);
    p.work(move || {
        f.store(7, Ordering::SeqCst);
    });
    assert!(!p.is_placeholder());
    tf.wait_for_all();
    assert_eq!(flag.load(Ordering::SeqCst), 7);
}

#[test]
fn empty_placeholder_graphs_complete() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let a = tf.placeholder();
    let b = tf.placeholder();
    let c = tf.placeholder();
    a.precede([b, c]);
    tf.wait_for_all(); // placeholders run as no-ops
}

#[test]
fn million_task_graph() {
    // "The performance scales from a single processor to multiple cores
    // with millions of tasks" — a 1M-task fan ensemble must complete.
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let counter = Arc::new(AtomicUsize::new(0));
    const N: usize = 1_000_000;
    let c0 = Arc::clone(&counter);
    let src = tf.emplace(move || {
        c0.fetch_add(1, Ordering::Relaxed);
    });
    for _ in 0..N {
        let c = Arc::clone(&counter);
        let t = tf.emplace(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        src.precede(t);
    }
    tf.wait_for_all();
    assert_eq!(counter.load(Ordering::Relaxed), N + 1);
}

#[test]
fn many_concurrent_topologies() {
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let counter = Arc::new(AtomicUsize::new(0));
    let mut futures = Vec::new();
    for _ in 0..50 {
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            tf.emplace(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        futures.push(tf.dispatch());
    }
    for f in futures {
        assert!(f.get().is_ok());
    }
    assert_eq!(counter.load(Ordering::SeqCst), 1_000);
}
