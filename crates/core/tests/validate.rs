//! Pre-dispatch sanitizer tests: `Taskflow::validate()`, dispatch
//! rejection of graphs that could never complete, and the annotated DOT
//! dump.

use rustflow::{Executor, GraphDiagnostic, RunError, Taskflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn empty_taskflow_validates_clean() {
    let tf = Taskflow::new();
    assert!(tf.validate().is_empty());
    // And an empty dispatch still resolves Ok.
    assert!(tf.dispatch().get().is_ok());
}

#[test]
fn cycle_is_reported_with_label_path() {
    let tf = Taskflow::new();
    let a = tf.emplace(|| {}).name("A");
    let b = tf.emplace(|| {}).name("B");
    let c = tf.emplace(|| {}).name("C");
    a.precede(b);
    b.precede(c);
    c.precede(a);
    let diags = tf.validate();
    assert_eq!(diags.len(), 1);
    match &diags[0] {
        GraphDiagnostic::Cycle { path, nodes } => {
            assert_eq!(path, &["A", "B", "C", "A"]);
            assert_eq!(nodes.len(), 3);
        }
        other => panic!("expected Cycle, got {other:?}"),
    }
    assert!(diags[0].is_fatal());
}

#[test]
fn cyclic_dispatch_resolves_typed_error_instead_of_deadlocking() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let a = tf.emplace(|| panic!("must never run")).name("A");
    let b = tf.emplace(|| panic!("must never run")).name("B");
    a.precede(b);
    b.precede(a);
    let future = tf.dispatch();
    // The future must resolve promptly — a rejected graph never reaches
    // the workers, so nothing can wedge.
    let result = future
        .future()
        .get_timeout(Duration::from_secs(10))
        .expect("rejected dispatch must resolve, not hang");
    match result {
        Err(RunError::InvalidGraph(diags)) => {
            assert!(diags.iter().any(|d| d.is_fatal()));
            assert!(matches!(diags[0], GraphDiagnostic::Cycle { .. }));
        }
        other => panic!("expected InvalidGraph, got {other:?}"),
    }
    // The taskflow was left with a fresh graph and stays usable.
    assert!(tf.is_empty());
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    tf.emplace(move || {
        r.fetch_add(1, Ordering::SeqCst);
    });
    assert!(tf.dispatch().get().is_ok());
    assert_eq!(ran.load(Ordering::SeqCst), 1);
}

#[test]
fn taskflow_with_rejected_dispatch_drops_without_hanging() {
    // Regression: Taskflow::drop waits on every dispatched future. Before
    // the sanitizer, dispatching a cyclic graph wedged (or panicked with
    // the promise unfulfilled), so the drop below would hang forever.
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let a = tf.emplace(|| {}).name("A");
    let b = tf.emplace(|| {}).name("B");
    a.precede(b);
    b.precede(a);
    tf.silent_dispatch(); // non-blocking; error observed only by drop
    drop(tf); // must return
}

#[test]
fn self_edge_rejected() {
    let tf = Taskflow::new();
    let a = tf.emplace(|| {}).name("loopy");
    a.precede(a);
    let diags = tf.validate();
    assert_eq!(
        diags,
        vec![GraphDiagnostic::SelfEdge {
            label: "loopy".into(),
            node: 0
        }]
    );
    let err = tf.dispatch().get().expect_err("self-edge must be rejected");
    assert!(err.to_string().contains("precedes itself"));
}

#[test]
fn diamond_with_duplicate_edges_warns_but_runs() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let count = Arc::new(AtomicUsize::new(0));
    let mk = |name: &str| {
        let c = Arc::clone(&count);
        tf.emplace(move || {
            c.fetch_add(1, Ordering::SeqCst);
        })
        .name(name)
    };
    let a = mk("A");
    let b = mk("B");
    let c = mk("C");
    let d = mk("D");
    a.precede([b, c]);
    b.precede(d);
    c.precede(d);
    // The bug under test: an extra copy of each fan-in edge.
    b.precede(d);
    c.precede(d);
    let diags = tf.validate();
    assert_eq!(diags.len(), 2, "one finding per duplicated edge: {diags:?}");
    for d in &diags {
        assert!(!d.is_fatal());
        match d {
            GraphDiagnostic::DuplicateEdge { to, count, .. } => {
                assert_eq!(to, "D");
                assert_eq!(*count, 2);
            }
            other => panic!("expected DuplicateEdge, got {other:?}"),
        }
    }
    // Warnings don't block: the diamond still runs to completion (the
    // join counter is armed from the accumulated in-degree).
    tf.wait_for_all();
    assert_eq!(count.load(Ordering::SeqCst), 4);
}

#[test]
fn orphan_task_warns_but_runs() {
    let tf = Taskflow::new();
    let a = tf.emplace(|| {}).name("A");
    let b = tf.emplace(|| {}).name("B");
    tf.emplace(|| {}).name("lonely");
    a.precede(b);
    let diags = tf.validate();
    assert_eq!(
        diags,
        vec![GraphDiagnostic::Orphan {
            label: "lonely".into(),
            node: 2
        }]
    );
    tf.wait_for_all();
}

#[test]
fn cyclic_subflow_reports_typed_error_and_topology_completes() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let sibling_ran = Arc::new(AtomicUsize::new(0));
    let s = Arc::clone(&sibling_ran);
    tf.emplace_subflow(|sf| {
        let x = sf
            .emplace(|| panic!("child of a cyclic subflow must not run"))
            .name("X");
        let y = sf.emplace(|| {}).name("Y");
        x.precede(y);
        y.precede(x);
    })
    .name("parent");
    tf.emplace(move || {
        s.fetch_add(1, Ordering::SeqCst);
    });
    let err = tf
        .try_wait_for_all()
        .expect_err("cyclic subflow must surface an error");
    match &err {
        RunError::InvalidGraph(diags) => match &diags[0] {
            GraphDiagnostic::Cycle { path, .. } => assert_eq!(path, &["X", "Y", "X"]),
            other => panic!("expected Cycle, got {other:?}"),
        },
        other => panic!("expected InvalidGraph, got {other:?}"),
    }
    // The rest of the topology still completed.
    assert_eq!(sibling_ran.load(Ordering::SeqCst), 1);
}

#[test]
fn ten_k_node_chain_validates_quickly() {
    let tf = Taskflow::new();
    let mut prev = tf.emplace(|| {}).name("head");
    for _ in 0..9_999 {
        let next = tf.emplace(|| {});
        prev.precede(next);
        prev = next;
    }
    let start = Instant::now();
    let diags = tf.validate();
    let elapsed = start.elapsed();
    assert!(diags.is_empty());
    // O(V + E) — generous bound so CI noise can't flake it.
    assert!(
        elapsed < Duration::from_secs(2),
        "validate took {elapsed:?} on a 10k chain"
    );
}

#[test]
fn annotated_dump_highlights_cycle_nodes() {
    let tf = Taskflow::new();
    tf.set_name("bad");
    let a = tf.emplace(|| {}).name("A");
    let b = tf.emplace(|| {}).name("B");
    a.precede(b);
    b.precede(a);
    tf.emplace(|| {}).name("lonely");
    let (dot, diags) = tf.dump_with_diagnostics();
    assert!(diags.iter().any(|d| d.is_fatal()));
    assert!(dot.starts_with("digraph bad {"));
    assert_eq!(dot.matches("fillcolor=red").count(), 2, "{dot}");
    assert_eq!(dot.matches("fillcolor=orange").count(), 1, "{dot}");
    // The plain dump stays unannotated.
    assert!(!tf.dump().contains("fillcolor"));
}
