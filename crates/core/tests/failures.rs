//! Failure-injection tests: panics in every flavour of task must be
//! caught, attributed, and must never wedge the executor or leak a
//! topology — plus the fault-tolerance matrix (cooperative cancellation,
//! failure policies, retry, deadlines) under deterministic chaos seeds.

use rustflow::chaos::{ChaosSpec, Fault};
use rustflow::{
    this_task, AdmissionError, BreakerSpec, BreakerState, Executor, ExecutorBuilder, FailurePolicy,
    RetryBudget, RunError, Taskflow, Tenant, TenantQos,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A closure that spins cooperatively until its run is cancelled.
fn spin_until_cancelled(started: &Arc<AtomicUsize>) -> impl FnMut() + Send + 'static {
    let started = Arc::clone(started);
    move || {
        started.fetch_add(1, Ordering::SeqCst);
        while !this_task::is_cancelled() {
            std::thread::yield_now();
        }
    }
}

#[test]
fn panic_in_dynamic_task_closure() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    tf.emplace_subflow(|_sf| panic!("dynamic boom")).name("dyn");
    let err = tf.try_wait_for_all().expect_err("panic not reported");
    let panic = err.as_panic().expect("panic, not a graph error");
    assert_eq!(panic.task, "dyn");
    assert!(panic.message.contains("dynamic boom"));
    // Executor still fully functional afterwards.
    let counter = Arc::new(AtomicUsize::new(0));
    let tf2 = Taskflow::with_executor(ex);
    let c = Arc::clone(&counter);
    tf2.emplace(move || {
        c.fetch_add(1, Ordering::SeqCst);
    });
    tf2.wait_for_all();
    assert_eq!(counter.load(Ordering::SeqCst), 1);
}

#[test]
fn panic_in_subflow_child() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let siblings = Arc::new(AtomicUsize::new(0));
    let s = Arc::clone(&siblings);
    tf.emplace_subflow(move |sf| {
        sf.emplace(|| panic!("child boom")).name("bad_child");
        let s = Arc::clone(&s);
        sf.emplace(move || {
            s.fetch_add(1, Ordering::SeqCst);
        });
    });
    let err = tf.try_wait_for_all().expect_err("panic not reported");
    assert_eq!(err.as_panic().expect("panic").task, "bad_child");
    // The sibling child still ran; the topology completed.
    assert_eq!(siblings.load(Ordering::SeqCst), 1);
}

#[test]
fn panic_before_spawn_still_spawns_nothing_but_completes() {
    // If the dynamic closure panics before emplacing anything, the node
    // completes as an empty subflow.
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let after = Arc::new(AtomicUsize::new(0));
    let parent = tf.emplace_subflow(|_sf| panic!("early"));
    let a = Arc::clone(&after);
    let next = tf.emplace(move || {
        a.store(1, Ordering::SeqCst);
    });
    parent.precede(next);
    assert!(tf.try_wait_for_all().is_err());
    assert_eq!(after.load(Ordering::SeqCst), 1);
}

#[test]
fn panic_in_partially_built_subflow_runs_built_children() {
    // Children emplaced before the panic are still spawned (the paper's
    // C++ semantics would terminate; we keep the graph live and report).
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    tf.emplace_subflow(move |sf| {
        let r = Arc::clone(&r);
        sf.emplace(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        panic!("mid-build boom");
    });
    assert!(tf.try_wait_for_all().is_err());
    assert_eq!(ran.load(Ordering::SeqCst), 1);
}

#[test]
fn first_panic_wins_under_many() {
    let ex = Executor::new(1); // deterministic order on one worker
    let tf = Taskflow::with_executor(ex);
    let a = tf.emplace(|| panic!("first")).name("t_first");
    let b = tf.emplace(|| panic!("second")).name("t_second");
    a.precede(b);
    let err = tf.try_wait_for_all().expect_err("no panic reported");
    let panic = err.as_panic().expect("panic, not a graph error");
    assert_eq!(panic.task, "t_first");
    assert!(panic.message.contains("first"));
}

#[test]
fn panics_across_multiple_topologies_are_per_topology() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    tf.emplace(|| panic!("topo1"));
    let f1 = tf.dispatch();
    tf.emplace(|| {});
    let f2 = tf.dispatch();
    assert!(f1.get().is_err());
    assert!(
        f2.get().is_ok(),
        "clean topology polluted by another's panic"
    );
}

#[test]
fn executor_survives_panic_storm() {
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for i in 0..500 {
        if i % 3 == 0 {
            tf.emplace(move || panic!("storm {i}"));
        } else {
            tf.emplace(|| {});
        }
    }
    assert!(tf.try_wait_for_all().is_err());
    // Everything still works.
    let counter = Arc::new(AtomicUsize::new(0));
    let tf2 = Taskflow::with_executor(ex);
    for _ in 0..100 {
        let c = Arc::clone(&counter);
        tf2.emplace(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }
    tf2.wait_for_all();
    assert_eq!(counter.load(Ordering::SeqCst), 100);
}

#[test]
fn cancel_mid_run_n_drains_current_and_queued_batches() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let started = Arc::new(AtomicUsize::new(0));
    tf.emplace(spin_until_cancelled(&started));
    let batch = tf.run_n(100);
    let queued = tf.run(); // queues behind the 100-iteration batch
    while started.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    assert!(batch.cancel(), "a live run must be cancellable");
    assert_eq!(batch.get(), Err(RunError::Cancelled));
    // The batch that never got to run drains with the same error.
    assert_eq!(queued.get(), Err(RunError::Cancelled));
    assert!(batch.get().unwrap_err().is_cancelled());
    // The taskflow stays usable: the next run starts with a clean slate
    // (no stale flag, no stale error).
    let ok = tf.run();
    // The task still spins until cancelled, so cancel again — but this
    // time confirm the *fresh* handle controls the fresh run.
    while started.load(Ordering::SeqCst) < 2 {
        std::thread::yield_now();
    }
    assert!(ok.cancel());
    assert_eq!(ok.get(), Err(RunError::Cancelled));
}

#[test]
fn cancel_skips_queued_tasks_of_large_topology() {
    const FANOUT: usize = 10_000;
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let started = Arc::new(AtomicUsize::new(0));
    let executed = Arc::new(AtomicUsize::new(0));
    let gate = tf.emplace(spin_until_cancelled(&started)).name("gate");
    for _ in 0..FANOUT {
        let e = Arc::clone(&executed);
        let t = tf.emplace(move || {
            e.fetch_add(1, Ordering::SeqCst);
        });
        gate.precede(t);
    }
    let before = ex.stats();
    let run = tf.run();
    while started.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    assert!(run.cancel());
    assert_eq!(run.get(), Err(RunError::Cancelled));
    // Every successor became ready only after the gate observed the
    // cancel flag, so all of them were skipped, none executed.
    assert_eq!(executed.load(Ordering::SeqCst), 0);
    let skipped = ex.stats().delta(&before).total().skipped;
    assert!(
        skipped >= FANOUT as u64,
        "queued tasks must be skipped, not run: {skipped}"
    );
}

#[test]
fn cancel_after_finalize_is_a_noop() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    tf.emplace(move || {
        c.fetch_add(1, Ordering::SeqCst);
    });
    let run = tf.run();
    assert_eq!(run.get(), Ok(()));
    assert!(!run.cancel(), "cancel after finalize must be a no-op");
    assert_eq!(run.get(), Ok(()), "the resolved outcome must not change");
    // The topology is still reusable after the no-op cancel.
    assert_eq!(tf.run().get(), Ok(()));
    assert_eq!(count.load(Ordering::SeqCst), 2);
}

#[test]
fn fail_fast_cancels_siblings_and_inflight_detached_subflow() {
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    tf.set_failure_policy(FailurePolicy::FailFast);
    let child_started = Arc::new(AtomicUsize::new(0));
    let followers_ran = Arc::new(AtomicUsize::new(0));
    // A detached subflow whose child is in flight when the panic lands;
    // it polls cancellation so FailFast can reel it in.
    let cs = Arc::clone(&child_started);
    tf.emplace_subflow(move |sf| {
        sf.detach();
        sf.emplace(spin_until_cancelled(&cs));
    });
    // The panicking task waits for the child so the subflow is genuinely
    // in flight, then fails; its successors must be skipped, not run.
    let cs = Arc::clone(&child_started);
    let boom = tf
        .emplace(move || {
            while cs.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
            panic!("fail fast boom");
        })
        .name("boom");
    for _ in 0..50 {
        let f = Arc::clone(&followers_ran);
        let t = tf.emplace(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        boom.precede(t);
    }
    let before = ex.stats();
    let err = tf.try_wait_for_all().expect_err("panic not reported");
    // The panic wins over the internal cancel (first error is kept).
    let panic = err.as_panic().expect("panic, not Cancelled");
    assert_eq!(panic.task, "boom");
    assert_eq!(followers_ran.load(Ordering::SeqCst), 0);
    assert!(ex.stats().delta(&before).total().skipped >= 50);
}

#[test]
fn continue_all_still_runs_siblings_after_panic() {
    // The historical default is unchanged: a panic is recorded but the
    // rest of the graph executes.
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    assert_eq!(tf.failure_policy(), FailurePolicy::ContinueAll);
    let followers_ran = Arc::new(AtomicUsize::new(0));
    let boom = tf.emplace(|| panic!("recorded boom")).name("boom");
    for _ in 0..50 {
        let f = Arc::clone(&followers_ran);
        let t = tf.emplace(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        boom.precede(t);
    }
    let err = tf.try_wait_for_all().expect_err("panic not reported");
    assert_eq!(err.as_panic().expect("panic").task, "boom");
    assert_eq!(followers_ran.load(Ordering::SeqCst), 50);
}

#[test]
fn retry_rescues_transient_failures() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    tf.emplace(move || {
        if a.fetch_add(1, Ordering::SeqCst) < 2 {
            panic!("transient");
        }
    })
    .retry(3);
    let before = ex.stats();
    assert_eq!(tf.run().get(), Ok(()));
    assert_eq!(attempts.load(Ordering::SeqCst), 3, "two retries, then ok");
    assert_eq!(ex.stats().delta(&before).total().retries, 2);
}

#[test]
fn retry_exhaustion_propagates_the_final_panic() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    tf.emplace(move || {
        a.fetch_add(1, Ordering::SeqCst);
        panic!("permanent");
    })
    .name("doomed")
    .retry(2);
    let before = ex.stats();
    let err = tf.run().get().expect_err("exhausted retry must fail");
    let panic = err.as_panic().expect("panic");
    assert_eq!(panic.task, "doomed");
    assert!(panic.message.contains("permanent"));
    assert_eq!(attempts.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
    assert_eq!(ex.stats().delta(&before).total().retries, 2);
}

#[test]
fn deadline_expiry_degrades_to_cancellation() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let started = Arc::new(AtomicUsize::new(0));
    tf.emplace(spin_until_cancelled(&started));
    let t0 = std::time::Instant::now();
    let result = tf.run_timeout(Duration::from_millis(50));
    assert_eq!(result, Err(RunError::Cancelled));
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "deadline must not hang"
    );
}

#[test]
fn deadline_racing_natural_completion_never_hangs() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    // A task whose duration straddles the deadline: either outcome is
    // legal, but the wait must resolve and the loser of the race must
    // not corrupt the next run.
    tf.emplace(|| std::thread::sleep(Duration::from_millis(5)));
    for _ in 0..20 {
        match tf.run().wait_timeout(Duration::from_millis(5)) {
            Ok(()) | Err(RunError::Cancelled) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    // A generous deadline always sees natural completion.
    assert_eq!(tf.run_timeout(Duration::from_secs(60)), Ok(()));
}

// ---- Deterministic chaos matrix -----------------------------------------
//
// Each test pins a seed, *computes* the expected fault plan from the pure
// `ChaosSpec::fault` function, and asserts the executor's behaviour
// matches the plan exactly — same seed, same outcome, every run.

/// Chain of `n` chaos-wrapped tasks `t0 → t1 → …`; returns the counter of
/// closures that ran to completion (fault-free bodies).
fn chaos_chain(tf: &Taskflow, spec: ChaosSpec, n: u64) -> Arc<AtomicUsize> {
    let ran = Arc::new(AtomicUsize::new(0));
    let mut prev = None;
    for node in 0..n {
        let r = Arc::clone(&ran);
        let t = tf
            .emplace(spec.wrap(node, move || {
                r.fetch_add(1, Ordering::SeqCst);
            }))
            .name(format!("t{node}"));
        if let Some(p) = prev {
            let p: rustflow::Task<'_> = p;
            p.precede(t);
        }
        prev = Some(t);
    }
    ran
}

#[test]
fn chaos_fail_fast_stops_at_the_seeded_panic() {
    const SEED: u64 = 1802;
    const N: u64 = 64;
    let spec = ChaosSpec::new(SEED).panic_permille(40);
    // The plan is pure: the first chain position that panics is known
    // before anything runs.
    let first_panic = (0..N)
        .find(|&n| spec.fault(n, 0) == Fault::Panic)
        .expect("seed must inject at least one panic");
    assert!(
        (1..N - 1).contains(&first_panic),
        "pick a seed whose first panic is interior, got {first_panic}"
    );
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    tf.set_failure_policy(FailurePolicy::FailFast);
    let ran = chaos_chain(&tf, spec, N);
    let err = tf
        .try_wait_for_all()
        .expect_err("seeded panic must surface");
    let panic = err.as_panic().expect("panic");
    assert_eq!(panic.task, format!("t{first_panic}"));
    assert!(panic.message.contains("chaos: injected panic"));
    // FailFast: exactly the tasks before the first seeded panic ran.
    assert_eq!(ran.load(Ordering::SeqCst) as u64, first_panic);
}

#[test]
fn chaos_continue_all_runs_everything_but_the_seeded_panics() {
    const SEED: u64 = 1802;
    const N: u64 = 64;
    let spec = ChaosSpec::new(SEED)
        .panic_permille(40)
        .delay_permille(200, 50);
    let panics = (0..N).filter(|&n| spec.fault(n, 0) == Fault::Panic).count() as u64;
    assert!(panics > 0, "seed must inject at least one panic");
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(ex);
    let ran = chaos_chain(&tf, spec, N);
    assert!(tf.try_wait_for_all().is_err());
    // ContinueAll: every fault-free body ran despite the panics.
    assert_eq!(ran.load(Ordering::SeqCst) as u64, N - panics);
}

#[test]
fn chaos_retry_budget_is_charged_per_attempt() {
    // permille 1000: the fault plan panics this node on every attempt
    // (retries re-run the same (node, iteration) point), so a retry
    // budget of 2 yields exactly 3 seeded panics and then the error.
    const SEED: u64 = 7;
    let spec = ChaosSpec::new(SEED).panic_permille(1000);
    assert_eq!(spec.fault(0, 0), Fault::Panic);
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    tf.emplace(spec.wrap(0, || {})).name("chaotic").retry(2);
    let before = ex.stats();
    let err = tf.run().get().expect_err("chaos panics every attempt");
    assert_eq!(err.as_panic().expect("panic").task, "chaotic");
    assert_eq!(ex.stats().delta(&before).total().retries, 2);
}

#[test]
fn chaos_delays_under_a_deadline_resolve_cancelled() {
    // Seeded delays slow the chain; the spinning tail guarantees the
    // deadline fires; outcome is Cancelled for every run of this seed.
    const SEED: u64 = 23;
    let spec = ChaosSpec::new(SEED).delay_permille(1000, 500);
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let started = Arc::new(AtomicUsize::new(0));
    let last = chaos_chain_tail(&tf, spec, 16);
    let tail = tf.emplace(spin_until_cancelled(&started)).name("tail");
    last.map(|l| l.precede(tail));
    assert_eq!(
        tf.run_timeout(Duration::from_millis(30)),
        Err(RunError::Cancelled)
    );
}

/// Like [`chaos_chain`] but returns the last task of the chain so callers
/// can extend it.
fn chaos_chain_tail<'t>(tf: &'t Taskflow, spec: ChaosSpec, n: u64) -> Option<rustflow::Task<'t>> {
    let mut prev: Option<rustflow::Task<'t>> = None;
    for node in 0..n {
        let t = tf.emplace(spec.wrap(node, || {}));
        if let Some(p) = prev {
            p.precede(t);
        }
        prev = Some(t);
    }
    prev
}

// ---- Overload resilience: shedding, deadlines, budgets, breakers ---------
//
// These exercise the graceful-degradation paths of the tenant front door:
// queue-side load shedding of expired deadlines (and its races against
// cancel and against finalize), deadline-infeasible admission, retry
// budgets, and the per-tenant circuit breaker lifecycle.

/// A closure that spins until `gate` is released — parks one dispatch
/// slot so later submissions queue behind it.
fn spin_until_released(gate: &Arc<AtomicBool>) -> impl FnMut() + Send + 'static {
    let gate = Arc::clone(gate);
    move || {
        while !gate.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }
}

/// Waits until the tenant's ledger has settled (nothing queued or in
/// flight) and returns the final snapshot; finalization trails handle
/// resolution by a benign beat the assertions must not trip on.
fn settled(tenant: &Tenant) -> rustflow::TenantStats {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let s = tenant.stats();
        if (s.in_flight == 0 && s.queued == 0) || std::time::Instant::now() > deadline {
            return s;
        }
        std::thread::yield_now();
    }
}

/// The extended admission ledger must balance at quiescence: every
/// submission is accounted to exactly one outcome.
fn assert_ledger_balances(s: &rustflow::TenantStats) {
    assert_eq!(
        s.submitted,
        s.dispatched
            + s.coalesced
            + s.shed
            + s.rejected_saturated
            + s.rejected_shutdown
            + s.rejected_infeasible
            + s.rejected_breaker,
        "extended ledger conservation: {s:?}"
    );
}

/// Spins until `cond` holds or ten seconds pass; returns whether it held.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::yield_now();
    }
    false
}

#[test]
fn expired_deadline_is_shed_not_dispatched() {
    let ex = ExecutorBuilder::new().workers(2).max_inflight(1).build();
    let tenant = ex.tenant("shed");
    let gate = Arc::new(AtomicBool::new(false));
    let gate_tf = Taskflow::with_executor(ex.clone());
    gate_tf.emplace(spin_until_released(&gate));
    let gate_handle = gate_tf.run_on(&tenant).unwrap();
    assert!(eventually(|| tenant.stats().dispatched == 1));
    // Queue a run whose deadline will be long past when the slot frees.
    let ran = Arc::new(AtomicUsize::new(0));
    let tf = Taskflow::with_executor(ex.clone());
    let r = Arc::clone(&ran);
    tf.emplace(move || {
        r.fetch_add(1, Ordering::SeqCst);
    });
    let h = tf
        .run_on_deadline(&tenant, Duration::from_millis(5))
        .unwrap();
    std::thread::sleep(Duration::from_millis(25));
    gate.store(true, Ordering::Release);
    gate_handle.get().unwrap();
    match h.get() {
        Err(RunError::Shed {
            tenant: t,
            queued_for,
        }) => {
            assert_eq!(t, "shed");
            assert!(
                queued_for >= Duration::from_millis(5),
                "shed must report at least the deadline's worth of queueing, got {queued_for:?}"
            );
        }
        other => panic!("expired deadline must shed, got {other:?}"),
    }
    assert!(h.get().unwrap_err().is_shed());
    assert_eq!(
        ran.load(Ordering::SeqCst),
        0,
        "no task of a shed run executes"
    );
    let s = settled(&tenant);
    assert_eq!(s.shed, 1);
    assert_ledger_balances(&s);
}

#[test]
fn rearm_after_shed_runs_clean() {
    // A shed run never claims its topology, so the same taskflow must
    // re-arm and execute normally on the next submission — including a
    // multi-iteration batch.
    let ex = ExecutorBuilder::new().workers(2).max_inflight(1).build();
    let tenant = ex.tenant("rearm");
    let gate = Arc::new(AtomicBool::new(false));
    let gate_tf = Taskflow::with_executor(ex.clone());
    gate_tf.emplace(spin_until_released(&gate));
    let gate_handle = gate_tf.run_on(&tenant).unwrap();
    assert!(eventually(|| tenant.stats().dispatched == 1));
    let ran = Arc::new(AtomicUsize::new(0));
    let tf = Taskflow::with_executor(ex.clone());
    let r = Arc::clone(&ran);
    tf.emplace(move || {
        r.fetch_add(1, Ordering::SeqCst);
    });
    let doomed = tf
        .run_on_deadline(&tenant, Duration::from_millis(2))
        .unwrap();
    std::thread::sleep(Duration::from_millis(15));
    gate.store(true, Ordering::Release);
    gate_handle.get().unwrap();
    assert!(doomed.get().unwrap_err().is_shed());
    assert_eq!(ran.load(Ordering::SeqCst), 0);
    // run_n continues on the topology whose previous iteration was shed.
    tf.run_n_on(&tenant, 3).unwrap().get().unwrap();
    assert_eq!(
        ran.load(Ordering::SeqCst),
        3,
        "re-armed batch runs all iterations"
    );
    let s = settled(&tenant);
    assert_eq!(s.shed, 1);
    assert_ledger_balances(&s);
}

#[test]
fn shed_vs_cancel_race_resolves_every_handle() {
    // Cancel a run the dispatcher is concurrently shedding: whichever
    // side wins, the handle resolves exactly once to a definite outcome
    // and the ledger still balances.
    const ROUNDS: usize = 20;
    // Histograms off: a warm queue-wait estimate would start rejecting
    // the tighter deadlines at admission, and this test is about the
    // dispatch-side race, not feasibility.
    let ex = ExecutorBuilder::new()
        .workers(2)
        .max_inflight(1)
        .latency_histograms(false)
        .build();
    let blocker = ex.tenant("blocker");
    let victim = ex.tenant("victim");
    let mut outcomes = [0usize; 3]; // [ok, cancelled, shed]
    for i in 0..ROUNDS {
        let gate = Arc::new(AtomicBool::new(false));
        let gate_tf = Taskflow::with_executor(ex.clone());
        gate_tf.emplace(spin_until_released(&gate));
        let gate_handle = gate_tf.run_on(&blocker).unwrap();
        if !eventually(|| blocker.stats().dispatched as usize == i + 1) {
            // Release the gate before panicking: a spinning gate task
            // would otherwise wedge executor teardown and hang the whole
            // test binary instead of reporting a failure.
            gate.store(true, Ordering::Release);
            panic!("round {i}: gate run never dispatched");
        }
        let tf = Taskflow::with_executor(ex.clone());
        tf.emplace(|| {});
        // Scan the race window: deadlines from far-expired to just-ahead
        // of the dispatcher.
        let h = tf
            .run_on_deadline(&victim, Duration::from_micros(200 + 150 * i as u64))
            .unwrap();
        std::thread::sleep(Duration::from_millis(1));
        gate.store(true, Ordering::Release); // dispatcher starts popping
        h.cancel(); // ... while we cancel
        gate_handle.get().unwrap();
        match h.get() {
            Ok(()) => outcomes[0] += 1,
            Err(RunError::Cancelled) => outcomes[1] += 1,
            Err(RunError::Shed { .. }) => outcomes[2] += 1,
            other => panic!("round {i}: shed/cancel race produced {other:?}"),
        }
    }
    assert_eq!(outcomes.iter().sum::<usize>(), ROUNDS);
    let s = settled(&victim);
    assert_eq!(
        s.shed as usize, outcomes[2],
        "ledger agrees with observed sheds"
    );
    assert_ledger_balances(&s);
    assert_eq!(s.completed, s.dispatched, "every dispatch finalized: {s:?}");
}

#[test]
fn shed_vs_finalize_straddle_never_hangs() {
    // Deadlines tuned to land right at the moment the dispatch slot
    // frees: either the run dispatches (and completes) or it sheds.
    // Both are legal; a hang or a third outcome is not.
    const ROUNDS: usize = 20;
    // Histograms off for the same reason as the cancel race above — and
    // doubly so here: the `i % 5 == 0` rounds submit an already-expired
    // (zero) deadline, which a warm estimate would always reject.
    let ex = ExecutorBuilder::new()
        .workers(2)
        .max_inflight(1)
        .latency_histograms(false)
        .build();
    let blocker = ex.tenant("blocker");
    let tenant = ex.tenant("straddle");
    let mut shed = 0u64;
    let mut ok = 0u64;
    for i in 0..ROUNDS {
        let gate = Arc::new(AtomicBool::new(false));
        let gate_tf = Taskflow::with_executor(ex.clone());
        gate_tf.emplace(spin_until_released(&gate));
        let gate_handle = gate_tf.run_on(&blocker).unwrap();
        if !eventually(|| blocker.stats().dispatched as usize == i + 1) {
            // Release the gate before panicking: a spinning gate task
            // would otherwise wedge executor teardown and hang the whole
            // test binary instead of reporting a failure.
            gate.store(true, Ordering::Release);
            panic!("round {i}: gate run never dispatched");
        }
        let tf = Taskflow::with_executor(ex.clone());
        tf.emplace(|| {});
        let h = tf
            .run_on_deadline(&tenant, Duration::from_micros(300 * (i as u64 % 5)))
            .unwrap();
        gate.store(true, Ordering::Release);
        gate_handle.get().unwrap();
        match h.get() {
            Ok(()) => ok += 1,
            Err(RunError::Shed { .. }) => shed += 1,
            other => panic!("round {i}: straddle produced {other:?}"),
        }
    }
    assert_eq!(ok + shed, ROUNDS as u64);
    let s = settled(&tenant);
    assert_eq!(s.shed, shed);
    assert_eq!(s.completed, s.dispatched, "admitted work finalized: {s:?}");
    assert_ledger_balances(&s);
}

#[test]
fn infeasible_deadline_is_rejected_at_admission() {
    let ex = ExecutorBuilder::new().workers(2).max_inflight(1).build();
    let tenant = ex.tenant_with(
        "est",
        TenantQos {
            max_queued: 16,
            ..TenantQos::default()
        },
    );
    // Warm the admission-phase histogram with >= 8 runs that each waited
    // ~15ms behind a parked dispatch slot.
    let gate = Arc::new(AtomicBool::new(false));
    let gate_tf = Taskflow::with_executor(ex.clone());
    gate_tf.emplace(spin_until_released(&gate));
    let gate_handle = gate_tf.run_on(&tenant).unwrap();
    assert!(eventually(|| tenant.stats().dispatched == 1));
    let mut warm = Vec::new();
    for _ in 0..8 {
        let tf = Taskflow::with_executor(ex.clone());
        tf.emplace(|| {});
        let h = tf.try_run_on(&tenant).expect("queue has space");
        warm.push((tf, h));
    }
    std::thread::sleep(Duration::from_millis(15));
    gate.store(true, Ordering::Release);
    gate_handle.get().unwrap();
    for (_, h) in &warm {
        h.get().unwrap();
    }
    settled(&tenant);
    // The live estimate (p50 >= ~15ms) now dooms a 1ms deadline outright.
    let tf = Taskflow::with_executor(ex.clone());
    tf.emplace(|| {});
    match tf.run_on_deadline(&tenant, Duration::from_millis(1)) {
        Err(AdmissionError::DeadlineInfeasible {
            tenant: t,
            deadline,
            estimated_wait,
        }) => {
            assert_eq!(t, "est");
            assert_eq!(deadline, Duration::from_millis(1));
            assert!(
                estimated_wait > deadline,
                "estimate must exceed the rejected deadline, got {estimated_wait:?}"
            );
        }
        other => panic!("expected DeadlineInfeasible, got {other:?}"),
    }
    assert_eq!(tenant.stats().rejected_infeasible, 1);
    // A generous deadline still admits and completes.
    tf.run_on_deadline(&tenant, Duration::from_secs(60))
        .unwrap()
        .get()
        .unwrap();
    let s = settled(&tenant);
    assert_ledger_balances(&s);
}

#[test]
fn run_on_timeout_bounds_the_admission_wait() {
    let ex = ExecutorBuilder::new().workers(2).max_inflight(1).build();
    let tenant = ex.tenant_with(
        "bounded",
        TenantQos {
            max_queued: 1,
            ..TenantQos::default()
        },
    );
    let gate = Arc::new(AtomicBool::new(false));
    let gate_tf = Taskflow::with_executor(ex.clone());
    gate_tf.emplace(spin_until_released(&gate));
    let gate_handle = gate_tf.run_on(&tenant).unwrap();
    assert!(eventually(|| tenant.stats().dispatched == 1));
    let filler_tf = Taskflow::with_executor(ex.clone());
    filler_tf.emplace(|| {});
    let filler = filler_tf.try_run_on(&tenant).expect("queue has space");
    // Queue full, slot parked: the bounded wait must expire, not hang.
    let tf = Taskflow::with_executor(ex.clone());
    tf.emplace(|| {});
    let t0 = std::time::Instant::now();
    match tf.run_on_timeout(&tenant, Duration::from_millis(100)) {
        Err(AdmissionError::Saturated {
            tenant: t,
            capacity,
        }) => {
            assert_eq!(t, "bounded");
            assert_eq!(capacity, 1);
        }
        other => panic!("expected Saturated after timeout, got {other:?}"),
    }
    let waited = t0.elapsed();
    assert!(
        waited >= Duration::from_millis(50),
        "gave up before the timeout: {waited:?}"
    );
    assert!(
        waited < Duration::from_secs(10),
        "timeout must bound the wait"
    );
    assert_eq!(tenant.stats().rejected_saturated, 1);
    gate.store(true, Ordering::Release);
    gate_handle.get().unwrap();
    filler.get().unwrap();
    assert_ledger_balances(&settled(&tenant));
}

/// Submits one always-panicking run through the tenant and asserts the
/// handle reports the panic.
fn panic_run(ex: &Arc<Executor>, tenant: &Tenant) {
    let tf = Taskflow::with_executor(Arc::clone(ex));
    tf.emplace(|| panic!("poisoned"));
    let h = tf.run_on(tenant).unwrap();
    h.get().expect_err("panic must surface");
}

#[test]
fn breaker_opens_after_consecutive_failures_and_fast_rejects() {
    let ex = ExecutorBuilder::new().workers(2).build();
    let tenant = ex.tenant_with(
        "brk",
        TenantQos {
            breaker: Some(BreakerSpec {
                failures: 3,
                open_for: Duration::from_secs(30),
            }),
            ..TenantQos::default()
        },
    );
    assert_eq!(tenant.breaker_state(), BreakerState::Closed);
    for _ in 0..3 {
        panic_run(&ex, &tenant);
    }
    // The third finalize trips the breaker (finalization trails the
    // handle resolving by a beat).
    assert!(eventually(|| tenant.breaker_state() == BreakerState::Open));
    let tf = Taskflow::with_executor(ex.clone());
    tf.emplace(|| {});
    match tf.try_run_on(&tenant) {
        Err(AdmissionError::BreakerOpen {
            tenant: t,
            retry_after,
        }) => {
            assert_eq!(t, "brk");
            assert!(retry_after <= Duration::from_secs(30));
        }
        other => panic!("open breaker must fast-reject, got {other:?}"),
    }
    let s = settled(&tenant);
    assert_eq!(s.rejected_breaker, 1);
    assert_eq!(s.consecutive_failures, 3);
    assert_eq!(s.breaker_state, 1, "stats gauge reports the open word");
    assert_ledger_balances(&s);
}

#[test]
fn breaker_half_open_probe_recovers_the_tenant() {
    let ex = ExecutorBuilder::new().workers(2).build();
    let tenant = ex.tenant_with(
        "probe",
        TenantQos {
            breaker: Some(BreakerSpec {
                failures: 2,
                open_for: Duration::from_millis(40),
            }),
            ..TenantQos::default()
        },
    );
    for _ in 0..2 {
        panic_run(&ex, &tenant);
    }
    assert!(eventually(|| tenant.breaker_state() == BreakerState::Open));
    std::thread::sleep(Duration::from_millis(60));
    // First submission past the open window is admitted as the probe; it
    // parks on a gate so we can observe half-open single-admission.
    let gate = Arc::new(AtomicBool::new(false));
    let probe_tf = Taskflow::with_executor(ex.clone());
    probe_tf.emplace(spin_until_released(&gate));
    let probe = probe_tf.run_on(&tenant).expect("probe admitted");
    assert_eq!(tenant.breaker_state(), BreakerState::HalfOpen);
    // While the probe is in flight, everyone else is still turned away.
    let tf = Taskflow::with_executor(ex.clone());
    tf.emplace(|| {});
    match tf.try_run_on(&tenant) {
        Err(AdmissionError::BreakerOpen { retry_after, .. }) => {
            assert_eq!(retry_after, Duration::from_millis(40));
        }
        other => panic!("half-open must admit exactly one probe, got {other:?}"),
    }
    gate.store(true, Ordering::Release);
    probe.get().unwrap();
    // Probe success closes the breaker; the tenant serves normally again.
    assert!(eventually(|| tenant.breaker_state() == BreakerState::Closed));
    tf.run_on(&tenant).unwrap().get().unwrap();
    let s = settled(&tenant);
    assert_eq!(s.consecutive_failures, 0, "streak reset on success");
    assert_ledger_balances(&s);
}

#[test]
fn failed_probe_reopens_the_breaker() {
    let ex = ExecutorBuilder::new().workers(2).build();
    let tenant = ex.tenant_with(
        "relapse",
        TenantQos {
            breaker: Some(BreakerSpec {
                failures: 2,
                open_for: Duration::from_millis(40),
            }),
            ..TenantQos::default()
        },
    );
    for _ in 0..2 {
        panic_run(&ex, &tenant);
    }
    assert!(eventually(|| tenant.breaker_state() == BreakerState::Open));
    std::thread::sleep(Duration::from_millis(60));
    // The probe itself fails: straight back to open, window re-armed.
    panic_run(&ex, &tenant);
    assert!(eventually(|| tenant.breaker_state() == BreakerState::Open));
    let tf = Taskflow::with_executor(ex.clone());
    tf.emplace(|| {});
    match tf.try_run_on(&tenant) {
        Err(AdmissionError::BreakerOpen { .. }) => {}
        other => panic!("re-opened breaker must reject, got {other:?}"),
    }
    assert_ledger_balances(&settled(&tenant));
}

#[test]
fn retry_budget_degrades_retries_to_failures() {
    let ex = ExecutorBuilder::new().workers(2).build();
    let tenant = ex.tenant_with(
        "thrifty",
        TenantQos {
            retry_budget: Some(RetryBudget {
                floor: 1,
                per_mille: 0,
            }),
            ..TenantQos::default()
        },
    );
    // Budget of one: the first doomed run gets exactly one retry ...
    let attempts = Arc::new(AtomicUsize::new(0));
    let tf = Taskflow::with_executor(ex.clone());
    let a = Arc::clone(&attempts);
    tf.emplace(move || {
        a.fetch_add(1, Ordering::SeqCst);
        panic!("doomed");
    })
    .retry(3);
    tf.run_on(&tenant)
        .unwrap()
        .get()
        .expect_err("doomed run fails");
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        2,
        "one attempt plus the single budgeted retry"
    );
    assert!(eventually(|| tenant.stats().retry_budget_exhausted >= 1));
    // ... and the second gets none at all: retries degrade to failures.
    let attempts2 = Arc::new(AtomicUsize::new(0));
    let tf2 = Taskflow::with_executor(ex.clone());
    let a = Arc::clone(&attempts2);
    tf2.emplace(move || {
        a.fetch_add(1, Ordering::SeqCst);
        panic!("doomed again");
    })
    .retry(3);
    tf2.run_on(&tenant).unwrap().get().expect_err("still fails");
    assert_eq!(
        attempts2.load(Ordering::SeqCst),
        1,
        "budget spent: no retries"
    );
    let s = settled(&tenant);
    assert_eq!(s.retry_budget_exhausted, 2);
    assert_ledger_balances(&s);
}

#[test]
fn chaos_scoped_to_tenant_spares_others() {
    // `ChaosSpec::for_tenant` gates *injection*, not the plan: the same
    // spec wraps tasks everywhere, but only runs executing under the
    // scoped tenant observe faults.
    const SEED: u64 = 7;
    let ex = ExecutorBuilder::new().workers(2).build();
    let bad = ex.tenant("bad");
    let good = ex.tenant("good");
    let spec = ChaosSpec::new(SEED).panic_permille(1000).for_tenant(&bad);
    assert_eq!(
        spec.fault(0, 0),
        Fault::Panic,
        "the plan itself is unscoped"
    );
    // Scoped tenant: the seeded panic fires.
    let tf = Taskflow::with_executor(ex.clone());
    tf.emplace(spec.wrap(0, || {}));
    let err = tf
        .run_on(&bad)
        .unwrap()
        .get()
        .expect_err("scoped fault fires");
    assert!(format!("{err}").contains("chaos: injected panic"));
    // Other tenant, same wrapped plan: untouched.
    let tf = Taskflow::with_executor(ex.clone());
    tf.emplace(spec.wrap(0, || {}));
    tf.run_on(&good).unwrap().get().unwrap();
    // Untenanted run: also untouched.
    let tf = Taskflow::with_executor(ex.clone());
    tf.emplace(spec.wrap(0, || {}));
    tf.run().get().unwrap();
}
