//! Failure-injection tests: panics in every flavour of task must be
//! caught, attributed, and must never wedge the executor or leak a
//! topology.

use rustflow::{Executor, Taskflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn panic_in_dynamic_task_closure() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    tf.emplace_subflow(|_sf| panic!("dynamic boom")).name("dyn");
    let err = tf.try_wait_for_all().expect_err("panic not reported");
    let panic = err.as_panic().expect("panic, not a graph error");
    assert_eq!(panic.task, "dyn");
    assert!(panic.message.contains("dynamic boom"));
    // Executor still fully functional afterwards.
    let counter = Arc::new(AtomicUsize::new(0));
    let tf2 = Taskflow::with_executor(ex);
    let c = Arc::clone(&counter);
    tf2.emplace(move || {
        c.fetch_add(1, Ordering::SeqCst);
    });
    tf2.wait_for_all();
    assert_eq!(counter.load(Ordering::SeqCst), 1);
}

#[test]
fn panic_in_subflow_child() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let siblings = Arc::new(AtomicUsize::new(0));
    let s = Arc::clone(&siblings);
    tf.emplace_subflow(move |sf| {
        sf.emplace(|| panic!("child boom")).name("bad_child");
        let s = Arc::clone(&s);
        sf.emplace(move || {
            s.fetch_add(1, Ordering::SeqCst);
        });
    });
    let err = tf.try_wait_for_all().expect_err("panic not reported");
    assert_eq!(err.as_panic().expect("panic").task, "bad_child");
    // The sibling child still ran; the topology completed.
    assert_eq!(siblings.load(Ordering::SeqCst), 1);
}

#[test]
fn panic_before_spawn_still_spawns_nothing_but_completes() {
    // If the dynamic closure panics before emplacing anything, the node
    // completes as an empty subflow.
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let after = Arc::new(AtomicUsize::new(0));
    let parent = tf.emplace_subflow(|_sf| panic!("early"));
    let a = Arc::clone(&after);
    let next = tf.emplace(move || {
        a.store(1, Ordering::SeqCst);
    });
    parent.precede(next);
    assert!(tf.try_wait_for_all().is_err());
    assert_eq!(after.load(Ordering::SeqCst), 1);
}

#[test]
fn panic_in_partially_built_subflow_runs_built_children() {
    // Children emplaced before the panic are still spawned (the paper's
    // C++ semantics would terminate; we keep the graph live and report).
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    tf.emplace_subflow(move |sf| {
        let r = Arc::clone(&r);
        sf.emplace(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        panic!("mid-build boom");
    });
    assert!(tf.try_wait_for_all().is_err());
    assert_eq!(ran.load(Ordering::SeqCst), 1);
}

#[test]
fn first_panic_wins_under_many() {
    let ex = Executor::new(1); // deterministic order on one worker
    let tf = Taskflow::with_executor(ex);
    let a = tf.emplace(|| panic!("first")).name("t_first");
    let b = tf.emplace(|| panic!("second")).name("t_second");
    a.precede(b);
    let err = tf.try_wait_for_all().expect_err("no panic reported");
    let panic = err.as_panic().expect("panic, not a graph error");
    assert_eq!(panic.task, "t_first");
    assert!(panic.message.contains("first"));
}

#[test]
fn panics_across_multiple_topologies_are_per_topology() {
    let ex = Executor::new(2);
    let tf = Taskflow::with_executor(ex);
    tf.emplace(|| panic!("topo1"));
    let f1 = tf.dispatch();
    tf.emplace(|| {});
    let f2 = tf.dispatch();
    assert!(f1.get().is_err());
    assert!(
        f2.get().is_ok(),
        "clean topology polluted by another's panic"
    );
}

#[test]
fn executor_survives_panic_storm() {
    let ex = Executor::new(4);
    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for i in 0..500 {
        if i % 3 == 0 {
            tf.emplace(move || panic!("storm {i}"));
        } else {
            tf.emplace(|| {});
        }
    }
    assert!(tf.try_wait_for_all().is_err());
    // Everything still works.
    let counter = Arc::new(AtomicUsize::new(0));
    let tf2 = Taskflow::with_executor(ex);
    for _ in 0..100 {
        let c = Arc::clone(&counter);
        tf2.emplace(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
    }
    tf2.wait_for_all();
    assert_eq!(counter.load(Ordering::SeqCst), 100);
}
