//! Shared harness utilities: CLI flags, timing, and result output.
//!
//! Every `table*`/`fig*` binary accepts:
//!
//! * `--full` — paper-scale parameters (hours on this container); the
//!   default is a scaled-down configuration with the same shape;
//! * `--out <dir>` — where CSV results land (default `results/`);
//! * `--part <name>` — sub-experiment selector where a figure has several
//!   panels;
//! * `--threads a,b,c` — override the thread sweep.

use std::path::PathBuf;
use std::time::Instant;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Run at paper scale.
    pub full: bool,
    /// Panel selector.
    pub part: Option<String>,
    /// Output directory for CSV files.
    pub out: PathBuf,
    /// Thread sweep override.
    pub threads: Option<Vec<usize>>,
    /// Repetitions per measurement (median is reported).
    pub reps: usize,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Cli {
        let mut cli = Cli {
            full: false,
            part: None,
            out: PathBuf::from("results"),
            threads: None,
            reps: 3,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => cli.full = true,
                "--part" => cli.part = args.next(),
                "--out" => cli.out = PathBuf::from(args.next().expect("--out needs a directory")),
                "--threads" => {
                    let list = args.next().expect("--threads needs a,b,c");
                    cli.threads = Some(
                        list.split(',')
                            .map(|s| s.trim().parse().expect("bad thread count"))
                            .collect(),
                    );
                }
                "--reps" => {
                    cli.reps = args
                        .next()
                        .expect("--reps needs a number")
                        .parse()
                        .expect("bad reps");
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --full | --part <name> | --out <dir> | --threads a,b,c | --reps n"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        cli
    }

    /// `true` when `--part` is absent or equals `name`.
    pub fn wants_part(&self, name: &str) -> bool {
        self.part.as_deref().is_none_or(|p| p == name)
    }

    /// The thread sweep: override, or the given default.
    pub fn thread_sweep(&self, default: &[usize]) -> Vec<usize> {
        self.threads.clone().unwrap_or_else(|| default.to_vec())
    }
}

/// Milliseconds elapsed running `f` once.
pub fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Median of `reps` runs of `f` (ms).
pub fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1)).map(|_| time_ms(&mut f)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// A CSV + console sink for one experiment's rows.
pub struct Report {
    path: PathBuf,
    rows: Vec<Vec<String>>,
    header: Vec<String>,
}

impl Report {
    /// Creates a report writing to `<out>/<name>.csv`.
    pub fn new(cli: &Cli, name: &str, header: &[&str]) -> Report {
        std::fs::create_dir_all(&cli.out).expect("cannot create output directory");
        Report {
            path: cli.out.join(format!("{name}.csv")),
            rows: Vec::new(),
            header: header.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Appends one row (printed to the console immediately).
    pub fn row(&mut self, cells: &[String]) {
        println!("  {}", cells.join("  \t"));
        self.rows.push(cells.to_vec());
    }

    /// Convenience: formats mixed cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Prints the header line to the console.
    pub fn print_header(&self) {
        println!("  {}", self.header.join("  \t"));
    }

    /// Writes the CSV file.
    pub fn save(&self) {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        std::fs::write(&self.path, out).expect("cannot write CSV");
        println!("  -> {}", self.path.display());
    }
}

/// Formats a milliseconds value compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}
