//! A strict parser for the Prometheus text exposition format (the
//! dependency-free sibling of [`crate::json`]), used by the
//! `introspect` gate to validate live `/metrics` scrapes.
//!
//! "Strict" means a torn or interleaved exposition is an **error**, not
//! a shrug: families must be contiguous (HELP, TYPE, then every sample
//! of that family before the next family starts), every sample must
//! belong to the most recent family (allowing the `_bucket`/`_sum`/
//! `_count` suffixes of histograms and summaries), label syntax must be
//! well-formed, values must parse, and no name+labels pair may repeat.
//! A scrape raced against a concurrent writer that produced overlapping
//! families fails here — which is exactly what the gate wants to catch.

/// One parsed sample: metric name (with suffix), label pairs in source
/// order, and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name, e.g. `rustflow_task_duration_us_bucket`.
    pub name: String,
    /// Label pairs in source order, unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One metric family: its metadata plus every sample that followed it.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name (without histogram suffixes).
    pub name: String,
    /// HELP text ("" if the family had no HELP line).
    pub help: String,
    /// TYPE ("untyped" if the family had no TYPE line).
    pub kind: String,
    /// Samples in source order.
    pub samples: Vec<Sample>,
}

/// A fully parsed, validated exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Families in source order.
    pub families: Vec<Family>,
}

impl Exposition {
    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of every sample value in family `name` (0.0 if absent) —
    /// collapses per-worker labels into one number.
    pub fn total(&self, name: &str) -> f64 {
        self.family(name)
            .map(|f| f.samples.iter().map(|s| s.value).sum())
            .unwrap_or(0.0)
    }
}

/// Parses and validates `text`. Any format violation — including the
/// torn-family interleavings a racy renderer could produce — is an
/// `Err` naming the offending line.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut keys: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (ln, line) in text.lines().enumerate() {
        let err = |msg: &str| format!("line {}: {msg}: {line}", ln + 1);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            let (kind, rest) = rest
                .split_once(' ')
                .ok_or_else(|| err("bare comment in exposition"))?;
            if kind != "HELP" && kind != "TYPE" {
                return Err(err("comment is neither HELP nor TYPE"));
            }
            let (name, text) = match rest.split_once(' ') {
                Some((n, t)) => (n, t),
                None => (rest, ""),
            };
            if !valid_name(name) {
                return Err(err("invalid metric name"));
            }
            let open = out.families.last_mut().filter(|f| f.name == name);
            match open {
                Some(f) => {
                    // Second metadata line for the family we're already in.
                    if kind == "HELP" {
                        if !f.help.is_empty() {
                            return Err(err("duplicate HELP"));
                        }
                        f.help = text.to_string();
                    } else {
                        if f.kind != "untyped" {
                            return Err(err("duplicate TYPE"));
                        }
                        if !f.samples.is_empty() {
                            return Err(err("TYPE after samples"));
                        }
                        f.kind = text.trim().to_string();
                    }
                }
                None => {
                    if !seen.insert(name.to_string()) {
                        return Err(err("family reopened (torn exposition)"));
                    }
                    out.families.push(Family {
                        name: name.to_string(),
                        help: if kind == "HELP" {
                            text.to_string()
                        } else {
                            String::new()
                        },
                        kind: if kind == "TYPE" {
                            text.trim().to_string()
                        } else {
                            "untyped".to_string()
                        },
                        samples: Vec::new(),
                    });
                }
            }
            continue;
        }
        // Sample line.
        let sample = parse_sample(line).map_err(|m| err(&m))?;
        let family = out
            .families
            .last_mut()
            .ok_or_else(|| err("sample before any HELP/TYPE"))?;
        let base_ok = sample.name == family.name
            || (matches!(family.kind.as_str(), "histogram" | "summary")
                && ["_bucket", "_sum", "_count"]
                    .iter()
                    .any(|suf| sample.name.strip_suffix(suf) == Some(family.name.as_str())));
        if !base_ok {
            return Err(err(&format!(
                "sample outside current family {} (torn exposition)",
                family.name
            )));
        }
        let key = format!("{}|{:?}", sample.name, sample.labels);
        if !keys.insert(key) {
            return Err(err("duplicate sample (name + labels)"));
        }
        family.samples.push(sample);
    }
    Ok(out)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "sample without value".to_string())?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("unparseable value {v:?}"))?,
    };
    let (name, labels) = match head.split_once('{') {
        None => (head.trim_end(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .trim_end()
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (name, parse_labels(body)?)
        }
    };
    if !valid_name(name) {
        return Err(format!("invalid sample name {name:?}"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let b = body.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        while i < b.len() && b[i] != b'=' {
            i += 1;
        }
        let key = body[start..i].trim();
        if key.is_empty() || i >= b.len() {
            return Err("label without '='".to_string());
        }
        i += 1; // '='
        if b.get(i) != Some(&b'"') {
            return Err("label value not quoted".to_string());
        }
        i += 1;
        let mut value = String::new();
        loop {
            match b.get(i) {
                None => return Err("unterminated label value".to_string()),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    match b.get(i + 1) {
                        Some(b'"') => value.push('"'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad escape in label value".to_string()),
                    }
                    i += 2;
                }
                Some(&c) => {
                    value.push(c as char);
                    i += 1;
                }
            }
        }
        labels.push((key.to_string(), value));
        match b.get(i) {
            None => break,
            Some(b',') => i += 1,
            _ => return Err("expected ',' or end after label".to_string()),
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_histograms() {
        let text = "\
# HELP rf_tasks_total Tasks.\n\
# TYPE rf_tasks_total counter\n\
rf_tasks_total{worker=\"0\"} 10\n\
rf_tasks_total{worker=\"1\"} 32\n\
# HELP rf_depth Queue depth.\n\
# TYPE rf_depth gauge\n\
rf_depth 3\n\
# HELP rf_dur Durations.\n\
# TYPE rf_dur histogram\n\
rf_dur_bucket{le=\"1\"} 1\n\
rf_dur_bucket{le=\"+Inf\"} 4\n\
rf_dur_sum 9\n\
rf_dur_count 4\n";
        let exp = parse(text).expect("valid exposition");
        assert_eq!(exp.families.len(), 3);
        assert_eq!(exp.total("rf_tasks_total"), 42.0);
        let f = exp.family("rf_tasks_total").unwrap();
        assert_eq!(f.kind, "counter");
        assert_eq!(f.samples[1].label("worker"), Some("1"));
        let h = exp.family("rf_dur").unwrap();
        assert_eq!(h.samples.len(), 4);
        assert_eq!(h.samples[1].label("le"), Some("+Inf"));
    }

    #[test]
    fn rejects_torn_families() {
        // Family A reopened after B started: the interleaving a racy
        // renderer would produce.
        let torn = "\
# TYPE a counter\n\
a 1\n\
# TYPE b counter\n\
b 2\n\
# TYPE a counter\n\
a{worker=\"1\"} 3\n";
        assert!(parse(torn).unwrap_err().contains("reopened"));
        // A stray sample from another family inside a block.
        let stray = "# TYPE a counter\na 1\nb 2\n";
        assert!(parse(stray).unwrap_err().contains("outside current family"));
        // Histogram suffixes only count for histogram/summary types.
        let fake = "# TYPE a counter\na_sum 1\n";
        assert!(parse(fake).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("a 1\n").is_err(), "sample before metadata");
        assert!(parse("# TYPE a counter\na{w=\"0\" 1\n").is_err());
        assert!(parse("# TYPE a counter\na nope\n").is_err());
        assert!(parse("# TYPE a counter\na 1\na 2\n").is_err(), "duplicate");
        assert!(parse("# NOTE a hi\n").is_err());
    }

    #[test]
    fn labels_unescape() {
        let text = "# TYPE a counter\na{task=\"say \\\"hi\\\"\\n\"} 1\n";
        let exp = parse(text).unwrap();
        assert_eq!(
            exp.families[0].samples[0].label("task"),
            Some("say \"hi\"\n")
        );
    }
}
