//! Wavefront in the TBB-FlowGraph-style model (the paper's TBB column).
//!
//! Note the extra machinery a flow-graph user must write: building
//! `continue_node`s, wiring `make_edge`s, explicitly activating the
//! source with `try_put`, and finally `wait_for_all` on the graph object
//! (Listing 5 of the paper shows the same shape in C++).

use std::sync::Arc;
use tf_baselines::{FlowGraphBuilder, Pool};
use tf_workloads::kernels::{nominal_work, Sink};

/// Runs a `dim`×`dim` block wavefront; returns the checksum.
pub fn run(dim: usize, iters: u32, pool: &Pool) -> u64 {
    let sink = Arc::new(Sink::new());
    let mut builder = FlowGraphBuilder::new();
    let mut nodes = Vec::with_capacity(dim * dim);
    for id in 0..dim * dim {
        let sink = Arc::clone(&sink);
        let node = builder.continue_node(move |_msg| {
            sink.consume(nominal_work(id as u64 + 1, iters));
        });
        nodes.push(node);
    }
    for r in 0..dim {
        for c in 0..dim {
            let id = r * dim + c;
            if c + 1 < dim {
                builder.make_edge(nodes[id], nodes[id + 1]);
            }
            if r + 1 < dim {
                builder.make_edge(nodes[id], nodes[id + dim]);
            }
        }
    }
    let graph = builder.build();
    // The top-left block is the only source; it must be fed explicitly.
    graph.try_put(nodes[0], pool);
    graph.wait_for_all();
    sink.value()
}
