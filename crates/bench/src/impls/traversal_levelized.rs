//! Graph traversal in the OpenMP-style levelized model (Table I's OpenMP
//! column).
//!
//! The static-annotation discipline forces the programmer to (1) compute
//! a topological level structure by hand before any task can be declared,
//! and (2) express execution as barrier-separated levels. This mirrors
//! "the existing OpenMP-based circuit analysis methods and their
//! limitations" the paper's graph-traversal benchmark mimics — in C++
//! this file's body is an exhaustive list of `depend` clauses per
//! in/out-degree combination (213 LOC, CC 28 in the paper).

use std::sync::Arc;
use tf_baselines::Pool;
use tf_workloads::kernels::{nominal_work, Sink};
use tf_workloads::randdag::{generate_edges, RandDagSpec};

/// Levelizes a random graph by hand and traverses it level by level.
pub fn run(spec: RandDagSpec, pool: &Pool) -> u64 {
    let edges = generate_edges(spec);
    // Manual data structures the static model forces on the user:
    let mut in_degree = vec![0u32; spec.nodes];
    let mut successors: Vec<Vec<u32>> = vec![Vec::new(); spec.nodes];
    for &(u, v) in &edges {
        successors[u as usize].push(v);
        in_degree[v as usize] += 1;
    }
    // Manual Kahn levelization.
    let mut remaining = in_degree.clone();
    let mut frontier: Vec<u32> = (0..spec.nodes as u32)
        .filter(|&v| remaining[v as usize] == 0)
        .collect();
    let mut levels: Vec<Vec<u32>> = Vec::new();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &s in &successors[v as usize] {
                remaining[s as usize] -= 1;
                if remaining[s as usize] == 0 {
                    next.push(s);
                }
            }
        }
        levels.push(std::mem::replace(&mut frontier, next));
    }
    // Barrier-separated execution of each level.
    let sink = Arc::new(Sink::new());
    for level in levels {
        let count = level.len();
        if count == 0 {
            continue;
        }
        let sink = Arc::clone(&sink);
        let level = Arc::new(level);
        let iters = spec.work_iters;
        let body = Arc::new(move |i: usize| {
            sink.consume(nominal_work(level[i] as u64 + 1, iters));
        });
        let chunk = (count / (4 * pool.num_workers())).max(1);
        pool.parallel_for(count, chunk, body);
    }
    sink.value()
}
