//! DNN training, sequential baseline (Table III's Sequential column).

use tf_dnn::pipeline::TrainSpec;
use tf_dnn::{Dataset, Mlp};

/// Trains an MLP with plain mini-batch SGD.
pub fn train(dataset: &Dataset, arch: &[usize], spec: TrainSpec, seed: u64) -> (Mlp, Vec<f64>) {
    let mut net = Mlp::new(arch, seed);
    let batch = spec.batch.max(1);
    let num_batches = dataset.len() / batch;
    let mut losses = Vec::with_capacity(spec.epochs * num_batches);
    for epoch in 0..spec.epochs {
        let shuffled = dataset.shuffled(spec.shuffle_seed(epoch));
        for j in 0..num_batches {
            let (images, labels) = shuffled.batch(j * batch, (j + 1) * batch);
            losses.push(net.train_batch(&images, labels, spec.lr));
        }
    }
    (net, losses)
}
