//! Graph traversal in the TBB-FlowGraph-style model (Table I's TBB
//! column). The user must track in-degrees to find the sources and
//! `try_put` each one explicitly.

use std::sync::Arc;
use tf_baselines::{FlowGraphBuilder, Pool};
use tf_workloads::kernels::{nominal_work, Sink};
use tf_workloads::randdag::{generate_edges, RandDagSpec};

/// Casts a random graph to a flow graph and traverses it.
pub fn run(spec: RandDagSpec, pool: &Pool) -> u64 {
    let sink = Arc::new(Sink::new());
    let mut builder = FlowGraphBuilder::new();
    let mut nodes = Vec::with_capacity(spec.nodes);
    for v in 0..spec.nodes {
        let sink = Arc::clone(&sink);
        let iters = spec.work_iters;
        let node = builder.continue_node(move |_msg| {
            sink.consume(nominal_work(v as u64 + 1, iters));
        });
        nodes.push(node);
    }
    let mut in_degree = vec![0usize; spec.nodes];
    for (u, v) in generate_edges(spec) {
        builder.make_edge(nodes[u as usize], nodes[v as usize]);
        in_degree[v as usize] += 1;
    }
    let graph = builder.build();
    // Every zero-in-degree node is a source the user must activate.
    for v in 0..spec.nodes {
        if in_degree[v] == 0 {
            graph.try_put(nodes[v], pool);
        }
    }
    graph.wait_for_all();
    sink.value()
}
