//! Wavefront in the OpenMP-style levelized model (the paper's OpenMP
//! column).
//!
//! With static task annotations, the programmer must derive a valid
//! schedule — here the anti-diagonal structure — by hand, and express the
//! computation as one barrier-synchronized parallel region per level;
//! this is the burden the paper's Listing 4 illustrates with explicit
//! `depend` clauses.

use std::sync::Arc;
use tf_baselines::Pool;
use tf_workloads::kernels::{nominal_work, Sink};

/// Runs a `dim`×`dim` block wavefront; returns the checksum.
pub fn run(dim: usize, iters: u32, pool: &Pool) -> u64 {
    let sink = Arc::new(Sink::new());
    // The programmer must know that blocks on one anti-diagonal are
    // independent, and enumerate the diagonals in order.
    for diag in 0..(2 * dim - 1) {
        let r_lo = diag.saturating_sub(dim - 1);
        let r_hi = diag.min(dim - 1);
        let count = r_hi - r_lo + 1;
        let sink = Arc::clone(&sink);
        let body = Arc::new(move |i: usize| {
            let r = r_lo + i;
            let c = diag - r;
            let id = r * dim + c;
            sink.consume(nominal_work(id as u64 + 1, iters));
        });
        let chunk = (count / (4 * pool.num_workers())).max(1);
        pool.parallel_for(count, chunk, body);
        // Implicit barrier at the end of every diagonal.
    }
    sink.value()
}
