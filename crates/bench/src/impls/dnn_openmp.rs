//! DNN training in the OpenMP-`task depend` model (Table III's OpenMP
//! column).
//!
//! "In order to ensure proper dependencies between tasks, we need to
//! hard-code an order of task dependency clauses that is only specific to
//! a DNN architecture" (§IV-C). Exactly that happens here: the depend
//! clauses per layer cannot be generated in a loop of pragmas, so the
//! 3-layer and 5-layer networks each get a hand-unrolled submission body
//! with explicit per-layer address lists — and getting the clause order
//! wrong deadlocks or corrupts training, which is where the paper's 9
//! development hours went.

use parking_lot::Mutex;
use std::sync::Arc;
use tf_baselines::{Pool, TaskDepRegion};
use tf_dnn::net::{activate_inplace, backward_layer_math, output_delta, LayerGrad};
use tf_dnn::pipeline::TrainSpec;
use tf_dnn::{Dataset, Matrix, Mlp};

// Dependence addresses (one per shared buffer, as OpenMP depend lists
// name variables).
const ADDR_DELTA: u64 = 1;
const ADDR_ACTS: u64 = 2;
const fn addr_slot(s: usize) -> u64 {
    1000 + s as u64
}
const fn addr_w(i: usize) -> u64 {
    2000 + i as u64
}
const fn addr_grad(i: usize) -> u64 {
    3000 + i as u64
}

struct Shared {
    weights: Vec<Mutex<Matrix>>,
    biases: Vec<Mutex<Vec<f32>>>,
    acts: Mutex<Vec<Matrix>>,
    delta: Mutex<Matrix>,
    grads: Vec<Mutex<Option<LayerGrad>>>,
    storages: Vec<Mutex<Option<Dataset>>>,
    losses: Mutex<Vec<f64>>,
}

impl Shared {
    fn forward(&self, slot: usize, lo: usize, hi: usize, layers: usize) {
        let (images, labels) = {
            let guard = self.storages[slot].lock();
            let ds = guard.as_ref().expect("storage empty");
            let (images, labels) = ds.batch(lo, hi);
            (images, labels.to_vec())
        };
        let mut acts = vec![images];
        for i in 0..layers {
            let mut z = acts[i].matmul_bt(&self.weights[i].lock());
            z.add_row_vector(&self.biases[i].lock());
            activate_inplace(&mut z, i + 1 == layers);
            acts.push(z);
        }
        let (delta, loss) = output_delta(acts.last().expect("nonempty"), &labels);
        *self.delta.lock() = delta;
        *self.acts.lock() = acts;
        self.losses.lock().push(loss);
    }

    fn gradient(&self, i: usize) {
        let delta = self.delta.lock().clone();
        let a_prev = self.acts.lock()[i].clone();
        let (grad, dprev) = if i > 0 {
            backward_layer_math(Some(&self.weights[i].lock()), &delta, &a_prev)
        } else {
            backward_layer_math(None, &delta, &a_prev)
        };
        *self.grads[i].lock() = Some(grad);
        if let Some(d) = dprev {
            *self.delta.lock() = d;
        }
    }

    fn update(&self, i: usize, lr: f32) {
        let grad = self.grads[i].lock().take().expect("gradient missing");
        self.weights[i].lock().add_scaled(&grad.dw, -lr);
        for (b, &g) in self.biases[i].lock().iter_mut().zip(&grad.db) {
            *b -= lr * g;
        }
    }
}

/// Trains an MLP with OpenMP-style dependent tasks; only the paper's two
/// architectures are supported because each needs its own hand-coded
/// clause order.
pub fn train(
    dataset: Arc<Dataset>,
    arch: &[usize],
    spec: TrainSpec,
    seed: u64,
    pool: &Pool,
) -> (Mlp, Vec<f64>) {
    match arch.len() - 1 {
        3 => train_3layer(dataset, arch, spec, seed, pool),
        5 => train_5layer(dataset, arch, spec, seed, pool),
        n => panic!("no hand-coded clause order for a {n}-layer network"),
    }
}

fn make_shared(init: &Mlp, spec: &TrainSpec) -> Arc<Shared> {
    Arc::new(Shared {
        weights: init.weights.iter().cloned().map(Mutex::new).collect(),
        biases: init.biases.iter().cloned().map(Mutex::new).collect(),
        acts: Mutex::new(Vec::new()),
        delta: Mutex::new(Matrix::zeros(0, 0)),
        grads: (0..init.num_layers()).map(|_| Mutex::new(None)).collect(),
        storages: (0..spec.storages.max(1))
            .map(|_| Mutex::new(None))
            .collect(),
        losses: Mutex::new(Vec::new()),
    })
}

fn extract(shared: &Shared, arch: &[usize]) -> (Mlp, Vec<f64>) {
    (
        Mlp {
            sizes: arch.to_vec(),
            weights: shared.weights.iter().map(|w| w.lock().clone()).collect(),
            biases: shared.biases.iter().map(|b| b.lock().clone()).collect(),
        },
        shared.losses.lock().clone(),
    )
}

macro_rules! shuffle_task {
    ($region:expr, $shared:expr, $dataset:expr, $spec:expr, $e:expr, $slot:expr) => {{
        let shared = Arc::clone(&$shared);
        let dataset = Arc::clone(&$dataset);
        let sd = $spec.shuffle_seed($e);
        let slot = $slot;
        // depend(out: slot) — the anti-dependence on the previous
        // epoch's readers is what delays reuse of the storage.
        $region.task(&[], &[addr_slot(slot)], move || {
            *shared.storages[slot].lock() = Some(dataset.shuffled(sd));
        });
    }};
}

macro_rules! grad_update_tasks {
    ($region:expr, $shared:expr, $lr:expr, $i:expr) => {{
        let shared = Arc::clone(&$shared);
        // depend(in: acts, W_i) depend(inout: delta) depend(out: grad_i)
        $region.task(
            &[ADDR_ACTS, addr_w($i), ADDR_DELTA],
            &[ADDR_DELTA, addr_grad($i)],
            move || shared.gradient($i),
        );
        let shared = Arc::clone(&$shared);
        let lr = $lr;
        // depend(in: grad_i) depend(out: W_i)
        $region.task(&[addr_grad($i)], &[addr_w($i)], move || {
            shared.update($i, lr)
        });
    }};
}

fn train_3layer(
    dataset: Arc<Dataset>,
    arch: &[usize],
    spec: TrainSpec,
    seed: u64,
    pool: &Pool,
) -> (Mlp, Vec<f64>) {
    let init = Mlp::new(arch, seed);
    let shared = make_shared(&init, &spec);
    let batch = spec.batch.max(1);
    let num_batches = dataset.len() / batch;
    let slots = spec.storages.max(1);
    let region = TaskDepRegion::new(pool);
    for e in 0..spec.epochs {
        let slot = e % slots;
        shuffle_task!(region, shared, dataset, spec, e, slot);
        for j in 0..num_batches {
            let sh = Arc::clone(&shared);
            let lo = j * batch;
            // depend(in: slot, W0, W1, W2) depend(out: delta, acts)
            region.task(
                &[addr_slot(slot), addr_w(0), addr_w(1), addr_w(2)],
                &[ADDR_DELTA, ADDR_ACTS],
                move || sh.forward(slot, lo, lo + batch, 3),
            );
            // The clause order below is architecture-specific: G2 U2 G1
            // U1 G0 U0 — swapping any pair breaks the delta chain.
            grad_update_tasks!(region, shared, spec.lr, 2);
            grad_update_tasks!(region, shared, spec.lr, 1);
            grad_update_tasks!(region, shared, spec.lr, 0);
        }
    }
    region.wait_all();
    extract(&shared, arch)
}

fn train_5layer(
    dataset: Arc<Dataset>,
    arch: &[usize],
    spec: TrainSpec,
    seed: u64,
    pool: &Pool,
) -> (Mlp, Vec<f64>) {
    let init = Mlp::new(arch, seed);
    let shared = make_shared(&init, &spec);
    let batch = spec.batch.max(1);
    let num_batches = dataset.len() / batch;
    let slots = spec.storages.max(1);
    let region = TaskDepRegion::new(pool);
    for e in 0..spec.epochs {
        let slot = e % slots;
        shuffle_task!(region, shared, dataset, spec, e, slot);
        for j in 0..num_batches {
            let sh = Arc::clone(&shared);
            let lo = j * batch;
            // depend(in: slot, W0..W4) depend(out: delta, acts)
            region.task(
                &[
                    addr_slot(slot),
                    addr_w(0),
                    addr_w(1),
                    addr_w(2),
                    addr_w(3),
                    addr_w(4),
                ],
                &[ADDR_DELTA, ADDR_ACTS],
                move || sh.forward(slot, lo, lo + batch, 5),
            );
            // Architecture-specific clause order: G4 U4 ... G0 U0.
            grad_update_tasks!(region, shared, spec.lr, 4);
            grad_update_tasks!(region, shared, spec.lr, 3);
            grad_update_tasks!(region, shared, spec.lr, 2);
            grad_update_tasks!(region, shared, spec.lr, 1);
            grad_update_tasks!(region, shared, spec.lr, 0);
        }
    }
    region.wait_all();
    extract(&shared, arch)
}
