//! DNN training in the OpenMP-style static model (Table III's OpenMP
//! column).
//!
//! The static model has no runtime graph object: to get the Figure-11
//! pipeline (shuffle overlap, per-layer gradient/update concurrency) the
//! programmer must (1) enumerate every task and its dependencies by hand
//! — the Rust analog of the paper's "hard-code an order of task
//! dependency clauses that is only specific to a DNN architecture" —
//! and (2) derive a valid barrier schedule (levelization) from those
//! hand-written dependencies before anything can run. Most of this file
//! is exactly that bookkeeping; compare with the rustflow driver where
//! the library owns all of it.

use parking_lot::Mutex;
use std::sync::Arc;
use tf_baselines::Pool;
use tf_dnn::net::{activate_inplace, backward_layer_math, output_delta, LayerGrad};
use tf_dnn::pipeline::TrainSpec;
use tf_dnn::{Dataset, Matrix, Mlp};

struct Shared {
    weights: Vec<Mutex<Matrix>>,
    biases: Vec<Mutex<Vec<f32>>>,
    acts: Mutex<Vec<Matrix>>,
    delta: Mutex<Matrix>,
    grads: Vec<Mutex<Option<LayerGrad>>>,
    storages: Vec<Mutex<Option<Dataset>>>,
    losses: Mutex<Vec<f64>>,
}

type TaskFn = Arc<dyn Fn() + Send + Sync>;

/// Trains an MLP by hand-building the Figure-11 task list, hand-deriving
/// its barrier schedule, and executing level by level.
pub fn train(
    dataset: &Dataset,
    arch: &[usize],
    spec: TrainSpec,
    seed: u64,
    pool: &Pool,
) -> (Mlp, Vec<f64>) {
    let init = Mlp::new(arch, seed);
    let layers = init.num_layers();
    let shared = Arc::new(Shared {
        weights: init.weights.iter().cloned().map(Mutex::new).collect(),
        biases: init.biases.iter().cloned().map(Mutex::new).collect(),
        acts: Mutex::new(Vec::new()),
        delta: Mutex::new(Matrix::zeros(0, 0)),
        grads: (0..layers).map(|_| Mutex::new(None)).collect(),
        storages: (0..spec.storages.max(1))
            .map(|_| Mutex::new(None))
            .collect(),
        losses: Mutex::new(Vec::new()),
    });
    let batch = spec.batch.max(1);
    let num_batches = dataset.len() / batch;
    let slots = spec.storages.max(1);
    let dataset = Arc::new(dataset.clone());

    // --- 1. Enumerate every task and its dependency list by hand -------
    let mut tasks: Vec<TaskFn> = Vec::new();
    let mut preds: Vec<Vec<usize>> = Vec::new();
    let add =
        |task: TaskFn, deps: Vec<usize>, tasks: &mut Vec<TaskFn>, preds: &mut Vec<Vec<usize>>| {
            tasks.push(task);
            preds.push(deps);
            tasks.len() - 1
        };
    let mut last_forward_of_epoch: Vec<usize> = Vec::new();
    let mut prev_updates: Vec<usize> = Vec::new();
    for e in 0..spec.epochs {
        let slot = e % slots;
        let shuffle_deps = if e >= slots {
            vec![last_forward_of_epoch[e - slots]]
        } else {
            Vec::new()
        };
        let shuffle = {
            let shared = Arc::clone(&shared);
            let dataset = Arc::clone(&dataset);
            let shuffle_seed = spec.shuffle_seed(e);
            add(
                Arc::new(move || {
                    *shared.storages[slot].lock() = Some(dataset.shuffled(shuffle_seed));
                }),
                shuffle_deps,
                &mut tasks,
                &mut preds,
            )
        };
        for j in 0..num_batches {
            let mut forward_deps = vec![shuffle];
            forward_deps.append(&mut prev_updates);
            let forward = {
                let shared = Arc::clone(&shared);
                let lo = j * batch;
                add(
                    Arc::new(move || {
                        let (images, labels) = {
                            let guard = shared.storages[slot].lock();
                            let ds = guard.as_ref().expect("storage empty");
                            let (images, labels) = ds.batch(lo, lo + batch);
                            (images, labels.to_vec())
                        };
                        let mut acts = vec![images];
                        for i in 0..layers {
                            let mut z = acts[i].matmul_bt(&shared.weights[i].lock());
                            z.add_row_vector(&shared.biases[i].lock());
                            activate_inplace(&mut z, i + 1 == layers);
                            acts.push(z);
                        }
                        let (delta, loss) = output_delta(acts.last().expect("nonempty"), &labels);
                        *shared.delta.lock() = delta;
                        *shared.acts.lock() = acts;
                        shared.losses.lock().push(loss);
                    }),
                    forward_deps,
                    &mut tasks,
                    &mut preds,
                )
            };
            let mut prev_g = forward;
            for i in (0..layers).rev() {
                let g_task = {
                    let shared = Arc::clone(&shared);
                    add(
                        Arc::new(move || {
                            let delta = shared.delta.lock().clone();
                            let a_prev = shared.acts.lock()[i].clone();
                            let (grad, dprev) = if i > 0 {
                                backward_layer_math(
                                    Some(&shared.weights[i].lock()),
                                    &delta,
                                    &a_prev,
                                )
                            } else {
                                backward_layer_math(None, &delta, &a_prev)
                            };
                            *shared.grads[i].lock() = Some(grad);
                            if let Some(d) = dprev {
                                *shared.delta.lock() = d;
                            }
                        }),
                        vec![prev_g],
                        &mut tasks,
                        &mut preds,
                    )
                };
                let u_task = {
                    let shared = Arc::clone(&shared);
                    let lr = spec.lr;
                    add(
                        Arc::new(move || {
                            let grad = shared.grads[i].lock().take().expect("gradient missing");
                            shared.weights[i].lock().add_scaled(&grad.dw, -lr);
                            for (b, &g) in shared.biases[i].lock().iter_mut().zip(&grad.db) {
                                *b -= lr * g;
                            }
                        }),
                        vec![g_task],
                        &mut tasks,
                        &mut preds,
                    )
                };
                prev_updates.push(u_task);
                prev_g = g_task;
            }
            if j + 1 == num_batches {
                last_forward_of_epoch.push(forward);
            }
        }
    }

    // --- 2. Hand-derive the barrier schedule (Kahn levelization) -------
    let n = tasks.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut remaining: Vec<usize> = vec![0; n];
    for (v, deps) in preds.iter().enumerate() {
        remaining[v] = deps.len();
        for &u in deps {
            succs[u].push(v);
        }
    }
    let mut frontier: Vec<usize> = (0..n).filter(|&v| remaining[v] == 0).collect();
    let mut levels: Vec<Vec<usize>> = Vec::new();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &s in &succs[v] {
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    next.push(s);
                }
            }
        }
        levels.push(std::mem::replace(&mut frontier, next));
    }
    assert_eq!(levels.iter().map(|l| l.len()).sum::<usize>(), n, "cycle");

    // --- 3. Execute level by level with implicit barriers --------------
    for level in levels {
        if level.len() == 1 {
            (tasks[level[0]])();
            continue;
        }
        let level = Arc::new(level);
        let tasks_ref: Arc<Vec<TaskFn>> =
            Arc::new(level.iter().map(|&v| Arc::clone(&tasks[v])).collect());
        pool.parallel_for(
            level.len(),
            1,
            Arc::new(move |i| {
                (tasks_ref[i])();
            }),
        );
    }

    let trained = Mlp {
        sizes: arch.to_vec(),
        weights: shared.weights.iter().map(|w| w.lock().clone()).collect(),
        biases: shared.biases.iter().map(|b| b.lock().clone()).collect(),
    };
    let losses = shared.losses.lock().clone();
    (trained, losses)
}
