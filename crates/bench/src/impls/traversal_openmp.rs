//! Graph traversal in the OpenMP-`task depend` model (the paper's OpenMP
//! column).
//!
//! The static model forces the user to (1) materialize the whole edge
//! list up front to know each node's `in` clauses, (2) submit nodes in a
//! valid topological order (here: generator id order, which the user
//! must know is topological), and (3) enumerate a dependence address per
//! edge. In C++ this is where the paper's exhaustive per-degree clause
//! enumeration blows up to 213 LOC; the runtime cost of per-clause hash
//! resolution is reproduced by `tf_baselines::taskdep` either way.

use std::sync::Arc;
use tf_baselines::{Pool, TaskDepRegion};
use tf_workloads::kernels::{nominal_work, Sink};
use tf_workloads::randdag::{generate_edges, RandDagSpec};

/// Casts a random graph to OpenMP-style dependent tasks and traverses it.
pub fn run(spec: RandDagSpec, pool: &Pool) -> u64 {
    // Pre-pass the user cannot avoid: collect every node's in-list.
    let mut ins: Vec<Vec<u64>> = vec![Vec::new(); spec.nodes];
    for (u, v) in generate_edges(spec) {
        ins[v as usize].push(u as u64);
    }
    let sink = Arc::new(Sink::new());
    let region = TaskDepRegion::new(pool);
    for (v, node_ins) in ins.iter().enumerate() {
        let outs = [v as u64];
        let sink = Arc::clone(&sink);
        let iters = spec.work_iters;
        region.task(node_ins, &outs, move || {
            sink.consume(nominal_work(v as u64 + 1, iters));
        });
    }
    region.wait_all();
    sink.value()
}
