//! DNN training in the TBB-FlowGraph-style model (Table III's TBB
//! column): the Figure-11 decomposition written against the flow-graph
//! API, with its extra ceremony — building every `continue_node` up
//! front, wiring `make_edge`s, finding and `try_put`ing each source
//! (the first K shuffle nodes), then waiting on the graph object.

use parking_lot::Mutex;
use std::sync::Arc;
use tf_baselines::{FlowGraphBuilder, Pool};
use tf_dnn::net::{activate_inplace, backward_layer_math, output_delta, LayerGrad};
use tf_dnn::pipeline::TrainSpec;
use tf_dnn::{Dataset, Matrix, Mlp};

struct Shared {
    weights: Vec<Mutex<Matrix>>,
    biases: Vec<Mutex<Vec<f32>>>,
    acts: Mutex<Vec<Matrix>>,
    delta: Mutex<Matrix>,
    grads: Vec<Mutex<Option<LayerGrad>>>,
    storages: Vec<Mutex<Option<Dataset>>>,
    losses: Mutex<Vec<f64>>,
}

impl Shared {
    fn forward(&self, slot: usize, lo: usize, hi: usize, layers: usize) {
        let (images, labels) = {
            let guard = self.storages[slot].lock();
            let ds = guard.as_ref().expect("storage empty");
            let (images, labels) = ds.batch(lo, hi);
            (images, labels.to_vec())
        };
        let mut acts = vec![images];
        for i in 0..layers {
            let mut z = acts[i].matmul_bt(&self.weights[i].lock());
            z.add_row_vector(&self.biases[i].lock());
            activate_inplace(&mut z, i + 1 == layers);
            acts.push(z);
        }
        let (delta, loss) = output_delta(acts.last().expect("nonempty"), &labels);
        *self.delta.lock() = delta;
        *self.acts.lock() = acts;
        self.losses.lock().push(loss);
    }

    fn gradient(&self, i: usize) {
        let delta = self.delta.lock().clone();
        let a_prev = self.acts.lock()[i].clone();
        let (grad, dprev) = if i > 0 {
            backward_layer_math(Some(&self.weights[i].lock()), &delta, &a_prev)
        } else {
            backward_layer_math(None, &delta, &a_prev)
        };
        *self.grads[i].lock() = Some(grad);
        if let Some(d) = dprev {
            *self.delta.lock() = d;
        }
    }

    fn update(&self, i: usize, lr: f32) {
        let grad = self.grads[i].lock().take().expect("gradient missing");
        self.weights[i].lock().add_scaled(&grad.dw, -lr);
        for (b, &g) in self.biases[i].lock().iter_mut().zip(&grad.db) {
            *b -= lr * g;
        }
    }
}

/// Trains an MLP with the Figure-11 structure as an explicit flow graph.
pub fn train(
    dataset: Arc<Dataset>,
    arch: &[usize],
    spec: TrainSpec,
    seed: u64,
    pool: &Pool,
) -> (Mlp, Vec<f64>) {
    let init = Mlp::new(arch, seed);
    let layers = init.num_layers();
    let shared = Arc::new(Shared {
        weights: init.weights.iter().cloned().map(Mutex::new).collect(),
        biases: init.biases.iter().cloned().map(Mutex::new).collect(),
        acts: Mutex::new(Vec::new()),
        delta: Mutex::new(Matrix::zeros(0, 0)),
        grads: (0..layers).map(|_| Mutex::new(None)).collect(),
        storages: (0..spec.storages.max(1))
            .map(|_| Mutex::new(None))
            .collect(),
        losses: Mutex::new(Vec::new()),
    });
    let batch = spec.batch.max(1);
    let num_batches = dataset.len() / batch;
    let slots = spec.storages.max(1);

    let mut builder = FlowGraphBuilder::new();
    let mut sources = Vec::new();
    let mut last_forward_of_epoch = Vec::new();
    let mut prev_updates = Vec::new();
    for e in 0..spec.epochs {
        let slot = e % slots;
        let shuffle = {
            let shared = Arc::clone(&shared);
            let dataset = Arc::clone(&dataset);
            let shuffle_seed = spec.shuffle_seed(e);
            builder.continue_node(move |_msg| {
                *shared.storages[slot].lock() = Some(dataset.shuffled(shuffle_seed));
            })
        };
        if e >= slots {
            builder.make_edge(last_forward_of_epoch[e - slots], shuffle);
        } else {
            // A node without predecessors never fires on its own; the
            // user must remember to activate it explicitly below.
            sources.push(shuffle);
        }
        for j in 0..num_batches {
            let forward = {
                let shared = Arc::clone(&shared);
                let lo = j * batch;
                builder.continue_node(move |_msg| shared.forward(slot, lo, lo + batch, layers))
            };
            builder.make_edge(shuffle, forward);
            for &u in &prev_updates {
                builder.make_edge(u, forward);
            }
            prev_updates.clear();
            let mut prev_g = forward;
            for i in (0..layers).rev() {
                let g_node = {
                    let shared = Arc::clone(&shared);
                    builder.continue_node(move |_msg| shared.gradient(i))
                };
                builder.make_edge(prev_g, g_node);
                let u_node = {
                    let shared = Arc::clone(&shared);
                    let lr = spec.lr;
                    builder.continue_node(move |_msg| shared.update(i, lr))
                };
                builder.make_edge(g_node, u_node);
                prev_updates.push(u_node);
                prev_g = g_node;
            }
            if j + 1 == num_batches {
                last_forward_of_epoch.push(forward);
            }
        }
    }
    let graph = builder.build();
    for s in sources {
        graph.try_put(s, pool);
    }
    graph.wait_for_all();

    let trained = Mlp {
        sizes: arch.to_vec(),
        weights: shared.weights.iter().map(|w| w.lock().clone()).collect(),
        biases: shared.biases.iter().map(|b| b.lock().clone()).collect(),
    };
    let losses = shared.losses.lock().clone();
    (trained, losses)
}
