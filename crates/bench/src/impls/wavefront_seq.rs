//! Wavefront, sequential baseline (Table I's Sequential column).

use tf_workloads::kernels::{nominal_work, Sink};

/// Runs a `dim`×`dim` block wavefront; returns the checksum.
pub fn run(dim: usize, iters: u32) -> u64 {
    let sink = Sink::new();
    for id in 0..dim * dim {
        sink.consume(nominal_work(id as u64 + 1, iters));
    }
    sink.value()
}
