//! Graph traversal, sequential baseline (Table I's Sequential column).

use tf_workloads::kernels::{nominal_work, Sink};
use tf_workloads::randdag::RandDagSpec;

/// Visits every node once (any topological order works; ids suffice
/// because the generator issues them topologically).
pub fn run(spec: RandDagSpec) -> u64 {
    let sink = Sink::new();
    for v in 0..spec.nodes {
        sink.consume(nominal_work(v as u64 + 1, spec.work_iters));
    }
    sink.value()
}
