//! DNN training in rustflow (Table III's Cpp-Taskflow column): the
//! Figure-11 decomposition written against rustflow's native API.
//!
//! The task graph covers **one epoch** and is frozen once; training runs
//! it `epochs` times through `Taskflow::run_n`, so graph construction is
//! paid once per configuration instead of once per epoch. The shuffle
//! task — the graph's unique source — advances the epoch counter and
//! derives that epoch's shuffle seed and storage slot at runtime.

use parking_lot::Mutex;
use rustflow::{Executor, Taskflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tf_dnn::net::{activate_inplace, backward_layer_math, output_delta, LayerGrad};
use tf_dnn::pipeline::TrainSpec;
use tf_dnn::{Dataset, Matrix, Mlp};

struct Shared {
    weights: Vec<Mutex<Matrix>>,
    biases: Vec<Mutex<Vec<f32>>>,
    acts: Mutex<Vec<Matrix>>,
    delta: Mutex<Matrix>,
    grads: Vec<Mutex<Option<LayerGrad>>>,
    storages: Vec<Mutex<Option<Dataset>>>,
    losses: Mutex<Vec<f64>>,
    /// Next epoch, advanced by the shuffle task on each iteration of the
    /// reusable topology.
    epoch: AtomicUsize,
    /// Storage slot of the epoch in flight (`epoch % slots`).
    slot: AtomicUsize,
}

impl Shared {
    fn shuffle(&self, dataset: &Dataset, spec: &TrainSpec) {
        let e = self.epoch.fetch_add(1, Ordering::Relaxed);
        let slot = e % self.storages.len();
        self.slot.store(slot, Ordering::Relaxed);
        *self.storages[slot].lock() = Some(dataset.shuffled(spec.shuffle_seed(e)));
    }

    fn forward(&self, slot: usize, lo: usize, hi: usize, layers: usize) {
        let (images, labels) = {
            let guard = self.storages[slot].lock();
            let ds = guard.as_ref().expect("storage empty");
            let (images, labels) = ds.batch(lo, hi);
            (images, labels.to_vec())
        };
        let mut acts = vec![images];
        for i in 0..layers {
            let mut z = acts[i].matmul_bt(&self.weights[i].lock());
            z.add_row_vector(&self.biases[i].lock());
            activate_inplace(&mut z, i + 1 == layers);
            acts.push(z);
        }
        let (delta, loss) = output_delta(acts.last().expect("nonempty"), &labels);
        *self.delta.lock() = delta;
        *self.acts.lock() = acts;
        self.losses.lock().push(loss);
    }

    fn gradient(&self, i: usize) {
        let delta = self.delta.lock().clone();
        let a_prev = self.acts.lock()[i].clone();
        let (grad, dprev) = if i > 0 {
            backward_layer_math(Some(&self.weights[i].lock()), &delta, &a_prev)
        } else {
            backward_layer_math(None, &delta, &a_prev)
        };
        *self.grads[i].lock() = Some(grad);
        if let Some(d) = dprev {
            *self.delta.lock() = d;
        }
    }

    fn update(&self, i: usize, lr: f32) {
        let grad = self.grads[i].lock().take().expect("gradient missing");
        self.weights[i].lock().add_scaled(&grad.dw, -lr);
        for (b, &g) in self.biases[i].lock().iter_mut().zip(&grad.db) {
            *b -= lr * g;
        }
    }
}

/// Trains an MLP with the Figure-11 task graph on rustflow.
pub fn train(
    dataset: Arc<Dataset>,
    arch: &[usize],
    spec: TrainSpec,
    seed: u64,
    executor: &Arc<Executor>,
) -> (Mlp, Vec<f64>) {
    let init = Mlp::new(arch, seed);
    let layers = init.num_layers();
    let shared = Arc::new(Shared {
        weights: init.weights.iter().cloned().map(Mutex::new).collect(),
        biases: init.biases.iter().cloned().map(Mutex::new).collect(),
        acts: Mutex::new(Vec::new()),
        delta: Mutex::new(Matrix::zeros(0, 0)),
        grads: (0..layers).map(|_| Mutex::new(None)).collect(),
        storages: (0..spec.storages.max(1))
            .map(|_| Mutex::new(None))
            .collect(),
        losses: Mutex::new(Vec::new()),
        epoch: AtomicUsize::new(0),
        slot: AtomicUsize::new(0),
    });
    let batch = spec.batch.max(1);
    let num_batches = dataset.len() / batch;

    // One epoch's graph, frozen once and re-armed per epoch. Iterations
    // of a reusable topology are serialized, which subsumes the unrolled
    // graph's storage-slot reuse edges.
    let tf = Taskflow::with_executor(Arc::clone(executor));
    let mut prev_updates: Vec<rustflow::Task<'_>> = Vec::new();
    let shuffle = {
        let shared = Arc::clone(&shared);
        let dataset = Arc::clone(&dataset);
        tf.emplace(move || shared.shuffle(&dataset, &spec))
    };
    for j in 0..num_batches {
        let forward = {
            let shared = Arc::clone(&shared);
            let lo = j * batch;
            tf.emplace(move || {
                let slot = shared.slot.load(Ordering::Relaxed);
                shared.forward(slot, lo, lo + batch, layers);
            })
        };
        shuffle.precede(forward);
        forward.succeed(&prev_updates);
        prev_updates.clear();
        let mut prev_g = forward;
        for i in (0..layers).rev() {
            let g_task = {
                let shared = Arc::clone(&shared);
                tf.emplace(move || shared.gradient(i))
            };
            prev_g.precede(g_task);
            let u_task = {
                let shared = Arc::clone(&shared);
                let lr = spec.lr;
                tf.emplace(move || shared.update(i, lr))
            };
            g_task.precede(u_task);
            prev_updates.push(u_task);
            prev_g = g_task;
        }
    }
    tf.run_n(spec.epochs as u64)
        .get()
        .expect("training batch failed");

    let trained = Mlp {
        sizes: arch.to_vec(),
        weights: shared.weights.iter().map(|w| w.lock().clone()).collect(),
        biases: shared.biases.iter().map(|b| b.lock().clone()).collect(),
    };
    let losses = shared.losses.lock().clone();
    (trained, losses)
}
