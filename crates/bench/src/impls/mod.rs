//! Per-model implementations of the paper's three coding-cost subjects
//! (wavefront, graph traversal, DNN training), written the way a user of
//! each programming model would write them.
//!
//! These files are **measurement subjects**: `table1` and `table3` run
//! the SLOC / cyclomatic-complexity analyzer (`tf-metrics`) over their
//! sources, reproducing the paper's Tables I and III methodology on our
//! Rust implementations. They are therefore deliberately *not* factored
//! through the shared `Dag` abstraction — each uses its model's native
//! graph-description API, because that API's verbosity is exactly what
//! the experiment quantifies. They are all tested for correctness against
//! the order-independent checksums / the sequential SGD oracle.

pub mod dnn_flowgraph;
pub mod dnn_levelized;
pub mod dnn_openmp;
pub mod dnn_rustflow;
pub mod dnn_seq;
pub mod traversal_flowgraph;
pub mod traversal_levelized;
pub mod traversal_openmp;
pub mod traversal_rustflow;
pub mod traversal_seq;
pub mod wavefront_flowgraph;
pub mod wavefront_levelized;
pub mod wavefront_openmp;
pub mod wavefront_rustflow;
pub mod wavefront_seq;

/// Source-file paths of each implementation, grouped per experiment row:
/// (model label, path). `table1`/`table3` feed these to `tf-metrics`.
pub fn source_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("src/impls")
        .join(file)
}
