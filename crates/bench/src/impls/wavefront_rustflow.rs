//! Wavefront in rustflow (the paper's Cpp-Taskflow column, Table I).

use rustflow::{Executor, Taskflow};
use std::sync::Arc;
use tf_workloads::kernels::{nominal_work, Sink};

/// Runs a `dim`×`dim` block wavefront; returns the checksum.
pub fn run(dim: usize, iters: u32, executor: &Arc<Executor>) -> u64 {
    let sink = Arc::new(Sink::new());
    let tf = Taskflow::with_executor(Arc::clone(executor));
    let tasks: Vec<_> = (0..dim * dim)
        .map(|id| {
            let sink = Arc::clone(&sink);
            tf.emplace(move || sink.consume(nominal_work(id as u64 + 1, iters)))
        })
        .collect();
    for r in 0..dim {
        for c in 0..dim {
            let id = r * dim + c;
            if c + 1 < dim {
                tasks[id].precede(tasks[id + 1]);
            }
            if r + 1 < dim {
                tasks[id].precede(tasks[id + dim]);
            }
        }
    }
    tf.wait_for_all();
    sink.value()
}
