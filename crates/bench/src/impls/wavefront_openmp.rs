//! Wavefront in the OpenMP-`task depend` model (the paper's OpenMP
//! column, Listing 4 style).
//!
//! Every block must declare `depend(in: ...)` / `depend(out: ...)` lists
//! over per-block dependence addresses, and blocks must be submitted in
//! an order consistent with sequential execution — here row-major, which
//! the programmer has to know is valid.

use std::sync::Arc;
use tf_baselines::{Pool, TaskDepRegion};
use tf_workloads::kernels::{nominal_work, Sink};

/// Runs a `dim`×`dim` block wavefront; returns the checksum.
pub fn run(dim: usize, iters: u32, pool: &Pool) -> u64 {
    let sink = Arc::new(Sink::new());
    let region = TaskDepRegion::new(pool);
    for r in 0..dim {
        for c in 0..dim {
            let id = r * dim + c;
            // One dependence address per block: a block reads its left
            // and top neighbours' addresses and writes its own.
            let mut ins = Vec::with_capacity(2);
            if c > 0 {
                ins.push((id - 1) as u64);
            }
            if r > 0 {
                ins.push((id - dim) as u64);
            }
            let outs = [id as u64];
            let sink = Arc::clone(&sink);
            region.task(&ins, &outs, move || {
                sink.consume(nominal_work(id as u64 + 1, iters));
            });
        }
    }
    region.wait_all();
    sink.value()
}
