//! Graph traversal in rustflow (Table I's Cpp-Taskflow column).

use rustflow::{Executor, Taskflow};
use std::sync::Arc;
use tf_workloads::kernels::{nominal_work, Sink};
use tf_workloads::randdag::{generate_edges, RandDagSpec};

/// Casts a random graph to a task dependency graph and traverses it.
pub fn run(spec: RandDagSpec, executor: &Arc<Executor>) -> u64 {
    let sink = Arc::new(Sink::new());
    let tf = Taskflow::with_executor(Arc::clone(executor));
    let tasks: Vec<_> = (0..spec.nodes)
        .map(|v| {
            let sink = Arc::clone(&sink);
            let iters = spec.work_iters;
            tf.emplace(move || sink.consume(nominal_work(v as u64 + 1, iters)))
        })
        .collect();
    for (u, v) in generate_edges(spec) {
        tasks[u as usize].precede(tasks[v as usize]);
    }
    tf.wait_for_all();
    sink.value()
}
