//! # tf-bench — the benchmark harness regenerating every table and figure
//!
//! One binary per experiment (see DESIGN.md §4 for the full index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — software costs of the micro-benchmarks |
//! | `fig7` | Figure 7 — micro-benchmark runtimes (size & thread sweeps) |
//! | `table2` | Table II — OpenTimer v1/v2 software costs + COCOMO |
//! | `fig8` | Figure 8 — a timing-update task graph (DOT) |
//! | `fig9` | Figure 9 — incremental timing, v1 vs v2 |
//! | `fig10` | Figure 10 — full-timing scalability + CPU utilization |
//! | `table3` | Table III — software costs of the DNN implementations |
//! | `fig11` | Figure 11 — the DNN task decomposition (DOT) |
//! | `fig12` | Figure 12 — DNN training runtimes (epoch & thread sweeps) |
//! | `reuse` | rebuild-vs-reuse cost of iterative graphs (beyond the paper) |
//! | `profile` | causal work/span profile + CI perf-regression gate (beyond the paper) |
//! | `chaos` | deterministic fault-injection gate (beyond the paper) |
//! | `introspect` | live-introspection overhead + endpoint smoke gate (beyond the paper) |
//!
//! Criterion micro-benches (`benches/`) cover per-task scheduling
//! overhead, algorithm primitives, and the Algorithm-1 ablations.

#![warn(missing_docs)]

pub mod harness;
pub mod impls;
pub mod json;
pub mod prom;

#[cfg(test)]
mod impl_tests {
    use crate::impls::*;
    use rustflow::Executor;
    use std::sync::Arc;
    use tf_baselines::Pool;
    use tf_dnn::pipeline::TrainSpec;
    use tf_workloads::randdag::RandDagSpec;
    use tf_workloads::wavefront::{expected_checksum, WavefrontSpec};

    #[test]
    fn wavefront_impls_agree() {
        let dim = 12;
        let iters = 10;
        let expected = expected_checksum(WavefrontSpec {
            dim,
            work_iters: iters,
        });
        assert_eq!(wavefront_seq::run(dim, iters), expected);
        let ex = Executor::new(3);
        assert_eq!(wavefront_rustflow::run(dim, iters, &ex), expected);
        let pool = Pool::new(3);
        assert_eq!(wavefront_flowgraph::run(dim, iters, &pool), expected);
        assert_eq!(wavefront_levelized::run(dim, iters, &pool), expected);
        assert_eq!(wavefront_openmp::run(dim, iters, &pool), expected);
    }

    #[test]
    fn traversal_impls_agree() {
        let spec = RandDagSpec::new(1500);
        let expected = tf_workloads::randdag::expected_checksum(spec);
        assert_eq!(traversal_seq::run(spec), expected);
        let ex = Executor::new(3);
        assert_eq!(traversal_rustflow::run(spec, &ex), expected);
        let pool = Pool::new(3);
        assert_eq!(traversal_flowgraph::run(spec, &pool), expected);
        assert_eq!(traversal_levelized::run(spec, &pool), expected);
        assert_eq!(traversal_openmp::run(spec, &pool), expected);
    }

    #[test]
    fn dnn_impls_match_sequential_bitwise() {
        let data = tf_dnn::synthetic_mnist(150, 77);
        let arch = [784, 10, 10];
        let spec = TrainSpec {
            epochs: 2,
            batch: 50,
            lr: 0.01,
            storages: 2,
            seed: 55,
        };
        let (oracle, oracle_losses) = dnn_seq::train(&data, &arch, spec, 13);

        let ex = Executor::new(4);
        let (net_rf, losses_rf) = dnn_rustflow::train(Arc::new(data.clone()), &arch, spec, 13, &ex);
        assert_eq!(losses_rf, oracle_losses);
        assert_eq!(net_rf.weights, oracle.weights);
        assert_eq!(net_rf.biases, oracle.biases);

        let pool = Pool::new(4);
        let (net_fg, losses_fg) =
            dnn_flowgraph::train(Arc::new(data.clone()), &arch, spec, 13, &pool);
        assert_eq!(losses_fg, oracle_losses);
        assert_eq!(net_fg.weights, oracle.weights);

        let (net_lv, losses_lv) = dnn_levelized::train(&data, &arch, spec, 13, &pool);
        assert_eq!(losses_lv, oracle_losses);
        assert_eq!(net_lv.weights, oracle.weights);
    }

    #[test]
    fn dnn_openmp_matches_sequential_bitwise() {
        // The taskdep driver only supports the paper's architectures.
        let data = tf_dnn::synthetic_mnist(200, 78);
        let arch = tf_dnn::arch_3layer();
        let spec = TrainSpec {
            epochs: 2,
            batch: 100,
            lr: 0.01,
            storages: 2,
            seed: 56,
        };
        let (oracle, oracle_losses) = dnn_seq::train(&data, &arch, spec, 14);
        let pool = Pool::new(4);
        let (net, losses) = dnn_openmp::train(Arc::new(data), &arch, spec, 14, &pool);
        assert_eq!(losses, oracle_losses);
        assert_eq!(net.weights, oracle.weights);
        assert_eq!(net.biases, oracle.biases);
    }

    #[test]
    fn dnn_openmp_5layer_works() {
        let data = tf_dnn::synthetic_mnist(100, 79);
        let arch = tf_dnn::arch_5layer();
        let spec = TrainSpec {
            epochs: 1,
            batch: 50,
            lr: 0.01,
            storages: 1,
            seed: 57,
        };
        let (oracle, oracle_losses) = dnn_seq::train(&data, &arch, spec, 15);
        let pool = Pool::new(3);
        let (net, losses) = dnn_openmp::train(Arc::new(data), &arch, spec, 15, &pool);
        assert_eq!(losses, oracle_losses);
        assert_eq!(net.weights, oracle.weights);
    }

    #[test]
    fn impl_sources_exist_for_measurement() {
        for f in [
            "wavefront_rustflow.rs",
            "wavefront_flowgraph.rs",
            "wavefront_levelized.rs",
            "wavefront_seq.rs",
            "traversal_rustflow.rs",
            "traversal_flowgraph.rs",
            "traversal_levelized.rs",
            "traversal_seq.rs",
            "wavefront_openmp.rs",
            "traversal_openmp.rs",
            "dnn_rustflow.rs",
            "dnn_flowgraph.rs",
            "dnn_levelized.rs",
            "dnn_openmp.rs",
            "dnn_seq.rs",
        ] {
            assert!(source_path(f).exists(), "{f} missing");
        }
    }
}
