//! A minimal strict JSON parser with path accessors — enough to read the
//! profiler's committed baseline and reports without pulling in a
//! dependency (the harness is dependency-free by design).

/// A parsed JSON value.
#[derive(Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(items) => items.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value truncated to `u64`, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `s` as one strict JSON document.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut i = 0;
    let v = value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => obj(b, i),
        Some(b'[') => arr(b, i),
        Some(b'"') => Ok(Value::Str(string(b, i)?)),
        Some(b't') => lit(b, i, "true", Value::Bool(true)),
        Some(b'f') => lit(b, i, "false", Value::Bool(false)),
        Some(b'n') => lit(b, i, "null", Value::Null),
        Some(_) => num(b, i),
        None => Err("unexpected end".into()),
    }
}

fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at {i}"))
    }
}

fn num(b: &[u8], i: &mut usize) -> Result<Value, String> {
    let start = *i;
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at {start}"))
}

fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b[*i] != b'"' {
        return Err(format!("expected string at {i}"));
    }
    *i += 1;
    let mut out = String::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(&b[*i + 1..*i + 5])
                            .map_err(|_| "bad \\u".to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u".to_string())?;
                        out.push(char::from_u32(code).ok_or("bad codepoint")?);
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at {i}")),
                }
                *i += 1;
            }
            c if c < 0x20 => return Err(format!("raw control char at {i}")),
            _ => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*i..]).map_err(|_| "bad utf8".to_string())?;
                let ch = s.chars().next().ok_or("end")?;
                out.push(ch);
                *i += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn arr(b: &[u8], i: &mut usize) -> Result<Value, String> {
    *i += 1; // [
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected , or ] at {i}")),
        }
    }
}

fn obj(b: &[u8], i: &mut usize) -> Result<Value, String> {
    *i += 1; // {
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Value::Obj(items));
    }
    loop {
        skip_ws(b, i);
        let key = string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected : at {i}"));
        }
        *i += 1;
        items.push((key, value(b, i)?));
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Value::Obj(items));
            }
            _ => return Err(format!("expected , or }} at {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_navigates() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
