//! Sustained-overload soak and CI resilience gate.
//!
//! Drives the executor at ~2x its measured capacity through the tenant
//! front door for tens of seconds, with one *poisoned* tenant whose
//! tasks panic on every dispatch (seeded chaos scoped via
//! `ChaosSpec::for_tenant`). Every overload configuration is measured
//! twice — once with the resilience layer engaged (per-run deadlines,
//! queue-side shedding, a circuit breaker and a retry budget on the
//! poisoned tenant) and once as the *ablation* (plain bounded queues,
//! the seed's only backpressure) — interleaved so container load drift
//! hits both sides equally, keeping the best run per side.
//!
//! The gate (`--check`) verifies, under sustained overload:
//!
//! * the extended admission ledger balances at quiescence for every
//!   tenant: `submitted == dispatched + coalesced + shed + rejected_*`;
//! * goodput (deadline-met completions/s) with shedding engaged is at
//!   least 80% of the no-shedding ablation's, and within the committed
//!   baseline's one-sided tolerance band;
//! * admitted-work p99 stays bounded (deadline + grace by construction,
//!   banded against the baseline);
//! * the circuit breaker isolates the poisoned tenant within a bounded
//!   number of dispatched failures, fast-rejects while open, and the
//!   retry budget demonstrably degrades retries to failures;
//! * the new observability surfaces round-trip: `/metrics` parses under
//!   the strict `tf_bench::prom` parser with the shed/budget/breaker
//!   families agreeing with the in-process stats, and `/status` is
//!   well-formed JSON carrying the breaker and shed sections.
//!
//! Modes mirror the serving bench: default writes
//! `<out>/soak_report.json`; `--write-baseline` additionally writes
//! `<out>/soak_baseline.json`; `--check` gates and exits non-zero on
//! violation.

use rustflow::chaos::ChaosSpec;
use rustflow::{
    AdmissionError, BreakerSpec, Executor, ExecutorBuilder, RetryBudget, RunError, Taskflow,
    TenantQos, TenantStats,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tf_bench::{json, prom};

/// Service time of one healthy request (a sleep, not a spin: workers
/// must oversubscribe cores the same way on every runner).
const TASK_US: u64 = 300;
/// Per-run deadline on the resilient side; admitted work that dispatches
/// at all dispatched before this much queueing.
const DEADLINE_MS: u64 = 25;
/// Slack on the client-side deadline-met judgement: execution time plus
/// the bounded reap lag of the measurement window.
const GRACE_MS: u64 = 10;
/// Client pipeline depth; bounds both memory and the reap lag that the
/// grace above absorbs.
const WINDOW: usize = 16;
/// Healthy open-loop clients, one tenant each.
const HEALTHY: usize = 8;
/// Consecutive failures that open the poisoned tenant's breaker.
const BREAKER_FAILURES: u32 = 5;
/// Open window of the poisoned tenant's breaker.
const BREAKER_OPEN_MS: u64 = 500;

struct Flags {
    out: std::path::PathBuf,
    workers: usize,
    duration_ms: u64,
    repeats: usize,
    seed: u64,
    check: bool,
    write_baseline: bool,
    baseline: Option<std::path::PathBuf>,
}

fn parse_flags() -> Flags {
    let mut f = Flags {
        out: std::path::PathBuf::from("results"),
        workers: 4,
        duration_ms: 7000,
        repeats: 2,
        seed: 1802,
        check: false,
        write_baseline: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => f.out = args.next().expect("--out needs a directory").into(),
            "--workers" => {
                f.workers = args
                    .next()
                    .expect("--workers needs a count")
                    .parse()
                    .expect("bad worker count");
            }
            "--duration-ms" => {
                f.duration_ms = args
                    .next()
                    .expect("--duration-ms needs a value")
                    .parse()
                    .expect("bad duration");
            }
            "--repeats" => {
                f.repeats = args
                    .next()
                    .expect("--repeats needs a count")
                    .parse()
                    .expect("bad repeat count");
            }
            "--seed" => {
                f.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("bad seed");
            }
            "--check" => f.check = true,
            "--write-baseline" => f.write_baseline = true,
            "--baseline" => f.baseline = Some(args.next().expect("--baseline needs a path").into()),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --out <dir> | --workers n | --duration-ms n | --repeats n | --seed n | --check | --write-baseline | --baseline <path>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    f
}

fn build_executor(workers: usize) -> Arc<Executor> {
    // A bounded dispatch budget is what makes overload land in the
    // tenant queues (where shedding lives) rather than in the injector.
    ExecutorBuilder::new()
        .workers(workers)
        .max_inflight(workers * 2)
        .build()
}

/// Outcome tallies for one client, stamped client-side.
#[derive(Default)]
struct Tally {
    submitted: u64,
    ok: u64,
    good: u64,
    shed: u64,
    cancelled: u64,
    panicked: u64,
    saturated: u64,
    infeasible: u64,
    breaker_rejected: u64,
    shutdown: u64,
    lat_ok_us: Vec<f64>,
}

impl Tally {
    fn fold(&mut self, other: Tally) {
        self.submitted += other.submitted;
        self.ok += other.ok;
        self.good += other.good;
        self.shed += other.shed;
        self.cancelled += other.cancelled;
        self.panicked += other.panicked;
        self.saturated += other.saturated;
        self.infeasible += other.infeasible;
        self.breaker_rejected += other.breaker_rejected;
        self.shutdown += other.shutdown;
        self.lat_ok_us.extend(other.lat_ok_us);
    }
}

/// Resolves one in-flight run into the tally. Clients reap in submission
/// order, which is per-tenant resolve order, so the stamp at `get`'s
/// return tracks the true resolve time to within the reap lag.
fn resolve(t0: Instant, h: &rustflow::RunHandle, tally: &mut Tally) {
    match h.get() {
        Ok(()) => {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            tally.ok += 1;
            if us <= ((DEADLINE_MS + GRACE_MS) * 1000) as f64 {
                tally.good += 1;
            }
            tally.lat_ok_us.push(us);
        }
        Err(RunError::Shed { .. }) => tally.shed += 1,
        Err(RunError::Cancelled) => tally.cancelled += 1,
        Err(RunError::Panic(_)) => tally.panicked += 1,
        Err(RunError::Rejected(_)) => tally.shutdown += 1,
        Err(e) => panic!("unexpected run outcome under soak: {e}"),
    }
}

fn count_admission_error(e: AdmissionError, tally: &mut Tally) {
    match e {
        AdmissionError::Saturated { .. } => tally.saturated += 1,
        AdmissionError::DeadlineInfeasible { .. } => tally.infeasible += 1,
        AdmissionError::BreakerOpen { .. } => tally.breaker_rejected += 1,
        AdmissionError::ShuttingDown => tally.shutdown += 1,
    }
}

/// One paced open-loop client: submits on an absolute schedule (falling
/// behind compresses, it never thins the offered load), keeps at most
/// [`WINDOW`] runs in flight, drains the rest at the end.
fn paced_client(
    ex: Arc<Executor>,
    submit: impl Fn(&Taskflow) -> Result<rustflow::RunHandle, AdmissionError>,
    make_flow: impl Fn(Arc<Executor>) -> Taskflow,
    interval: Duration,
    end: Instant,
) -> Tally {
    let mut tally = Tally::default();
    let mut inflight: VecDeque<(Instant, Taskflow, rustflow::RunHandle)> =
        VecDeque::with_capacity(WINDOW + 1);
    let mut next = Instant::now();
    while Instant::now() < end {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
        next += interval;
        let tf = make_flow(ex.clone());
        tally.submitted += 1;
        let t0 = Instant::now();
        match submit(&tf) {
            Ok(h) => inflight.push_back((t0, tf, h)),
            Err(e) => count_admission_error(e, &mut tally),
        }
        while inflight.len() > WINDOW {
            let (t0, _tf, h) = inflight.pop_front().expect("window overfull");
            resolve(t0, &h, &mut tally);
        }
    }
    for (t0, _tf, h) in inflight {
        resolve(t0, &h, &mut tally);
    }
    tally
}

/// Closed-loop throughput probe: how many requests/s the executor
/// completes when clients only wait, never pace. The overload phases
/// offer twice this.
fn calibrate(workers: usize) -> f64 {
    let ex = build_executor(workers);
    let window = Duration::from_millis(1000);
    let start = Instant::now();
    let end = start + window;
    let handles: Vec<_> = (0..HEALTHY)
        .map(|c| {
            let ex = Arc::clone(&ex);
            let tenant = ex.tenant(&format!("cal-{c}"));
            std::thread::spawn(move || {
                let mut done = 0u64;
                let mut inflight: VecDeque<(Taskflow, rustflow::RunHandle)> =
                    VecDeque::with_capacity(WINDOW + 1);
                while Instant::now() < end {
                    let tf = Taskflow::with_executor(ex.clone());
                    tf.emplace(|| std::thread::sleep(Duration::from_micros(TASK_US)));
                    let h = tf.run_on(&tenant).expect("calibration submit");
                    inflight.push_back((tf, h));
                    if inflight.len() == WINDOW {
                        let (_tf, h) = inflight.pop_front().expect("window full");
                        h.get().expect("calibration run");
                        done += 1;
                    }
                }
                for (_tf, h) in inflight {
                    h.get().expect("calibration run");
                    done += 1;
                }
                done
            })
        })
        .collect();
    let total: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("calibration client"))
        .sum();
    total as f64 / start.elapsed().as_secs_f64()
}

/// Everything one overload phase produced, after quiescence.
struct SideRun {
    healthy: Tally,
    poison: Tally,
    tenants: Vec<TenantStats>,
    wall_s: f64,
}

/// Runs one overload phase (resilient or ablation) against `ex` and
/// waits out quiescence. `capacity` is the calibrated closed-loop
/// completion rate; the offered load is twice it.
fn run_side(
    ex: &Arc<Executor>,
    resilient: bool,
    capacity: f64,
    duration: Duration,
    seed: u64,
) -> SideRun {
    let interval = Duration::from_secs_f64((HEALTHY as f64 / (2.0 * capacity)).max(100e-6));
    let start = Instant::now();
    let end = start + duration;
    let mut clients = Vec::new();
    for c in 0..HEALTHY {
        let ex = Arc::clone(ex);
        let tenant = ex.tenant_with(
            &format!("h{c}"),
            TenantQos {
                max_queued: 256,
                ..TenantQos::default()
            },
        );
        clients.push(std::thread::spawn(move || {
            paced_client(
                Arc::clone(&ex),
                move |tf| {
                    if resilient {
                        tf.try_run_on_deadline(&tenant, Duration::from_millis(DEADLINE_MS))
                    } else {
                        tf.try_run_on(&tenant)
                    }
                },
                |ex| {
                    let tf = Taskflow::with_executor(ex);
                    tf.emplace(|| std::thread::sleep(Duration::from_micros(TASK_US)));
                    tf
                },
                interval,
                end,
            )
        }));
    }
    // The poisoned tenant: every dispatched task panics (seeded chaos,
    // scoped to this tenant alone), retried once per attempt budgeted.
    let poison_thread = {
        let ex = Arc::clone(ex);
        let tenant = ex.tenant_with(
            "poison",
            TenantQos {
                max_queued: 32,
                breaker: resilient.then(|| BreakerSpec {
                    failures: BREAKER_FAILURES,
                    open_for: Duration::from_millis(BREAKER_OPEN_MS),
                }),
                retry_budget: resilient.then_some(RetryBudget {
                    floor: 2,
                    per_mille: 100,
                }),
                ..TenantQos::default()
            },
        );
        let spec = ChaosSpec::new(seed)
            .panic_permille(1000)
            .for_tenant(&tenant);
        let poison_interval = interval * 8;
        std::thread::spawn(move || {
            paced_client(
                Arc::clone(&ex),
                move |tf| tf.try_run_on(&tenant),
                move |ex| {
                    let tf = Taskflow::with_executor(ex);
                    tf.emplace(spec.wrap(0, || {})).retry(2);
                    tf
                },
                poison_interval,
                end,
            )
        })
    };
    let mut healthy = Tally::default();
    for c in clients {
        healthy.fold(c.join().expect("healthy client panicked"));
    }
    let poison = poison_thread.join().expect("poison client panicked");
    let wall_s = start.elapsed().as_secs_f64();
    // Quiescence: the ledger is only required to balance once nothing is
    // queued or in flight.
    let settle_deadline = Instant::now() + Duration::from_secs(10);
    let tenants = loop {
        let tenants = ex.stats().tenants;
        let busy = tenants.iter().any(|t| t.queued != 0 || t.in_flight != 0);
        if !busy || Instant::now() > settle_deadline {
            break tenants;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    SideRun {
        healthy,
        poison,
        tenants,
        wall_s,
    }
}

/// The extended conservation law, per tenant, at quiescence.
fn ledger_failures(side: &str, tenants: &[TenantStats]) -> Vec<String> {
    tenants
        .iter()
        .filter_map(|s| {
            let accounted = s.dispatched
                + s.coalesced
                + s.shed
                + s.rejected_saturated
                + s.rejected_shutdown
                + s.rejected_infeasible
                + s.rejected_breaker;
            (s.submitted != accounted).then(|| {
                format!(
                    "{side}: tenant {} ledger unbalanced: submitted {} != accounted {} ({s:?})",
                    s.name, s.submitted, accounted
                )
            })
        })
        .collect()
}

/// One kept measurement of a side.
struct Measured {
    name: String,
    goodput_per_s: f64,
    ok_per_s: f64,
    p99_us: f64,
    shed: u64,
    saturated: u64,
    infeasible: u64,
    breaker_rejected: u64,
    retry_budget_exhausted: u64,
    poisoned_dispatched: u64,
    poisoned_submitted: u64,
}

fn summarize(name: &str, run: &SideRun) -> Measured {
    let mut lat = run.healthy.lat_ok_us.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let poisoned = run.tenants.iter().find(|t| t.name == "poison");
    Measured {
        name: name.to_string(),
        goodput_per_s: run.healthy.good as f64 / run.wall_s,
        ok_per_s: run.healthy.ok as f64 / run.wall_s,
        p99_us: rustflow::percentile(&lat, 0.99),
        shed: run.tenants.iter().map(|t| t.shed).sum(),
        saturated: run.healthy.saturated,
        infeasible: run.healthy.infeasible,
        breaker_rejected: run.poison.breaker_rejected,
        retry_budget_exhausted: poisoned.map_or(0, |t| t.retry_budget_exhausted),
        poisoned_dispatched: poisoned.map_or(0, |t| t.dispatched),
        poisoned_submitted: poisoned.map_or(0, |t| t.submitted),
    }
}

fn http_get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect introspection endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("socket timeout");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: gate\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("malformed response");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "unexpected status for {target}: {}",
        head.lines().next().unwrap_or("")
    );
    body.to_string()
}

/// Sum of a family's sample values, optionally for one tenant label.
fn family_sum(exposition: &prom::Exposition, name: &str, tenant: Option<&str>) -> Option<f64> {
    let family = exposition.family(name)?;
    let mut sum = 0.0;
    let mut seen = false;
    for s in &family.samples {
        if let Some(t) = tenant {
            if s.label("tenant") != Some(t) {
                continue;
            }
        }
        sum += s.value;
        seen = true;
    }
    seen.then_some(sum)
}

/// The observability round-trip: a short resilient overload run with the
/// introspection server attached and a live scraper, then the shed /
/// budget / breaker families must agree with the in-process stats and
/// `/status` must carry the breaker and shed sections as valid JSON.
fn observability(flags: &Flags, capacity: f64) -> Vec<String> {
    let ex = build_executor(flags.workers);
    let handle = ex
        .serve_introspection("127.0.0.1:0")
        .expect("bind introspection listener");
    let addr = handle.local_addr().expect("ephemeral introspection addr");
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Scrape both endpoints *during* the storm: merges and
            // renders must be safe while the counters move.
            while !stop.load(Ordering::Acquire) {
                let _ = http_get(addr, "/metrics");
                let _ = http_get(addr, "/status");
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let run = run_side(&ex, true, capacity, Duration::from_millis(1500), flags.seed);
    stop.store(true, Ordering::Release);
    scraper.join().expect("scraper thread panicked");

    let mut failures = ledger_failures("observability", &run.tenants);
    let text = http_get(addr, "/metrics");
    let exposition = match prom::parse(&text) {
        Ok(e) => e,
        Err(e) => {
            failures.push(format!("strict parser rejected /metrics: {e}"));
            return failures;
        }
    };
    let total_shed: u64 = run.tenants.iter().map(|t| t.shed).sum();
    match family_sum(&exposition, "rustflow_runs_shed_total", None) {
        Some(v) if v as u64 == total_shed => {}
        Some(v) => failures.push(format!(
            "rustflow_runs_shed_total reports {v}, stats say {total_shed}"
        )),
        None => failures.push("rustflow_runs_shed_total missing from /metrics".into()),
    }
    match family_sum(
        &exposition,
        "rustflow_retry_budget_exhausted_total",
        Some("poison"),
    ) {
        Some(v) if v >= 1.0 => {}
        other => failures.push(format!(
            "poisoned tenant's retry budget never ran dry in /metrics: {other:?}"
        )),
    }
    let poisoned = run.tenants.iter().find(|t| t.name == "poison");
    match family_sum(&exposition, "rustflow_breaker_state", Some("poison")) {
        Some(v) if poisoned.is_some_and(|t| t.breaker_state == v as u64) => {}
        other => failures.push(format!(
            "rustflow_breaker_state disagrees with stats ({:?} vs metric {other:?})",
            poisoned.map(|t| t.breaker_state)
        )),
    }
    match family_sum(
        &exposition,
        "rustflow_tenant_rejected_breaker_total",
        Some("poison"),
    ) {
        Some(v) if v >= 1.0 => {}
        other => failures.push(format!(
            "open breaker never fast-rejected in /metrics: {other:?}"
        )),
    }
    match family_sum(&exposition, "rustflow_breaker_transitions_total", None) {
        Some(v) if v >= 1.0 => {}
        other => failures.push(format!(
            "rustflow_breaker_transitions_total missing or zero: {other:?}"
        )),
    }
    if family_sum(&exposition, "rustflow_watchdog_overload_shed_total", None).is_none() {
        failures.push("rustflow_watchdog_overload_shed_total missing from /metrics".into());
    }

    let status = http_get(addr, "/status");
    if let Err(e) = json::parse(&status) {
        failures.push(format!("/status is not valid JSON: {e}"));
    }
    for key in [
        "\"breaker\"",
        "\"shed\"",
        "\"retry_budget_exhausted\"",
        "\"overload_shed\"",
        "\"breaker_transitions\"",
    ] {
        if !status.contains(key) {
            failures.push(format!("/status is missing the {key} section"));
        }
    }
    failures
}

fn main() {
    let flags = parse_flags();
    let capacity = calibrate(flags.workers);
    println!("calibrated capacity: {capacity:.0} requests/s (offering 2x)");

    let duration = Duration::from_millis(flags.duration_ms);
    let mut ledger_problems = Vec::new();
    // Interleave resilient/ablation repeats; keep the best run per side
    // by goodput so load drift cannot bias the A/B.
    let mut best: [Option<(SideRun, u64)>; 2] = [None, None];
    for _ in 0..flags.repeats.max(1) {
        for (side, resilient) in [(0usize, true), (1usize, false)] {
            let ex = build_executor(flags.workers);
            let run = run_side(&ex, resilient, capacity, duration, flags.seed);
            ledger_problems.extend(ledger_failures(
                if resilient { "resilient" } else { "ablation" },
                &run.tenants,
            ));
            let good = run.healthy.good;
            if best[side].as_ref().is_none_or(|(_, b)| good > *b) {
                best[side] = Some((run, good));
            }
        }
    }
    let [resilient_run, ablation_run] = best.map(|b| b.expect("at least one repeat ran").0);
    let resilient = summarize("resilient", &resilient_run);
    let ablation = summarize("ablation", &ablation_run);
    for m in [&resilient, &ablation] {
        println!(
            "{:>10}: goodput {:>8.0}/s  ok {:>8.0}/s  p99 {:>9.1} us  shed {:>6}  saturated {:>6}  infeasible {:>4}  breaker-rejected {:>5}  poisoned dispatched {}/{}",
            m.name,
            m.goodput_per_s,
            m.ok_per_s,
            m.p99_us,
            m.shed,
            m.saturated,
            m.infeasible,
            m.breaker_rejected,
            m.poisoned_dispatched,
            m.poisoned_submitted,
        );
    }

    println!("observability round-trip (scraper attached):");
    let obs_failures = observability(&flags, capacity);
    if !flags.check {
        for f in ledger_problems.iter().chain(&obs_failures) {
            eprintln!("soak WARN: {f}");
        }
    }

    std::fs::create_dir_all(&flags.out).expect("cannot create output directory");
    let measured = [&resilient, &ablation];
    let mut report = format!(
        "{{\n  \"schema_version\": 1,\n  \"workers\": {},\n  \"duration_ms\": {},\n  \"seed\": {},\n  \"capacity_per_s\": {capacity:.1},\n  \"configs\": [\n",
        flags.workers, flags.duration_ms, flags.seed
    );
    for (i, m) in measured.iter().enumerate() {
        report.push_str(&format!(
            "    {{\"name\": \"{}\", \"goodput_per_s\": {:.1}, \"ok_per_s\": {:.1}, \"p99_us\": {:.1}, \"shed\": {}, \"saturated\": {}, \"infeasible\": {}, \"breaker_rejected\": {}, \"retry_budget_exhausted\": {}, \"poisoned_dispatched\": {}, \"poisoned_submitted\": {}}}{}\n",
            m.name,
            m.goodput_per_s,
            m.ok_per_s,
            m.p99_us,
            m.shed,
            m.saturated,
            m.infeasible,
            m.breaker_rejected,
            m.retry_budget_exhausted,
            m.poisoned_dispatched,
            m.poisoned_submitted,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    report.push_str("  ]\n}\n");
    let path = flags.out.join("soak_report.json");
    std::fs::write(&path, &report).expect("cannot write soak_report.json");
    println!("  -> {}", path.display());

    let baseline_path = flags
        .baseline
        .clone()
        .unwrap_or_else(|| flags.out.join("soak_baseline.json"));
    if flags.write_baseline {
        // Only the resilient side is banded: the ablation's goodput is
        // collapsed by design and pure noise.
        let b = format!(
            "{{\n  \"schema_version\": 1,\n  \"tolerance_ratio\": 8.0,\n  \"configs\": [\n    {{\"name\": \"resilient\", \"goodput_per_s\": {:.1}, \"p99_us\": {:.1}}}\n  ]\n}}\n",
            resilient.goodput_per_s, resilient.p99_us
        );
        std::fs::write(&baseline_path, b).expect("cannot write baseline");
        println!("  -> {}", baseline_path.display());
    }

    if flags.check {
        let mut failures = ledger_problems;
        failures.extend(gate(
            &resilient,
            &ablation,
            flags.duration_ms,
            &baseline_path,
        ));
        failures.extend(obs_failures);
        if failures.is_empty() {
            println!("soak gate: OK");
        } else {
            for f in &failures {
                eprintln!("soak gate FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// The resilience gate proper: live A/B plus the committed baseline's
/// one-sided bands.
fn gate(
    resilient: &Measured,
    ablation: &Measured,
    duration_ms: u64,
    baseline_path: &std::path::Path,
) -> Vec<String> {
    let mut failures = Vec::new();

    // Shedding must not cost goodput: at 2x load, dropping doomed work
    // early should preserve (in practice: vastly improve) deadline-met
    // throughput relative to letting queues convoy.
    if resilient.goodput_per_s < 0.8 * ablation.goodput_per_s {
        failures.push(format!(
            "goodput under shedding ({:.0}/s) fell below 80% of the no-shedding ablation ({:.0}/s)",
            resilient.goodput_per_s, ablation.goodput_per_s
        ));
    }
    // The overload must actually exercise the machinery, or the A/B is
    // vacuous.
    if resilient.shed == 0 {
        failures.push("sustained 2x overload never shed a single run".into());
    }
    if resilient.breaker_rejected == 0 {
        failures.push("the open breaker never fast-rejected a submission".into());
    }
    if resilient.retry_budget_exhausted == 0 {
        failures.push("the retry budget never degraded a retry to a failure".into());
    }
    // Breaker isolation: once open, only half-open probes reach dispatch
    // (one per open window), so dispatched failures are bounded by the
    // opening threshold plus the probe cadence, with slack for queued
    // stragglers admitted before the breaker opened.
    let breaker_bound = u64::from(BREAKER_FAILURES) + duration_ms / BREAKER_OPEN_MS + 10;
    if resilient.poisoned_dispatched > breaker_bound {
        failures.push(format!(
            "breaker failed to isolate the poisoned tenant: {} dispatched failures, bound {breaker_bound}",
            resilient.poisoned_dispatched
        ));
    }

    // Baseline tolerance band (one-sided: better never fails).
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            failures.push(format!(
                "cannot read baseline {}: {e}",
                baseline_path.display()
            ));
            return failures;
        }
    };
    let base = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            failures.push(format!("baseline is not valid JSON: {e}"));
            return failures;
        }
    };
    let tol = base
        .get("tolerance_ratio")
        .and_then(json::Value::as_f64)
        .unwrap_or(8.0);
    let Some(configs) = base.get("configs").and_then(json::Value::as_arr) else {
        failures.push("baseline has no configs array".into());
        return failures;
    };
    let Some(b) = configs
        .iter()
        .find(|c| c.get("name").and_then(json::Value::as_str) == Some("resilient"))
    else {
        failures.push("resilient config missing from baseline".into());
        return failures;
    };
    let get_f = |k: &str| b.get(k).and_then(json::Value::as_f64).unwrap_or(0.0);
    let base_goodput = get_f("goodput_per_s");
    if base_goodput > 0.0 && resilient.goodput_per_s * tol < base_goodput {
        failures.push(format!(
            "goodput regressed: {:.1}/s vs baseline {base_goodput:.1}/s (band x{tol})",
            resilient.goodput_per_s
        ));
    }
    let base_p99 = get_f("p99_us");
    if base_p99 > 0.0 && resilient.p99_us > base_p99 * tol {
        failures.push(format!(
            "admitted-work p99 regressed: {:.1} us vs baseline {base_p99:.1} us (band x{tol})",
            resilient.p99_us
        ));
    }
    failures
}
