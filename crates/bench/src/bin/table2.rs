//! Table II — Software Costs of OpenTimer v1 and v2.
//!
//! Measures the two timing-engine implementations with the
//! SLOCCount-equivalent counter and the COCOMO organic model (the exact
//! formulas SLOCCount uses, validated in `tf-metrics` against the paper's
//! own numbers). The v1 row counts the scheduling machinery a levelized
//! analyzer must own (its engine file plus the barrier pool and levelizer
//! it runs on); the v2 row counts the rustflow engine file, whose
//! scheduling concerns the tasking library absorbs. Shared analyzer code
//! (netlist, delay model, propagation) is counted in both rows, as it
//! exists in both OpenTimer versions.

use std::path::Path;
use tf_bench::harness::{Cli, Report};
use tf_metrics::SoftwareCost;

fn timer_src(file: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../timer/src")
        .join(file)
}

fn baselines_src(file: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../baselines/src")
        .join(file)
}

fn main() {
    let cli = Cli::parse();
    println!("Table II: software costs of the timing engines (ours vs paper)");
    let shared = [
        timer_src("circuit.rs"),
        timer_src("delay.rs"),
        timer_src("analysis.rs"),
        timer_src("engine.rs"),
    ];

    let v1_files: Vec<_> = shared
        .iter()
        .cloned()
        .chain([
            timer_src("engine_v1.rs"),
            baselines_src("pool.rs"),
            baselines_src("levelized.rs"),
            baselines_src("dag.rs"),
        ])
        .collect();
    let v2_files: Vec<_> = shared
        .iter()
        .cloned()
        .chain([timer_src("engine_v2.rs")])
        .collect();

    let v1 = SoftwareCost::measure_files("v1 (levelized/OpenMP-style)", v1_files);
    let v2 = SoftwareCost::measure_files("v2 (rustflow)", v2_files);

    let mut report = Report::new(
        &cli,
        "table2",
        &[
            "tool",
            "loc",
            "mcc",
            "effort_py",
            "dev",
            "cost_usd",
            "paper_loc",
            "paper_mcc",
            "paper_effort",
            "paper_dev",
            "paper_cost",
        ],
    );
    report.print_header();
    for (cost, p_loc, p_mcc, p_eff, p_dev, p_cost) in [
        (&v1, 9_123, 58, 2.04, 2.90, 275_287),
        (&v2, 4_482, 20, 0.97, 1.83, 130_523),
    ] {
        let est = cost.cocomo();
        report.row(&[
            cost.label.clone(),
            cost.sloc.to_string(),
            cost.cc_max().to_string(),
            format!("{:.2}", est.effort_person_years),
            format!("{:.2}", est.developers),
            format!("{:.0}", est.cost_dollars),
            p_loc.to_string(),
            p_mcc.to_string(),
            format!("{p_eff:.2}"),
            format!("{p_dev:.2}"),
            p_cost.to_string(),
        ]);
    }
    report.save();
    println!(
        "\nShape check: v2 needs roughly half the engine code of v1 and a \
         lower max cyclomatic complexity, as in the paper (9,123 -> 4,482 \
         LOC; MCC 58 -> 20)."
    );
}
