//! Causal profiler driver and CI perf-regression gate.
//!
//! Runs two iterative workloads — the Fig. 7 wavefront and the Fig. 12
//! DNN epoch pipeline — under the event tracer, reconstructs the executed
//! schedule, and writes the work/span analysis
//! ([`rustflow::ProfileReport`]) as three artifacts:
//!
//! * `<out>/profile_report.json` — schema-stable report: per-iteration
//!   work, span, parallelism, Brent-bound vs achieved speedup, per-node
//!   aggregates, binned per-worker utilization;
//! * `<out>/profile_wavefront.dot` — the wavefront graph heat-colored by
//!   task time with the critical path bold red;
//! * `<out>/profile_metrics.prom` — Prometheus histogram / summary
//!   families for both workloads.
//!
//! Modes:
//!
//! * default — profile and write the artifacts;
//! * `--write-baseline` — additionally save the committed baseline
//!   (`<out>/profile_baseline.json`) the gate compares against;
//! * `--check` — the CI gate: compare this run against the baseline and
//!   exit non-zero when structural metrics drift or timings leave the
//!   tolerance band.
//!
//! The gate checks two classes of metric. **Structural** (task count per
//! iteration, iteration count, zero dropped events) must match exactly —
//! they are machine-independent, and a change means the schedule itself
//! changed. **Temporal** (work, span, wall clock) must stay within
//! `tolerance_ratio` of the baseline in both directions — wide enough to
//! absorb machine noise, tight enough to catch a serialized scheduler
//! (span collapsing toward work) or a runaway slowdown.

use std::sync::Arc;
use tf_bench::harness::time_ms;
use tf_bench::json;
use tf_workloads::run::ReusableRustflow;
use tf_workloads::wavefront::{self, WavefrontSpec};

struct Flags {
    out: std::path::PathBuf,
    threads: usize,
    full: bool,
    check: bool,
    write_baseline: bool,
    baseline: Option<std::path::PathBuf>,
}

fn parse_flags() -> Flags {
    let mut f = Flags {
        out: std::path::PathBuf::from("results"),
        threads: 4,
        full: false,
        check: false,
        write_baseline: false,
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => f.out = args.next().expect("--out needs a directory").into(),
            "--threads" => {
                f.threads = args
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("bad thread count");
            }
            "--full" => f.full = true,
            "--check" => f.check = true,
            "--write-baseline" => f.write_baseline = true,
            "--baseline" => f.baseline = Some(args.next().expect("--baseline needs a path").into()),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --out <dir> | --threads n | --full | --check | --write-baseline | --baseline <path>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    f
}

/// One profiled workload: its report plus run metadata for the gate.
struct Profiled {
    name: &'static str,
    report: rustflow::ProfileReport,
    wall_ms: f64,
    dot: Option<String>,
}

/// Runs `iterations` of the frozen `dag` under a fresh executor + tracer
/// and reconstructs the schedule.
fn profile_reusable(
    name: &'static str,
    rf: &ReusableRustflow,
    tracer: &Arc<rustflow::Tracer>,
    threads: usize,
    iterations: u64,
    want_dot: bool,
) -> Profiled {
    let wall_ms = time_ms(|| rf.run_n(iterations).expect("profiled batch failed"));
    let snapshot = rf.taskflow().profile_snapshot();
    let report = rustflow::ProfileReport::build(
        &snapshot,
        &tracer.sched_events(),
        threads,
        tracer.dropped(),
    );
    let dot = want_dot.then(|| rf.taskflow().dump_profiled(&report));
    Profiled {
        name,
        report,
        wall_ms,
        dot,
    }
}

fn main() {
    let flags = parse_flags();
    let threads = flags.threads;
    let iterations: u64 = if flags.full { 20 } else { 5 };

    // --- Workload 1: wavefront (Fig. 7 kernel, iterative). --------------
    let spec = WavefrontSpec::new(if flags.full { 32 } else { 16 });
    let (dag, _sink) = wavefront::build(spec);
    let ex = rustflow::Executor::new(threads);
    let tracer = Arc::new(rustflow::Tracer::new(threads));
    let rf = ReusableRustflow::new(&dag, &ex);
    rf.run_n(1).expect("warm-up failed"); // warm-up, untraced
    ex.observe(Arc::clone(&tracer) as Arc<dyn rustflow::ExecutorObserver>);
    let wave = profile_reusable("wavefront", &rf, &tracer, threads, iterations, true);

    // --- Workload 2: DNN training epoch (Fig. 12 pipeline). -------------
    let data = Arc::new(tf_dnn::synthetic_mnist(
        if flags.full { 1000 } else { 300 },
        0xDA7A,
    ));
    let net = tf_dnn::Mlp::new(&[784, 16, 10], 42);
    let train = tf_dnn::pipeline::TrainSpec {
        epochs: iterations as usize,
        batch: 100,
        lr: 0.01,
        storages: 2,
        seed: 42,
    };
    let (dnn_dag, _state) = tf_dnn::pipeline::build_epoch_dag(&net, data, train);
    let ex = rustflow::Executor::new(threads);
    let tracer = Arc::new(rustflow::Tracer::new(threads));
    let rf = ReusableRustflow::new(&dnn_dag, &ex);
    rf.run_n(1).expect("warm-up failed"); // warm-up epoch, untraced
    ex.observe(Arc::clone(&tracer) as Arc<dyn rustflow::ExecutorObserver>);
    let dnn = profile_reusable("dnn_epoch", &rf, &tracer, threads, iterations, false);

    let profiled = [wave, dnn];
    for p in &profiled {
        let r = &p.report;
        println!(
            "{}: {} iterations x {} tasks, {} threads",
            p.name,
            r.iterations.len(),
            r.iterations.first().map_or(0, |i| i.tasks),
            threads
        );
        println!(
            "  work {} us  span {:.0} us  parallelism {:.2}  wall {:.1} ms  dropped {}",
            r.total_work_us, r.mean_span_us, r.mean_parallelism, p.wall_ms, r.dropped_events
        );
        if let Some(it) = r.iterations.last() {
            println!(
                "  achieved speedup {:.2} vs Brent bound {:.2}",
                it.achieved_speedup, it.brent_speedup
            );
        }
    }

    // --- Artifacts. ------------------------------------------------------
    std::fs::create_dir_all(&flags.out).expect("cannot create output directory");
    let mut report_json = String::from("{\n  \"schema_version\": 1,\n  \"workloads\": {\n");
    for (i, p) in profiled.iter().enumerate() {
        report_json.push_str(&format!(
            "    \"{}\": {}",
            p.name,
            indent(&p.report.to_json(), 4)
        ));
        report_json.push_str(if i + 1 < profiled.len() { ",\n" } else { "\n" });
    }
    report_json.push_str("  }\n}\n");
    let path = flags.out.join("profile_report.json");
    std::fs::write(&path, &report_json).expect("cannot write profile_report.json");
    println!("  -> {}", path.display());

    let mut prom = String::new();
    for p in &profiled {
        prom.push_str(&p.report.prometheus_text());
    }
    let path = flags.out.join("profile_metrics.prom");
    std::fs::write(&path, prom).expect("cannot write profile_metrics.prom");
    println!("  -> {}", path.display());

    for p in &profiled {
        if let Some(dot) = &p.dot {
            let path = flags.out.join(format!("profile_{}.dot", p.name));
            std::fs::write(&path, dot).expect("cannot write DOT dump");
            println!("  -> {}", path.display());
        }
    }

    let baseline_path = flags
        .baseline
        .clone()
        .unwrap_or_else(|| flags.out.join("profile_baseline.json"));

    if flags.write_baseline {
        let mut b = String::from(
            "{\n  \"schema_version\": 1,\n  \"tolerance_ratio\": 6.0,\n  \"workloads\": [\n",
        );
        for (i, p) in profiled.iter().enumerate() {
            let r = &p.report;
            b.push_str(&format!(
                "    {{\"name\": \"{}\", \"iterations\": {}, \"tasks_per_iteration\": {}, \"total_work_us\": {}, \"mean_span_us\": {:.3}, \"wall_ms\": {:.3}, \"min_parallelism\": {:.3}}}{}\n",
                p.name,
                r.iterations.len(),
                r.iterations.first().map_or(0, |it| it.tasks),
                r.total_work_us,
                r.mean_span_us,
                p.wall_ms,
                // Regressions serialize the schedule: parallelism collapses
                // toward 1. Gate at half the observed value, floored at 1.
                (r.mean_parallelism / 2.0).max(1.0),
                if i + 1 < profiled.len() { "," } else { "" }
            ));
        }
        b.push_str("  ]\n}\n");
        std::fs::write(&baseline_path, b).expect("cannot write baseline");
        println!("  -> {}", baseline_path.display());
    }

    if flags.check {
        let failures = check_against_baseline(&profiled, &baseline_path);
        if failures.is_empty() {
            println!(
                "profile gate: OK ({} workloads within tolerance)",
                profiled.len()
            );
        } else {
            for f in &failures {
                eprintln!("profile gate FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Compares this run against the committed baseline; returns one message
/// per violated bound.
fn check_against_baseline(profiled: &[Profiled], path: &std::path::Path) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read baseline {}: {e}", path.display())],
    };
    let base = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => return vec![format!("baseline is not valid JSON: {e}")],
    };
    let tol = base
        .get("tolerance_ratio")
        .and_then(json::Value::as_f64)
        .unwrap_or(6.0);
    let Some(workloads) = base.get("workloads").and_then(json::Value::as_arr) else {
        return vec!["baseline has no workloads array".into()];
    };

    let mut failures = Vec::new();
    for p in profiled {
        let Some(b) = workloads
            .iter()
            .find(|w| w.get("name").and_then(json::Value::as_str) == Some(p.name))
        else {
            failures.push(format!("{}: missing from baseline", p.name));
            continue;
        };
        let r = &p.report;
        let get_u = |k: &str| b.get(k).and_then(json::Value::as_u64).unwrap_or(0);
        let get_f = |k: &str| b.get(k).and_then(json::Value::as_f64).unwrap_or(0.0);

        // Structural: exact.
        if r.iterations.len() as u64 != get_u("iterations") {
            failures.push(format!(
                "{}: {} iterations profiled, baseline says {}",
                p.name,
                r.iterations.len(),
                get_u("iterations")
            ));
        }
        let tasks = r.iterations.first().map_or(0, |it| it.tasks) as u64;
        if tasks != get_u("tasks_per_iteration") {
            failures.push(format!(
                "{}: {} tasks per iteration, baseline says {} — the graph itself changed",
                p.name,
                tasks,
                get_u("tasks_per_iteration")
            ));
        }
        if r.dropped_events != 0 {
            failures.push(format!(
                "{}: {} events dropped — schedule reconstruction incomplete",
                p.name, r.dropped_events
            ));
        }

        // Temporal: tolerance band in both directions.
        let band = |what: &str, now: f64, then: f64| -> Option<String> {
            if then <= 0.0 || now <= 0.0 {
                return None;
            }
            let ratio = now / then;
            (ratio > tol || ratio < 1.0 / tol).then(|| {
                format!(
                    "{}: {what} {now:.1} vs baseline {then:.1} (x{ratio:.2}, band x{tol})",
                    p.name
                )
            })
        };
        failures.extend(band(
            "total work (us)",
            r.total_work_us as f64,
            get_f("total_work_us"),
        ));
        failures.extend(band(
            "mean span (us)",
            r.mean_span_us,
            get_f("mean_span_us"),
        ));
        failures.extend(band("wall clock (ms)", p.wall_ms, get_f("wall_ms")));

        // Parallelism floor: a serialized schedule is a regression even
        // inside the timing band.
        let floor = get_f("min_parallelism");
        if floor > 0.0 && r.mean_parallelism < floor {
            failures.push(format!(
                "{}: parallelism {:.2} fell below the baseline floor {floor:.2}",
                p.name, r.mean_parallelism
            ));
        }
    }
    failures
}

/// Re-indents a rendered JSON document for embedding as a nested value.
fn indent(json: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    let mut out = String::with_capacity(json.len());
    for (i, line) in json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(&pad);
        }
        out.push_str(line);
    }
    out
}
