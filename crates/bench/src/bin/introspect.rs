//! Introspection gate — live-observability overhead and endpoint smoke
//! (beyond the paper; CI job `introspect-gate`).
//!
//! Three checks, all against real sockets:
//!
//! 1. **Overhead** — a wavefront workload is timed on a plain executor
//!    and on one with the full introspection service enabled (collector
//!    thread, HTTP endpoint, and a scraper hitting `/metrics` + `/status`
//!    throughout). The enabled/disabled median ratio must stay ≤ 1.05×.
//! 2. **Latency-layer overhead** — a tenanted serving workload (pipelined
//!    `run_on` submissions) is timed with the per-run latency histograms
//!    enabled vs `latency_histograms(false)`, both sides with the service
//!    up and an active scraper merging the shards. The stamp+record path
//!    is a handful of relaxed atomics per *run*, so the same ≤ 1.05×
//!    median ratio applies.
//! 3. **Endpoint smoke** — while a `run_n` batch is in flight, `/metrics`
//!    must pass the strict [`tf_bench::prom`] parser with every expected
//!    family present, `/status` must parse as JSON ([`tf_bench::json`])
//!    with a worker entry per thread, and `/trace?last_ms=500` must be
//!    valid Chrome-trace JSON whose events all sit inside the window.
//!    A tenant with an `SloSpec` then pushes a known run count through
//!    the front door and the `rustflow_tenant_latency_us` family and the
//!    `/status` per-tenant percentile block are validated against it.
//!
//! Results land in `<out>/introspect_report.json`; any gate violation
//! makes the process exit non-zero, failing the CI job.

use rustflow::{Executor, ExecutorBuilder, IntrospectConfig, SloSpec, Taskflow, Tenant, TenantQos};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tf_bench::harness::{time_ms, Cli};
use tf_bench::impls::wavefront_rustflow;
use tf_bench::{json, prom};

/// Enabled-vs-disabled wall-clock ratio the gate allows.
const RATIO_GATE: f64 = 1.05;

/// Families `/metrics` must always expose.
const REQUIRED_FAMILIES: &[&str] = &[
    "rustflow_tasks_executed_total",
    "rustflow_steals_total",
    "rustflow_ring_dropped_events_total",
    "rustflow_queue_depth",
    "rustflow_parked_workers",
    "rustflow_inflight_topologies",
    "rustflow_flight_recorder_events",
    "rustflow_flight_recorder_dropped_total",
    "rustflow_watchdog_stalled_workers_total",
    "rustflow_watchdog_stalled_topologies_total",
    "rustflow_watchdog_ring_saturation_total",
];

struct GateResult {
    threads: usize,
    dim: usize,
    iters: u32,
    reps: usize,
    disabled_ms: f64,
    enabled_ms: f64,
    ratio: f64,
    scrapes: usize,
    lat_disabled_ms: f64,
    lat_enabled_ms: f64,
    lat_ratio: f64,
    smoke: Vec<(String, bool, String)>,
}

fn main() {
    let cli = Cli::parse();
    let threads = cli
        .threads
        .as_ref()
        .and_then(|t| t.first().copied())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4)
        });
    let (dim, iters) = if cli.full { (48, 8192) } else { (32, 8192) };
    let reps = cli.reps.max(9);

    let mut result = GateResult {
        threads,
        dim,
        iters,
        reps,
        disabled_ms: 0.0,
        enabled_ms: 0.0,
        ratio: 0.0,
        scrapes: 0,
        lat_disabled_ms: 0.0,
        lat_enabled_ms: 0.0,
        lat_ratio: 0.0,
        smoke: Vec::new(),
    };

    if cli.wants_part("overhead") {
        measure_overhead(&mut result);
    }
    if cli.wants_part("latency") {
        measure_latency_overhead(&mut result);
    }
    if cli.wants_part("smoke") {
        smoke(&mut result);
    }

    let overhead_pass = result.ratio == 0.0 || result.ratio <= RATIO_GATE;
    let latency_pass = result.lat_ratio == 0.0 || result.lat_ratio <= RATIO_GATE;
    let smoke_pass = result.smoke.iter().all(|(_, ok, _)| *ok);
    println!(
        "introspect gate: disabled={:.2}ms enabled={:.2}ms ratio={:.3} (gate {RATIO_GATE}) {}",
        result.disabled_ms,
        result.enabled_ms,
        result.ratio,
        if overhead_pass { "ok" } else { "FAIL" },
    );
    println!(
        "latency layer:   disabled={:.2}ms enabled={:.2}ms ratio={:.3} (gate {RATIO_GATE}) {}",
        result.lat_disabled_ms,
        result.lat_enabled_ms,
        result.lat_ratio,
        if latency_pass { "ok" } else { "FAIL" },
    );
    for (name, ok, note) in &result.smoke {
        println!("  {} {name} {note}", if *ok { "ok  " } else { "FAIL" });
    }
    let pass = overhead_pass && latency_pass && smoke_pass;
    write_report(&cli, &result, pass);
    if !pass {
        eprintln!("introspect gate: FAILED");
        std::process::exit(1);
    }
    println!("introspect gate: all checks passed");
}

/// Times the wavefront on a bare executor vs one with the service live
/// (collector + HTTP + an active scraper). Disabled/enabled reps are
/// interleaved so machine drift hits both sides equally, and each side
/// takes its median.
fn measure_overhead(result: &mut GateResult) {
    let (threads, dim, iters, reps) = (result.threads, result.dim, result.iters, result.reps);

    let bare = Executor::new(threads);
    let live = Executor::new(threads);
    let handle = live
        .serve_introspection_with("127.0.0.1:0", IntrospectConfig::default())
        .expect("bind introspection endpoint");
    let addr = handle.local_addr().expect("local addr");

    // A scraper polling both text endpoints for the whole measurement,
    // so "enabled" means enabled *and observed*, not merely idling.
    // 250ms is still ~20-60x more aggressive than a production
    // Prometheus scrape interval.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let _ = http_get(addr, "/metrics");
                let _ = http_get(addr, "/status");
                n += 1;
                std::thread::sleep(Duration::from_millis(250));
            }
            n
        })
    };

    // Warm both executors (threads spawn lazily on first dispatch).
    wavefront_rustflow::run(dim, iters, &bare);
    wavefront_rustflow::run(dim, iters, &live);

    let mut disabled = Vec::with_capacity(reps);
    let mut enabled = Vec::with_capacity(reps);
    for _ in 0..reps {
        disabled.push(time_ms(|| {
            wavefront_rustflow::run(dim, iters, &bare);
        }));
        enabled.push(time_ms(|| {
            wavefront_rustflow::run(dim, iters, &live);
        }));
    }
    stop.store(true, Ordering::Relaxed);
    result.scrapes = scraper.join().expect("scraper panicked");
    result.disabled_ms = median(&mut disabled);
    result.enabled_ms = median(&mut enabled);
    result.ratio = result.enabled_ms / result.disabled_ms;
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Pushes `n` pipelined single-task flows through `tenant`, keeping a
/// bounded window in flight — the serving-shaped workload whose per-run
/// cost the latency layer must not perturb.
fn run_tenant_batch(ex: &Arc<Executor>, tenant: &Tenant, n: usize) {
    const WINDOW: usize = 16;
    let mut inflight: VecDeque<(Taskflow, rustflow::RunHandle)> = VecDeque::with_capacity(WINDOW);
    for _ in 0..n {
        let tf = Taskflow::with_executor(Arc::clone(ex));
        tf.emplace(|| {});
        let h = tf.run_on(tenant).expect("executor is not shutting down");
        inflight.push_back((tf, h));
        if inflight.len() == WINDOW {
            let (_tf, h) = inflight.pop_front().expect("window is full");
            h.get().expect("run must succeed");
        }
    }
    for (_tf, h) in inflight {
        h.get().expect("run must succeed");
    }
}

/// Times the tenanted serving workload with the latency histograms on vs
/// off — both sides with the introspection service live and a scraper
/// forcing shard merges throughout, so the ratio isolates exactly the
/// stamp/record/merge cost the always-on pipeline adds per run.
fn measure_latency_overhead(result: &mut GateResult) {
    let (threads, reps) = (result.threads, result.reps);
    const SUBMISSIONS: usize = 3000;

    let mk = |histograms: bool| {
        let ex = ExecutorBuilder::new()
            .workers(threads)
            .latency_histograms(histograms)
            .build();
        let handle = ex
            .serve_introspection_with("127.0.0.1:0", IntrospectConfig::default())
            .expect("bind introspection endpoint");
        let addr = handle.local_addr().expect("local addr");
        let tenant = ex.tenant("ab");
        (ex, handle, addr, tenant)
    };
    let (ex_off, _h_off, addr_off, tenant_off) = mk(false);
    let (ex_on, _h_on, addr_on, tenant_on) = mk(true);

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = http_get(addr_off, "/metrics");
                let _ = http_get(addr_on, "/metrics");
                std::thread::sleep(Duration::from_millis(250));
            }
        })
    };

    // Warm both executors and tenant paths.
    run_tenant_batch(&ex_off, &tenant_off, SUBMISSIONS);
    run_tenant_batch(&ex_on, &tenant_on, SUBMISSIONS);

    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    for _ in 0..reps {
        off.push(time_ms(|| {
            run_tenant_batch(&ex_off, &tenant_off, SUBMISSIONS)
        }));
        on.push(time_ms(|| {
            run_tenant_batch(&ex_on, &tenant_on, SUBMISSIONS)
        }));
    }
    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper panicked");
    result.lat_disabled_ms = median(&mut off);
    result.lat_enabled_ms = median(&mut on);
    result.lat_ratio = result.lat_enabled_ms / result.lat_disabled_ms;
}

/// Hits all three endpoints while a `run_n` batch is in flight and
/// validates every payload strictly.
fn smoke(result: &mut GateResult) {
    let threads = result.threads;
    let ex = Executor::new(threads);
    let mut cfg = IntrospectConfig::default();
    cfg.collect_period = Duration::from_millis(20);
    let handle = ex
        .serve_introspection_with("127.0.0.1:0", cfg)
        .expect("bind introspection endpoint");
    let addr = handle.local_addr().expect("local addr");

    let tf = Taskflow::with_executor(Arc::clone(&ex));
    for i in 0..(threads * 4) {
        tf.emplace(move || {
            std::hint::black_box(tf_workloads::kernels::nominal_work(i as u64 + 1, 50_000));
        })
        .name(format!("smoke-{i}"));
    }
    let fut = tf.run_n(400);
    let mut check = |name: &str, ok: bool, note: String| {
        result.smoke.push((name.to_string(), ok, note));
    };

    // /metrics under the strict parser, all families present.
    let metrics = http_get(addr, "/metrics");
    match prom::parse(&metrics) {
        Ok(exp) => {
            check(
                "metrics_parse",
                true,
                format!("{} families", exp.families.len()),
            );
            for fam in REQUIRED_FAMILIES {
                check(
                    &format!("metrics_family:{fam}"),
                    exp.family(fam).is_some(),
                    String::new(),
                );
            }
            let executed = exp.family("rustflow_tasks_executed_total");
            check(
                "metrics_per_worker_samples",
                executed.is_some_and(|f| f.samples.len() == threads),
                format!(
                    "{}/{threads} worker samples",
                    executed.map_or(0, |f| f.samples.len())
                ),
            );
        }
        Err(e) => check("metrics_parse", false, e),
    }

    // /status through the strict JSON parser, one worker entry per thread.
    let status = http_get(addr, "/status");
    let mut status_now_us = 0u64;
    match json::parse(&status) {
        Ok(v) => {
            check("status_parse", true, String::new());
            status_now_us = v.get("now_us").and_then(|n| n.as_u64()).unwrap_or(0);
            check("status_now_us", status_now_us > 0, String::new());
            let workers = v
                .get("workers")
                .and_then(|w| w.as_arr())
                .map_or(0, <[_]>::len);
            check(
                "status_workers",
                workers == threads,
                format!("{workers}/{threads} workers"),
            );
            let topos = v
                .get("topologies")
                .and_then(|t| t.as_arr())
                .map_or(0, <[_]>::len);
            check(
                "status_live_topology",
                topos >= 1,
                format!("{topos} in flight"),
            );
        }
        Err(e) => check("status_parse", false, e),
    }

    // /trace?last_ms=500: valid Chrome-trace JSON, events in-window.
    let trace = http_get(addr, "/trace?last_ms=500");
    match json::parse(&trace) {
        Ok(v) => {
            let events = v.as_arr().map(<[_]>::len).unwrap_or(0);
            check("trace_parse", events > 0, format!("{events} events"));
            // All event timestamps within the requested window (plus the
            // slack of the scrapes above happening before this one).
            let horizon = status_now_us.saturating_sub(500_000);
            let in_window = v.as_arr().is_some_and(|evs| {
                evs.iter().all(|e| {
                    e.get("ts")
                        .and_then(|t| t.as_u64())
                        .is_some_and(|ts| ts >= horizon)
                })
            });
            check("trace_window", in_window, format!("horizon {horizon}µs"));
            let shaped = v.as_arr().is_some_and(|evs| {
                evs.iter().all(|e| {
                    e.get("ph").and_then(|p| p.as_str()).is_some()
                        && e.get("tid").and_then(|t| t.as_u64()).is_some()
                })
            });
            check("trace_event_shape", shaped, String::new());
        }
        Err(e) => check("trace_parse", false, e),
    }

    fut.get().expect("smoke workload failed");

    // Per-tenant latency surfaces: a tenant carrying an `SloSpec` pushes
    // a known run count through the front door, then the histogram family
    // on `/metrics` and the percentile block on `/status` must reflect it.
    const TENANT_RUNS: usize = 24;
    let tenant = ex.tenant_with(
        "svc",
        TenantQos {
            slo: Some(SloSpec {
                p99_us: 250_000,
                window: Duration::from_secs(60),
            }),
            ..TenantQos::default()
        },
    );
    for _ in 0..TENANT_RUNS {
        let tf = Taskflow::with_executor(Arc::clone(&ex));
        tf.emplace(|| {});
        tf.run_on(&tenant)
            .expect("tenant admission")
            .get()
            .expect("tenant run succeeds");
    }
    // Latency records fold in just after each promise resolves; the
    // completion counter bumps after the fold, so wait on it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while tenant.stats().completed < TENANT_RUNS as u64 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }

    let metrics = http_get(addr, "/metrics");
    match prom::parse(&metrics) {
        Ok(exp) => {
            let fam = exp.family("rustflow_tenant_latency_us");
            check(
                "latency_family",
                fam.is_some_and(|f| f.kind == "histogram"),
                String::new(),
            );
            let count = fam
                .and_then(|f| {
                    f.samples.iter().find(|s| {
                        s.name == "rustflow_tenant_latency_us_count"
                            && s.label("tenant") == Some("svc")
                            && s.label("phase") == Some("e2e")
                    })
                })
                .map_or(-1.0, |s| s.value);
            check(
                "latency_e2e_count",
                count == TENANT_RUNS as f64,
                format!("{count} of {TENANT_RUNS} runs"),
            );
        }
        Err(e) => check("latency_family", false, e),
    }

    let status = http_get(addr, "/status");
    match json::parse(&status) {
        Ok(v) => {
            let svc = v.get("tenants").and_then(|t| t.as_arr()).and_then(|arr| {
                arr.iter()
                    .find(|t| t.get("name").and_then(|n| n.as_str()) == Some("svc"))
            });
            let slo_ok = svc
                .and_then(|t| t.get("slo"))
                .and_then(|s| s.get("p99_us"))
                .and_then(|p| p.as_u64())
                == Some(250_000);
            check("status_slo_spec", slo_ok, String::new());
            let e2e = svc
                .and_then(|t| t.get("latency_us"))
                .and_then(|l| l.get("e2e"));
            let pct = |k: &str| e2e.and_then(|p| p.get(k)).and_then(json::Value::as_f64);
            let ordered = matches!(
                (pct("p50"), pct("p90"), pct("p99"), pct("p999")),
                (Some(a), Some(b), Some(c), Some(d)) if a <= b && b <= c && c <= d
            );
            check("status_latency_percentiles", ordered, String::new());
            check(
                "status_latency_count",
                e2e.and_then(|p| p.get("count"))
                    .and_then(json::Value::as_u64)
                    == Some(TENANT_RUNS as u64),
                String::new(),
            );
        }
        Err(e) => check("status_latency_percentiles", false, e),
    }
}

fn http_get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect introspection endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("socket timeout");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: gate\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("malformed response");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "unexpected status for {target}: {}",
        head.lines().next().unwrap_or("")
    );
    body.to_string()
}

fn write_report(cli: &Cli, r: &GateResult, pass: bool) {
    std::fs::create_dir_all(&cli.out).expect("cannot create output directory");
    let mut smoke = String::new();
    for (i, (name, ok, note)) in r.smoke.iter().enumerate() {
        smoke.push_str(&format!(
            "    {{\"check\": \"{name}\", \"pass\": {ok}, \"note\": \"{note}\"}}{}\n",
            if i + 1 < r.smoke.len() { "," } else { "" },
        ));
    }
    let json_text = format!(
        "{{\n  \"schema\": 2,\n  \"threads\": {},\n  \"dim\": {},\n  \"iters\": {},\n  \
         \"reps\": {},\n  \"disabled_ms\": {:.3},\n  \"enabled_ms\": {:.3},\n  \
         \"ratio\": {:.4},\n  \"ratio_gate\": {RATIO_GATE},\n  \"scrapes\": {},\n  \
         \"lat_disabled_ms\": {:.3},\n  \"lat_enabled_ms\": {:.3},\n  \"lat_ratio\": {:.4},\n  \
         \"smoke\": [\n{smoke}  ],\n  \"pass\": {pass}\n}}\n",
        r.threads,
        r.dim,
        r.iters,
        r.reps,
        r.disabled_ms,
        r.enabled_ms,
        r.ratio,
        r.scrapes,
        r.lat_disabled_ms,
        r.lat_enabled_ms,
        r.lat_ratio,
    );
    let path = cli.out.join("introspect_report.json");
    std::fs::write(&path, &json_text).expect("cannot write introspect report");
    // The report must stay machine-readable: parse it back.
    json::parse(&json_text).expect("introspect report must be valid JSON");
    println!("  -> {}", path.display());
}
