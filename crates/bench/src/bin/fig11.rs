//! Figure 11 — The task decomposition strategy for parallel DNN
//! training, rendered as a DOT graph.
//!
//! Builds one epoch of the training task graph (a few batches of the
//! 3-layer architecture) with named tasks — `E0_S` (shuffle), `F_j`
//! (forward), `G_j_i` (per-layer gradient), `U_j_i` (per-layer update) —
//! and dumps it to `results/fig11.dot`.

use rustflow::Taskflow;
use tf_bench::harness::Cli;

fn main() {
    let cli = Cli::parse();
    std::fs::create_dir_all(&cli.out).expect("cannot create output dir");
    let layers = 3;
    let batches = 3;

    let tf = Taskflow::new();
    tf.set_name("dnn_training_epoch");
    let shuffle = tf.placeholder().name("E0_S");
    let mut prev_updates: Vec<rustflow::Task<'_>> = Vec::new();
    for j in 0..batches {
        let forward = tf.placeholder().name(format!("F_{j}"));
        shuffle.precede(forward);
        forward.succeed(&prev_updates);
        prev_updates.clear();
        let mut prev = forward;
        for i in (0..layers).rev() {
            let g = tf.placeholder().name(format!("G_{j}_{i}"));
            prev.precede(g);
            let u = tf.placeholder().name(format!("U_{j}_{i}"));
            g.precede(u);
            prev_updates.push(u);
            prev = g;
        }
    }
    let dot = tf.dump();
    let path = cli.out.join("fig11.dot");
    std::fs::write(&path, &dot).expect("cannot write DOT");
    println!(
        "Figure 11: one-epoch training task graph ({} tasks: 1 shuffle + \
         {batches} x (1 forward + {layers} gradient + {layers} update))",
        1 + batches * (1 + 2 * layers)
    );
    println!("-> {}", path.display());
    println!("{dot}");
}
