//! Table III — Software Costs Comparison on Machine Learning.
//!
//! Measures the four DNN-training drivers (Figure 11's decomposition in
//! each programming model) with the SLOCCount/Lizard-equivalent analyzer.
//! Development time (the paper's T column) is a human measurement we
//! cannot reproduce; the paper's values are printed for reference.

use tf_bench::harness::{Cli, Report};
use tf_bench::impls::source_path;
use tf_metrics::SoftwareCost;

fn main() {
    let cli = Cli::parse();
    println!("Table III: software costs on machine learning (ours vs paper)");
    let mut report = Report::new(
        &cli,
        "table3",
        &[
            "model",
            "loc",
            "cc_total",
            "functions",
            "paper_loc",
            "paper_cc",
            "paper_devtime_h",
        ],
    );
    report.print_header();
    let rows: [(&str, &str, u32, u32, u32); 5] = [
        ("rustflow", "dnn_rustflow.rs", 59, 11, 3),
        ("openmp-style", "dnn_openmp.rs", 162, 23, 9),
        ("tbb-style", "dnn_flowgraph.rs", 90, 12, 3),
        ("sequential", "dnn_seq.rs", 33, 9, 2),
        ("levelized*", "dnn_levelized.rs", 0, 0, 0),
    ];
    for (model, file, p_loc, p_cc, p_t) in rows {
        let cost = SoftwareCost::measure_files(model, [source_path(file)]);
        report.row(&[
            model.to_string(),
            cost.sloc.to_string(),
            cost.cc_total().to_string(),
            cost.complexity.num_functions().to_string(),
            p_loc.to_string(),
            p_cc.to_string(),
            p_t.to_string(),
        ]);
    }
    report.save();
    println!(
        "\nShape check: sequential < rustflow < tbb-style < openmp-style \
         LOC ordering; dev-time column is the paper's human measurement \
         (not reproducible mechanically)."
    );
}
