//! Figure 8 — An example task dependency graph of a single timing update.
//!
//! Builds the paper's sample circuit (inp1/inp2/clock ports, gates u1–u4,
//! flip-flop f1, output out), runs a full timing update, reports the
//! critical path, and dumps the update's task dependency graph to DOT
//! (`results/fig8.dot`) for GraphViz rendering.

use tf_bench::harness::Cli;
use tf_timer::{Circuit, Engine, GateKind, Timer};

fn main() {
    let cli = Cli::parse();
    std::fs::create_dir_all(&cli.out).expect("cannot create output dir");

    // The circuit of Fig. 8: u1 = NAND(inp1, inp2); f1 captures u1 and
    // launches u2/u4; u2 -> u3 -> out path; u4 = NAND(u1, f1) -> out.
    let mut c = Circuit::new(200.0);
    let inp1 = c.add_gate(GateKind::Input, 1.0);
    let inp2 = c.add_gate(GateKind::Input, 1.0);
    let u1 = c.add_gate(GateKind::Nand2, 1.0);
    let f1 = c.add_gate(GateKind::Dff, 1.0);
    let u2 = c.add_gate(GateKind::Inv, 1.0);
    let u3 = c.add_gate(GateKind::Inv, 1.0);
    let u4 = c.add_gate(GateKind::Nand2, 1.0);
    let out = c.add_gate(GateKind::Output, 1.0);
    c.connect(inp1, u1);
    c.connect(inp2, u1);
    c.connect(u1, f1); // D capture
    c.connect(f1, u2); // Q launch
    c.connect(u2, u3);
    c.connect(u1, u4);
    c.connect(f1, u4);
    c.connect(u3, out);

    let timer = Timer::new(c);
    let tasks = timer.full_update(&Engine::Sequential);
    println!("Figure 8: single timing update over {tasks} tasks");
    println!("worst slack: {:.2} ps", timer.worst_slack());
    println!("critical path (gate ids): {:?}", timer.critical_path());
    let _ = u4;

    let seeds: Vec<u32> = timer.circuit().sources().collect();
    let dot = timer.update_task_graph_dot(&seeds);
    let path = cli.out.join("fig8.dot");
    std::fs::write(&path, &dot).expect("cannot write DOT");
    println!("task dependency graph -> {}", path.display());
    println!("{dot}");
}
